"""Benchmark regenerating Fig. 13 — impact of PPG channels.

Paper, Fig. 13a: authentication accuracy increases significantly with
the number of channels while the rejection rate stays roughly flat.
Fig. 13b: infrared channels authenticate better, red channels reject
at least as well — the wavelengths complement each other.
"""

from .conftest import run_once
from repro.eval.experiments import run_fig13a, run_fig13b


def test_fig13a_channel_count(benchmark, sweep_scale, report):
    result = run_once(benchmark, run_fig13a, sweep_scale)
    report(result)

    s = result.summary
    assert s["acc_4ch"] >= s["acc_1ch"]
    # Rejection stays strong at every channel count.
    for count in (1, 2, 3, 4):
        assert s[f"trr_{count}ch"] >= 0.7


def test_fig13b_individual_channels(benchmark, sweep_scale, report):
    result = run_once(benchmark, run_fig13b, sweep_scale)
    report(result)

    s = result.summary
    assert s["infrared_accuracy"] >= s["red_accuracy"]
    assert s["red_trr"] >= s["infrared_trr"] - 0.1
