"""Perf-regression smoke test for the authenticate hot path.

Runs the same harness as ``scripts/bench_authenticate.py`` under
pytest-benchmark: warm staged vs fused single-probe latency
(interleaved per iteration), batch vs loop, and the cross-user
registry batch. The asserted floors are deliberately far below the
measured numbers (fused ~1.7x staged and well under 10 ms p50 in full
mode on an idle core) so the test flags genuine regressions, not CI
noise — and the parity flags must hold exactly at any scale.
"""

from __future__ import annotations

import importlib.util
import os
from pathlib import Path

from .conftest import run_once

_SCRIPT = (
    Path(__file__).resolve().parent.parent / "scripts" / "bench_authenticate.py"
)
_spec = importlib.util.spec_from_file_location("bench_authenticate", _SCRIPT)
bench_authenticate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_authenticate)


def _is_smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "default").lower() == "smoke"


def _params():
    if _is_smoke():
        return dict(num_features=840, single_repeats=30, stage_repeats=10,
                    batch_repeats=2, sizes=(1, 4, 16))
    return dict(num_features=9996, single_repeats=60, stage_repeats=20,
                batch_repeats=2, sizes=(1, 4, 16, 64))


def test_authenticate_hot_path(benchmark, report):
    result = run_once(benchmark, bench_authenticate.run, **_params())

    single = result["single"]
    report(
        "authenticate — "
        f"staged p50 {single['staged']['p50_ms']:.2f} ms | "
        f"fused p50 {single['fused']['p50_ms']:.2f} ms | "
        f"speedup {single['speedup_fused']:.2f}x | "
        f"warmup {result['cold']['warmup_ms']:.1f} ms | "
        f"registry batch {result['registry']['speedup_batch']:.2f}x"
    )

    # Exactness is non-negotiable at any scale: every optimized path
    # must return the same decisions as the staged reference.
    assert single["parity_ok"]
    assert result["cold"]["parity_ok"]
    assert all(s["parity_ok"] for s in result["batch"]["sizes"].values())
    assert result["registry"]["parity_ok"]

    # Latency floors, kept loose against shared-runner noise; the
    # committed full-mode BENCH_authenticate.json holds the real bar
    # (fused >= 1.5x staged, warm p50 <= 10 ms).
    assert single["speedup_fused"] >= 1.2
    assert single["fused"]["p50_ms"] <= 25.0

    # The six stages must all be accounted for in the profile budget.
    assert set(result["stages"]["median_ms"]) == {
        "repair", "preprocess", "segment", "featurize", "classify", "decide",
    }
