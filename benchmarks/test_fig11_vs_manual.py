"""Benchmark regenerating Fig. 11 — ROCKET vs manual feature extraction.

Paper: the manually constructed feature baseline (threshold on DTW
distances, following Shang & Wu) reaches only ~0.62 accuracy on
keystroke-induced PPG, and P2Auth wins clearly on accuracy and TRR.
"""

from .conftest import run_once
from repro.eval.experiments import run_fig11


def test_fig11_rocket_vs_manual(benchmark, scale, report):
    result = run_once(benchmark, run_fig11, scale)
    report(result)

    s = result.summary
    # ROCKET wins on accuracy, and is at least competitive on TRR.
    assert s["rocket_accuracy"] >= s["manual_accuracy"]
    assert s["rocket_trr"] >= s["manual_trr"] - 0.1
