"""Benchmark regenerating Fig. 16 — sampling-rate sweep (4 channels).

Paper: the privacy-boost system still reaches ~68% accuracy at 30 Hz
and plateaus as the rate rises — low-rate commodity wearables are
sufficient.
"""

from .conftest import run_once
from repro.eval.experiments import run_fig16


def test_fig16_sampling_rate(benchmark, sweep_scale, report):
    result = run_once(benchmark, run_fig16, sweep_scale)
    report(result)

    s = result.summary
    # The system remains usable at 30 Hz...
    assert s["acc_30hz"] >= 0.4
    # ...and does not lose accuracy at the full rate.
    assert s["acc_100hz"] >= s["acc_30hz"] - 0.05
    # Rejection holds across the sweep.
    for rate in (30, 50, 75, 100):
        assert s[f"trr_{rate}hz"] >= 0.7
