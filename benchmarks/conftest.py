"""Shared configuration for the benchmark suite.

Each benchmark regenerates one of the paper's evaluation artifacts and
prints the paper-shaped table. Scale is selected with the
``REPRO_BENCH_SCALE`` environment variable:

- ``smoke`` — minutes-level CI run;
- ``default`` (the default) — paper-shaped results at reduced cost;
- ``paper`` — the full 15-volunteer protocol (slow).
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.eval.experiments import DEFAULT, PAPER, SMOKE, ExperimentScale

_SCALES = {"smoke": SMOKE, "default": DEFAULT, "paper": PAPER}


def _selected_scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale for this benchmark run."""
    return _selected_scale()


@pytest.fixture(scope="session")
def sweep_scale(scale) -> ExperimentScale:
    """Reduced-victim scale for multi-condition sweeps (Fig. 13-17)."""
    return dataclasses.replace(scale, n_victims=min(scale.n_victims, 2))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)


@pytest.fixture()
def report(request):
    """Print an experiment table so it survives pytest's capture.

    pytest discards the stdout of passing tests (and its default
    fd-level capture even swallows writes to the real stdout), which
    would hide the regenerated tables from
    ``pytest benchmarks/ --benchmark-only`` output. Temporarily
    disabling the capture manager keeps them visible.
    """
    capman = request.config.pluginmanager.get_plugin("capturemanager")

    def _report(result) -> None:
        text = "\n" + str(result)
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(text, flush=True)
        else:  # pragma: no cover - capture plugin absent (unusual)
            print(text, flush=True)

    return _report
