"""Perf-regression smoke test for registry storage at scale.

Runs the same harness as ``scripts/bench_registry.py`` under
pytest-benchmark: packed-vs-npz size, quantization parity on the probe
battery, per-backend cold loads, and Zipf thread-thrash through
``ModelRegistry`` over the packed arena. The asserted floors are
deliberately far below the measured numbers (packed float32 ~2.4x
smaller than npz, cold p99 well under 100 ms, thousands of gets/sec)
so the test flags genuine regressions, not CI noise — while the
decision-parity flags must hold exactly at any scale.
"""

from __future__ import annotations

import importlib.util
import os
from pathlib import Path

from .conftest import run_once

_SCRIPT = (
    Path(__file__).resolve().parent.parent / "scripts" / "bench_registry.py"
)
_spec = importlib.util.spec_from_file_location("bench_registry", _SCRIPT)
bench_registry = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_registry)


def _is_smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "default").lower() == "smoke"


def _params():
    if _is_smoke():
        return dict(users=200, features=840, size_features=840,
                    n_templates=2, n_loads=25, capacity=64, threads=4,
                    ops_per_thread=100, n_jobs=1)
    return dict(users=10_000, features=840, size_features=9996,
                n_templates=4, n_loads=100, capacity=256, threads=8,
                ops_per_thread=1000, n_jobs=None)


def test_registry_storage_scale(benchmark, report):
    result = run_once(benchmark, bench_registry.run, **_params())

    size = result["size"]
    thrash = result["thrash"]
    report(
        "registry — "
        f"npz {size['npz_bytes_per_user']} B/user vs packed f32 "
        f"{size['packed']['float32']['record_bytes_per_user']} B/user | "
        f"arena cold p99 "
        f"{result['cold_load']['backends']['arena']['p99_ms']:.2f} ms | "
        f"{thrash['gets_per_sec']:.0f} gets/s @ {thrash['n_users']} users "
        f"(hit rate {thrash['hit_rate']:.3f})"
    )

    # Parity is non-negotiable at any scale: float64 packing must be
    # bit-exact, and every quantized dtype must reproduce the battery's
    # accept/reject decisions.
    parity = result["parity"]["dtypes"]
    assert parity["float64"]["scores_bit_exact"]
    for dtype in ("float64", "float32", "float16"):
        assert parity[dtype]["decisions_match"], dtype
    # Documented score-tolerance bounds (docs/performance.md).
    assert parity["float32"]["max_abs_score_delta"] <= 1e-6
    assert parity["float16"]["max_abs_score_delta"] <= 1e-2

    # Packed records must stay strictly below the npz baseline, and
    # each quantization step must actually shrink the record.
    packed = size["packed"]
    assert packed["float32"]["record_bytes_per_user"] < size["npz_bytes_per_user"]
    assert packed["float16"]["record_bytes_per_user"] < packed["float32"]["record_bytes_per_user"]
    assert packed["float32"]["record_bytes_per_user"] < packed["float64"]["record_bytes_per_user"]

    # Cold-load and throughput floors, kept loose against shared-runner
    # noise; the committed full-mode BENCH_registry.json holds the real
    # numbers (packed p99 in the low milliseconds, >1k gets/sec).
    for backend in ("npz", "sharded", "arena"):
        assert result["cold_load"]["backends"][backend]["p99_ms"] <= 500.0, backend
    assert thrash["gets_per_sec"] >= 50.0
    assert thrash["evictions"] > 0  # capacity < population: LRU engaged
    assert 0.0 < thrash["hit_rate"] < 1.0
