"""Benchmark regenerating Fig. 8 — privacy boost per volunteer.

Paper: with waveform fusion enabled, average authentication accuracy
reaches ~83% across volunteers and true rejection rates sit close to
or above 90%; behaviourally stable volunteers score higher than
restless ones.
"""

from .conftest import run_once
from repro.eval.experiments import run_fig8


def test_fig08_privacy_boost(benchmark, scale, report):
    result = run_once(benchmark, run_fig8, scale)
    report(result)

    # Shape assertions mirroring the paper's claims.
    assert 0.5 <= result.summary["accuracy"] <= 1.0
    assert result.summary["trr"] >= 0.7
