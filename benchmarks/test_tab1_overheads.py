"""Benchmark regenerating Table I — computational/memory overheads.

Paper: the ROCKET pipeline enrolls in ~1% of the manual baseline's
time (1.06 s vs 104.89 s) and authenticates in ~3% (0.302 s vs
10.57 s) at comparable memory. The exact ratios depend on hardware;
the orders-of-magnitude gap is the claim under test.
"""

from .conftest import run_once
from repro.eval.experiments import run_table1


def test_tab1_overheads(benchmark, scale, report):
    result = run_once(benchmark, run_table1, scale)
    report(result)

    s = result.summary
    # ROCKET enrolls at least ~4x faster (the paper reports ~100x; our
    # manual baseline runs its DTW at stride 2 to keep the bench suite
    # tractable, which softens that gap substantially), and its
    # authentication is real-time — the paper's deployability claim.
    # The manual baseline's *absolute* auth time is not asserted: the
    # stride-2 DTW that keeps enrollment tractable also makes a single
    # probe cheap, unlike the reference implementation.
    assert s["enroll_ratio"] < 0.25
    assert s["rocket_auth_s"] < 1.5
