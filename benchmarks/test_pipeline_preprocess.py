"""Perf-regression smoke test for the preprocessing layer.

Runs the same harness as ``scripts/bench_pipeline.py`` under
pytest-benchmark: the pre-optimization reference path against the
banded/batched pipeline, and a SMOKE victim evaluation with the
feature cache off/cold/warm. The asserted floors are deliberately far
below the measured speedups (~7x preprocess, ~3x warm evaluation on an
idle core) so the test flags genuine regressions, not CI noise.
"""

from __future__ import annotations

import importlib.util
import os
from pathlib import Path

from .conftest import run_once

_SCRIPT = (
    Path(__file__).resolve().parent.parent / "scripts" / "bench_pipeline.py"
)
_spec = importlib.util.spec_from_file_location("bench_pipeline", _SCRIPT)
bench_pipeline = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_pipeline)


def _is_smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "default").lower() == "smoke"


def test_preprocess_paths(benchmark, report):
    n_trials, repeats = (8, 2) if _is_smoke() else (16, 3)
    result = run_once(benchmark, bench_pipeline.bench_preprocess, n_trials, repeats)

    per = result["per_trial_ms"]
    report(
        "Preprocessing per trial — "
        f"reference {per['reference_ms']:.2f} ms | "
        f"banded {per['banded_ms']:.2f} ms | "
        f"batched {per['batched_ms']:.2f} ms | "
        f"speedup {result['speedup_batched']:.1f}x"
    )
    assert result["speedup_banded"] >= 2.5
    assert result["speedup_batched"] >= 2.5


def test_evaluate_user_cache(benchmark, report):
    result = run_once(benchmark, bench_pipeline.bench_evaluate, 1)

    paths = result["paths"]
    report(
        "evaluate_user — "
        f"unshared {paths['unshared']['best_s']:.3f} s | "
        f"cold {paths['cold_cache']['best_s']:.3f} s | "
        f"warm {paths['warm_cache']['best_s']:.3f} s | "
        f"speedup {result['speedup_warm']:.1f}x"
    )
    # A cache hit must not change a single row.
    assert result["results_match"]
    assert result["cache"]["bank_hits"] >= 1
    assert result["speedup_warm"] >= 1.3
