"""Benchmark regenerating Fig. 9 — PPG waveforms of PIN "1648".

Paper: four users typing "1648" show clearly distinct pulse-wave
patterns while each user's repetitions agree. We report the mean
intra-user vs inter-user RMS distance of calibrated keystroke
segments; the inter/intra ratio is the quantitative analogue of the
visual separation.
"""

from .conftest import run_once
from repro.eval.experiments import run_fig9


def test_fig09_waveform_separation(benchmark, scale, report):
    result = run_once(benchmark, run_fig9, scale)
    report(result)

    assert result.summary["inter"] > result.summary["intra"]
    assert result.summary["ratio"] > 1.05
