"""Benchmark regenerating Fig. 17 — sampling rate x channel count.

Paper: the system works across the whole grid of rates and channel
counts, and more channels damp the model's run-to-run variation.
"""

import numpy as np

from .conftest import run_once
from repro.eval.experiments import run_fig17


def test_fig17_rate_by_channels(benchmark, sweep_scale, report):
    result = run_once(benchmark, run_fig17, sweep_scale)
    report(result)

    s = result.summary
    # Usable accuracy over the entire grid.
    assert all(v >= 0.3 for v in s.values())
    # The best cell uses all four channels at a non-minimal rate.
    four_channel = [v for k, v in s.items() if k.endswith("_4ch")]
    one_channel = [v for k, v in s.items() if k.endswith("_1ch")]
    assert np.mean(four_channel) >= np.mean(one_channel) - 0.02
