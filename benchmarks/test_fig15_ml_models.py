"""Benchmark regenerating Fig. 15 — impact of the ML model.

Paper: the ROCKET+ridge combination reaches ~0.96 on the complete
test data with the shortest computation time; the alternative
learners (ResNet, KNN, RNN-FNN) may authenticate real users
comparably but reject attackers worse, i.e. they trade security for
nothing.
"""

from .conftest import run_once
from repro.eval.experiments import run_fig15


def test_fig15_ml_models(benchmark, sweep_scale, report):
    result = run_once(benchmark, run_fig15, sweep_scale)
    report(result)

    s = result.summary
    competitors = ("knn", "resnet", "rnn_fnn")
    # Rocket+ridge strictly dominates on the combined score.
    rocket = s["rocket_ridge_accuracy"] + s["rocket_ridge_trr"]
    for model in competitors:
        other = s[f"{model}_accuracy"] + s[f"{model}_trr"]
        assert rocket >= other - 0.05, model
    # And no competitor rejects attackers better by a wide margin.
    for model in competitors:
        assert s["rocket_ridge_trr"] >= s[f"{model}_trr"] - 0.1, model
