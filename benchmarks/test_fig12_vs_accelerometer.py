"""Benchmark regenerating Fig. 12 — PPG vs accelerometer.

Paper: PIN entry is nearly static, so wrist acceleration changes
little; the same ROCKET pipeline run on accelerometer data is both
less accurate and less attack-resistant than on PPG.
"""

from .conftest import run_once
from repro.eval.experiments import run_fig12


def test_fig12_ppg_vs_accelerometer(benchmark, scale, report):
    result = run_once(benchmark, run_fig12, scale)
    report(result)

    s = result.summary
    # PPG wins on accuracy outright; an accelerometer model may post a
    # high TRR simply by degenerating toward reject-everything, so the
    # security comparison is made at the combined operating point.
    assert s["ppg_accuracy"] > s["accel_accuracy"]
    assert (
        s["ppg_accuracy"] + s["ppg_trr"]
        > s["accel_accuracy"] + s["accel_trr"]
    )
