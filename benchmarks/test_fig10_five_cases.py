"""Benchmark regenerating Fig. 10 — accuracy for 5 cases + attack TRR.

Paper: one-handed ~98% accuracy (the best case), privacy boost ~83%,
double-3 ~88%, double-2 ~70% (the weakest), overall average ~84%; the
system rejects ~98% of both random and emulating attacks.
"""

from .conftest import run_once
from repro.eval.experiments import run_fig10


def test_fig10_five_cases(benchmark, scale, report):
    result = run_once(benchmark, run_fig10, scale)
    report(result)

    s = result.summary
    # One-handed is the best case.
    assert s["one_hand"] >= s["single_boost"] - 0.05
    assert s["one_hand"] >= s["double2"] - 0.05
    # Double-2 (all-must-pass over two short waveforms) does not beat
    # double-3 (2-of-3) by more than noise.
    assert s["double2"] <= s["double3"] + 0.1
    # Attacks are strongly rejected.
    assert s["trr_random"] >= 0.9
    assert s["trr_emulating"] >= 0.8
    # Overall usable.
    assert s["average"] >= 0.6
