"""Ablation benches for the design choices Section IV motivates.

Not paper artifacts, but each isolates one pipeline stage the paper
argues for:

- fine-grained keystroke calibration (Eq. 1) vs raw phone timestamps;
- smoothness-priors detrending before short-time energy detection;
- the energy threshold ratio (the paper picks 1/2 of the mean);
- the privacy-boost fusion depth K (Eq. 4).
"""

import numpy as np
import pytest

from repro.config import PipelineConfig
from repro.core import WaveformModel, fuse_waveforms, preprocess_trial
from repro.core.enrollment import extract_segments
from repro.data import StudyData, ThirdPartyStore
from repro.eval.reporting import format_table
from repro.signal import segment_around, short_time_energy

PIN = "1628"
FEATURES = 1260


@pytest.fixture(scope="module")
def data():
    return StudyData(n_users=8, seed=21)


@pytest.fixture(scope="module")
def config():
    return PipelineConfig()


def _key_segments(data, config, uid, count, centers="calibrated"):
    """Per-key segments using calibrated or raw reported centers."""
    by_key = {}
    for trial in data.trials(uid, PIN, "one_handed", count):
        pre = preprocess_trial(trial, config)
        for position, key in enumerate(trial.pin):
            if centers == "calibrated":
                center = pre.keystroke_indices[position]
            else:
                center = int(
                    round(trial.events[position].reported_time * trial.recording.fs)
                )
                center = int(np.clip(center, 0, trial.recording.n_samples - 1))
            seg = segment_around(pre.detrended, center, config.segment_window)
            by_key.setdefault(key, []).append(seg)
    return by_key


def test_ablation_calibration(benchmark, data, config):
    """Calibrated segment centers must beat raw reported timestamps."""

    def run():
        rows = []
        for centers in ("calibrated", "reported"):
            legit = _key_segments(data, config, 0, 14, centers)
            third = {}
            for uid in (1, 2, 3):
                for key, segs in _key_segments(data, config, uid, 5, centers).items():
                    third.setdefault(key, []).extend(segs)
            imposter = _key_segments(data, config, 7, 5, centers)

            accept, reject = [], []
            for key in PIN:
                model = WaveformModel(
                    num_features=FEATURES, balanced=True
                ).fit(np.stack(legit[key][:9]), np.stack(third[key]))
                accept.extend(
                    model.decision_function(np.stack(legit[key][9:])) > 0
                )
                reject.extend(
                    model.decision_function(np.stack(imposter[key])) <= 0
                )
            rows.append((centers, float(np.mean(accept)), float(np.mean(reject))))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(format_table(("centers", "accuracy", "trr"), rows,
                       title="Ablation — keystroke time calibration"))
    calibrated, reported = rows[0], rows[1]
    # Combined usability+security must not get better without calibration.
    assert calibrated[1] + calibrated[2] >= reported[1] + reported[2] - 0.05


def test_ablation_detrending(benchmark, data, config):
    """Detection over detrended vs merely filtered signals.

    Baseline wander inflates the mean short-time energy, so without
    detrending the 1/2-mean threshold misses keystrokes.
    """

    def run():
        hits = {"detrended": [], "filtered": []}
        for uid in range(4):
            for trial in data.trials(uid, PIN, "one_handed", 6):
                pre = preprocess_trial(trial, config)
                for label, signal in (
                    ("detrended", pre.reference),
                    ("filtered", pre.filtered.mean(axis=0)),
                ):
                    energy = short_time_energy(signal, config.energy_window)
                    threshold = config.energy_threshold_ratio * energy.mean()
                    detected = sum(
                        energy[i] > threshold for i in pre.keystroke_indices
                    )
                    hits[label].append(detected / len(trial.pin))
        return {k: float(np.mean(v)) for k, v in hits.items()}

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(format_table(
        ("signal", "keystroke detection rate"),
        [(k, v) for k, v in result.items()],
        title="Ablation — smoothness-priors detrending before detection",
    ))
    assert result["detrended"] >= result["filtered"] - 0.02
    assert result["detrended"] >= 0.9


def test_ablation_energy_threshold(benchmark, data, config):
    """Sweep of the detection threshold ratio around the paper's 1/2."""

    def run():
        rows = []
        for ratio in (0.25, 0.5, 0.75, 1.0):
            exact = []
            for uid in range(4):
                for trial in data.trials(uid, PIN, "one_handed", 6):
                    pre = preprocess_trial(trial, config)
                    energy = short_time_energy(pre.reference, config.energy_window)
                    threshold = ratio * energy.mean()
                    detected = sum(
                        energy[i] > threshold for i in pre.keystroke_indices
                    )
                    exact.append(detected == len(trial.pin))
            rows.append((ratio, float(np.mean(exact))))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(format_table(
        ("threshold ratio", "all-4-detected rate"),
        rows,
        title="Ablation — short-time energy threshold",
    ))
    by_ratio = dict(rows)
    # The paper's 1/2 setting is (near-)optimal in this sweep.
    assert by_ratio[0.5] >= max(by_ratio.values()) - 0.05


def test_ablation_fusion_depth(benchmark, data, config):
    """Privacy-boost fusion depth K (Eq. 4): K = 2..4."""

    def run():
        third_store = ThirdPartyStore(data, [1, 2, 3, 4], PIN)
        rows = []
        for depth in (2, 3, 4):
            def fused(trial):
                pre = preprocess_trial(trial, config)
                segments = extract_segments(pre, config)[:depth]
                return fuse_waveforms(segments)

            legit = [fused(t) for t in data.trials(0, PIN, "one_handed", 14)]
            third = [fused(t) for t in third_store.sample(30)]
            imposter = [fused(t) for t in data.trials(7, PIN, "one_handed", 6)]
            model = WaveformModel(num_features=FEATURES).fit(
                np.stack(legit[:9]), np.stack(third)
            )
            accuracy = float(np.mean(
                model.decision_function(np.stack(legit[9:])) > 0
            ))
            trr = float(np.mean(
                model.decision_function(np.stack(imposter)) <= 0
            ))
            rows.append((depth, accuracy, trr))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(format_table(
        ("fusion depth K", "accuracy", "trr"),
        rows,
        title="Ablation — waveform fusion depth",
    ))
    # Fusion keeps working at every depth (usable accuracy + security).
    for _depth, accuracy, trr in rows:
        assert accuracy + trr >= 1.0
