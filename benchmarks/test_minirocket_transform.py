"""Benchmark the MiniRocket transform engines against the reference loop.

Runs the same harness as ``scripts/bench_transform.py`` under
pytest-benchmark: the reference per-kernel loop, the vectorized NumPy
engine, and (when a C compiler is available) the compiled kernel, on
identical inputs. ``REPRO_BENCH_SCALE=smoke`` selects the small smoke
case; other scales run the paper-shaped cases.
"""

from __future__ import annotations

import importlib.util
import os
from pathlib import Path

from .conftest import run_once

_SCRIPT = (
    Path(__file__).resolve().parent.parent / "scripts" / "bench_transform.py"
)
_spec = importlib.util.spec_from_file_location("bench_transform", _SCRIPT)
bench_transform = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_transform)


def _cases():
    if os.environ.get("REPRO_BENCH_SCALE", "default").lower() == "smoke":
        return bench_transform.SMOKE_CASES
    return bench_transform.FULL_CASES


def test_minirocket_transform_engines(benchmark, report):
    case = run_once(benchmark, bench_transform.bench_case, *_cases()[0])

    lines = [f"MiniRocket transform — case {case['case']}"]
    for engine, stats in case["transform"].items():
        exact = "" if engine == "reference" else f"  exact={stats['exact']}"
        lines.append(f"  {engine:10s} {stats['best_s'] * 1e3:8.1f} ms{exact}")
    lines.append(
        f"  default engine: {case['default_engine']} "
        f"({case['speedup']:.1f}x over reference)"
    )
    report("\n".join(lines))

    # Every fast engine must reproduce the reference loop bit-for-bit.
    for engine, stats in case["transform"].items():
        if engine != "reference":
            assert stats["exact"], f"{engine} engine diverged from reference"
    # The default path must not be slower than the loop it replaced.
    assert case["speedup"] >= 1.0
