"""Perf-regression smoke test for the HTTP auth service.

Runs the same harness as ``scripts/bench_service.py`` under
pytest-benchmark: a closed-loop client fleet over the asyncio HTTP
server, Zipf traffic against a sharded packed population, cold and
warm registry passes. The throughput/latency floors are deliberately
far below the measured numbers (hundreds of auth/sec warm, p99 in the
tens of milliseconds) so the test flags genuine regressions, not CI
noise — while the wire-parity flags must hold exactly at any scale.
"""

from __future__ import annotations

import importlib.util
import os
from pathlib import Path

from .conftest import run_once

_SCRIPT = (
    Path(__file__).resolve().parent.parent / "scripts" / "bench_service.py"
)
_spec = importlib.util.spec_from_file_location("bench_service", _SCRIPT)
bench_service = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_service)


def _is_smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "default").lower() == "smoke"


def _params():
    if _is_smoke():
        return dict(users=48, features=840, n_templates=2, n_requests=48,
                    concurrencies=(1, 8), capacity=64, n_jobs=1)
    return dict(users=1000, features=840, n_templates=4, n_requests=256,
                concurrencies=(1, 8, 32), capacity=1024, n_jobs=None)


def test_service_closed_loop(benchmark, report):
    result = run_once(benchmark, bench_service.run, **_params())

    lines = []
    for level in result["closed_loop"]:
        for phase in ("cold", "warm"):
            stats = level[phase]
            lines.append(
                f"c={level['concurrency']:>2} {phase}: "
                f"{stats['auth_per_sec']:.0f} auth/s, "
                f"p50 {stats['p50_ms']:.1f} ms, p95 {stats['p95_ms']:.1f} ms, "
                f"p99 {stats['p99_ms']:.1f} ms"
            )
    report("service — " + " | ".join(lines))

    # Wire parity is non-negotiable at any scale: the HTTP path must
    # reproduce direct engine decisions bit-for-bit.
    parity = result["parity"]
    assert parity["decisions_match"]
    assert parity["scores_bit_exact"]
    assert parity["n_accepted"] > 0

    for level in result["closed_loop"]:
        cold, warm = level["cold"], level["warm"]
        # The cold pass must actually have been cold (backend loads)
        # and the warm pass actually warm (the preload did its job).
        assert cold["registry_misses"] > 0, level["concurrency"]
        assert warm["registry_misses"] == 0, level["concurrency"]
        # Loose floors against shared-runner noise; the committed
        # full-mode BENCH_service.json holds the real numbers.
        assert warm["auth_per_sec"] >= 10.0, level["concurrency"]
        assert warm["p99_ms"] <= 2000.0, level["concurrency"]
        assert warm["requests"] > 0 and cold["requests"] > 0
    # More clients must not collapse throughput below the serial rate.
    by_conc = {lv["concurrency"]: lv for lv in result["closed_loop"]}
    top = max(by_conc)
    assert (
        by_conc[top]["warm"]["auth_per_sec"]
        >= 0.5 * by_conc[1]["warm"]["auth_per_sec"]
    )
