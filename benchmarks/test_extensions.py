"""Benchmarks for the extension experiments (beyond the paper).

These probe the design space around the paper: template aging,
enrollment size, and the score-threshold geometry.
"""

from .conftest import run_once
from repro.eval.extensions import (
    run_aging_sweep,
    run_eer_analysis,
    run_enrollment_size_sweep,
)


def test_ext_aging(benchmark, sweep_scale, report):
    result = run_once(benchmark, run_aging_sweep, sweep_scale)
    report(result)

    s = result.summary
    # Fresh templates work; extreme aging never helps.
    assert s["acc_age_0"] >= 0.6
    assert s["acc_age_2"] <= s["acc_age_0"] + 0.05


def test_ext_enrollment_size(benchmark, sweep_scale, report):
    result = run_once(benchmark, run_enrollment_size_sweep, sweep_scale)
    report(result)

    s = result.summary
    # More enrollment entries never hurt much.
    assert s["acc_12"] >= s["acc_3"] - 0.1


def test_ext_eer(benchmark, sweep_scale, report):
    result = run_once(benchmark, run_eer_analysis, sweep_scale)
    report(result)

    s = result.summary
    # Genuine and impostor scores are well separated.
    assert s["eer"] <= 0.25
