"""Benchmark regenerating Fig. 14 — third-party dataset size.

Paper: growing the third-party store from 20 to 300 samples pushes
the rejection rate up while authentication accuracy drifts down (the
fixed 9 legitimate entries get swamped); 100 is the chosen trade-off.
"""

from .conftest import run_once
from repro.eval.experiments import run_fig14


def test_fig14_thirdparty_size(benchmark, sweep_scale, report):
    result = run_once(benchmark, run_fig14, sweep_scale)
    report(result)

    s = result.summary
    # Rejection improves (or holds) as the store grows from tiny...
    assert s["trr_300"] >= s["trr_5"] - 0.02
    # ...while accuracy never improves with more negatives.
    assert s["acc_300"] <= s["acc_5"] + 0.05
