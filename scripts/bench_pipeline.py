#!/usr/bin/env python3
"""Benchmark the preprocessing layer and write BENCH_pipeline.json.

Two sections:

- ``preprocess`` — one PIN-entry trial at the paper's shape (4 PPG
  channels, ~5 s at 100 Hz), timed through three paths:

  - ``reference`` — the pre-optimization path, kept as
    ``repro.core.pipeline._preprocess_trial_reference``: per-channel
    median filtering and a generic sparse-LU detrend solve per channel;
  - ``banded`` — ``preprocess_trial``: vectorized median filter, one
    per-trial Savitzky-Golay pass, and the cached banded-Cholesky
    multi-RHS detrend;
  - ``batched`` — ``preprocess_trials`` over the whole trial list, so
    same-shape trials share a single stacked detrend solve.

- ``evaluate_user`` — one SMOKE-scale victim evaluation, timed with
  negative sharing off (``unshared``), then through a cold feature
  cache (``cold_cache``), then again with the cache warm
  (``warm_cache``) — the steady state of a sweep where many victims or
  repeats reuse the same third-party store.

The headline numbers are ``preprocess.speedup_batched`` (reference
per-trial time over batched per-trial time) and
``evaluate_user.speedup_warm`` (unshared time over warm-cache time).

Usage::

    python scripts/bench_pipeline.py                  # full, writes JSON
    python scripts/bench_pipeline.py --smoke          # quick, no JSON
    python scripts/bench_pipeline.py --out custom.json
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import PipelineConfig  # noqa: E402
from repro.core.pipeline import (  # noqa: E402
    _preprocess_trial_reference,
    preprocess_trial,
    preprocess_trials,
)
from repro.data import StudyData  # noqa: E402
from repro.eval.experiments import SMOKE, _task_params  # noqa: E402
from repro.eval.featurecache import (  # noqa: E402
    cache_stats,
    clear_default_cache,
)
from repro.eval.protocol import evaluate_user  # noqa: E402
from repro.signal.detrend import clear_detrend_cache  # noqa: E402


def _time_call(fn, repeats: int):
    """Best/mean wall time over ``repeats`` untraced runs, plus the
    tracemalloc peak of one extra traced run.

    Unlike ``bench_transform``'s combined loop, timing and tracing are
    separate passes here: tracemalloc's per-allocation hook costs far
    more than the banded solves being measured, so tracing the timed
    runs would understate the speedup several-fold.
    """
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, {
        "best_s": min(times),
        "mean_s": float(np.mean(times)),
        "peak_traced_mib": peak / 2**20,
    }


def bench_preprocess(n_trials: int, repeats: int):
    """Time the three preprocessing paths over paper-shaped trials."""
    data = StudyData(n_users=4, seed=17)
    trials = []
    for uid in range(4):
        trials.extend(data.trials(uid, "1628", "one_handed", n_trials // 4))
    config = PipelineConfig()
    shapes = sorted({t.recording.samples.shape for t in trials})

    def run_reference():
        return [_preprocess_trial_reference(t, config) for t in trials]

    def run_banded():
        clear_detrend_cache()
        return [preprocess_trial(t, config) for t in trials]

    def run_batched():
        clear_detrend_cache()
        return preprocess_trials(trials, config)

    _, ref = _time_call(run_reference, repeats)
    _, banded = _time_call(run_banded, repeats)
    _, batched = _time_call(run_batched, repeats)

    per_trial = {
        "reference_ms": ref["best_s"] / len(trials) * 1e3,
        "banded_ms": banded["best_s"] / len(trials) * 1e3,
        "batched_ms": batched["best_s"] / len(trials) * 1e3,
    }
    return {
        "n_trials": len(trials),
        "n_channels": shapes[0][0],
        "trial_lengths": [int(s[1]) for s in shapes],
        "fs": config.fs,
        "repeats": repeats,
        "paths": {"reference": ref, "banded": banded, "batched": batched},
        "per_trial_ms": per_trial,
        "speedup_banded": ref["best_s"] / banded["best_s"],
        "speedup_batched": ref["best_s"] / batched["best_s"],
    }


def bench_evaluate(repeats: int):
    """Time one SMOKE victim evaluation: unshared vs cold vs warm cache."""
    scale = SMOKE
    data = StudyData(n_users=scale.n_users, seed=scale.seed)
    params = _task_params(scale)
    victim = scale.victim_ids[0]

    def run(share):
        return evaluate_user(data, victim, share_negatives=share, **params)

    clear_default_cache()
    _, unshared = _time_call(lambda: run(False), repeats)

    clear_default_cache()
    cold_result, cold = _time_call(lambda: run(True), 1)
    warm_result, warm = _time_call(lambda: run(True), repeats)
    stats = cache_stats()

    return {
        "scale": "SMOKE",
        "victim": victim,
        "repeats": repeats,
        "paths": {"unshared": unshared, "cold_cache": cold, "warm_cache": warm},
        # A cache hit must change nothing: warm rows == cold rows.
        "results_match": warm_result == cold_result,
        "speedup_warm": unshared["best_s"] / warm["best_s"],
        "cache": {
            "trial_hits": stats.trial_hits,
            "trial_misses": stats.trial_misses,
            "bank_hits": stats.bank_hits,
            "bank_misses": stats.bank_misses,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer trials and repeats; no JSON unless --out is given",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_pipeline.json at the repo root "
        "in full mode, nothing in --smoke mode)",
    )
    args = parser.parse_args(argv)

    n_trials, pre_repeats, eval_repeats = (8, 2, 1) if args.smoke else (16, 5, 3)
    report = {
        "benchmark": "pipeline-preprocess",
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "preprocess": bench_preprocess(n_trials, pre_repeats),
        "evaluate_user": bench_evaluate(eval_repeats),
    }

    pre = report["preprocess"]
    print(
        "[preprocess] per trial: "
        f"reference {pre['per_trial_ms']['reference_ms']:.2f} ms | "
        f"banded {pre['per_trial_ms']['banded_ms']:.2f} ms | "
        f"batched {pre['per_trial_ms']['batched_ms']:.2f} ms | "
        f"speedup {pre['speedup_batched']:.1f}x",
        file=sys.stderr,
    )
    ev = report["evaluate_user"]
    print(
        "[evaluate_user] "
        f"unshared {ev['paths']['unshared']['best_s']:.3f} s | "
        f"cold {ev['paths']['cold_cache']['best_s']:.3f} s | "
        f"warm {ev['paths']['warm_cache']['best_s']:.3f} s | "
        f"speedup {ev['speedup_warm']:.1f}x | "
        f"results_match={ev['results_match']}",
        file=sys.stderr,
    )
    report["peak_rss_mib"] = (
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    )

    out = args.out
    if out is None and not args.smoke:
        out = str(REPO_ROOT / "BENCH_pipeline.json")
    if out:
        with open(out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {out}", file=sys.stderr)
    else:
        json.dump(report, sys.stdout, indent=2)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
