#!/usr/bin/env python3
"""Benchmark registry storage at population scale; write BENCH_registry.json.

Five sections, proving ROADMAP item 2's "millions of users" claim on
measured numbers rather than arithmetic:

- ``templates`` — wall time to enroll the distinct simulated users that
  seed the population (the real pipeline, process-pool fan-out) and the
  per-user payload each storage dtype produces.
- ``size`` — bytes per user at the paper's feature budget: one loose
  ``.npz`` archive (the baseline, extractors re-stored per user) versus
  the packed record (extractors shared per arena), and the resulting
  models-per-GB for float64/float32/float16.
- ``parity`` — the quantization contract on the standard probe battery
  (legit / two-handed / attack / wrong-PIN): float64 bit-exact,
  float32/float16 decision-identical with the measured max score drift.
- ``cold_load`` — per-backend cold-load latency: p50/p99 of a backend
  ``load()`` (npz directory, sharded packed, packed arena), the
  first-load cost that includes shared-extractor decode, and the
  arena's open-time index scan at population scale.
- ``thrash`` — a 10k+-user arena behind ``ModelRegistry`` under the
  thread-thrash pattern with Zipf-distributed traffic: gets/sec, LRU
  hit rate, and eviction counts from ``ModelRegistry.stats``.

Usage::

    python scripts/bench_registry.py                  # full, writes JSON
    python scripts/bench_registry.py --smoke          # quick, no JSON
    python scripts/bench_registry.py --users 50000 --out custom.json
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import PAPER_PINS  # noqa: E402
from repro.core import (  # noqa: E402
    EnrollmentOptions,
    ModelRegistry,
    NpzDirectoryBackend,
    P2Auth,
    PackedArenaBackend,
    ShardedPackedBackend,
    pack_authenticator,
    save_authenticator,
    unpack_authenticator,
)
from repro.core.packing import QUANT_DTYPES  # noqa: E402
from repro.data import StudyData, ThirdPartyStore  # noqa: E402
from repro.eval import enroll_templates, materialize_population  # noqa: E402

PIN = PAPER_PINS[0]

#: Zipf exponent for the thrash traffic (web-like popularity skew).
ZIPF_A = 1.2


def _percentiles(times_s):
    times_ms = np.asarray(times_s) * 1e3
    return {
        "p50_ms": float(np.percentile(times_ms, 50)),
        "p99_ms": float(np.percentile(times_ms, 99)),
        "mean_ms": float(np.mean(times_ms)),
    }


def build_world(num_features: int):
    """One enrolled authenticator plus the labelled probe battery.

    The cohort matches the test suite's world (7 users, seed 5, 24
    third-party negatives) so the battery exercises both outcomes:
    legit probes accept, emulation attacks and wrong PINs reject.
    """
    data = StudyData(n_users=7, seed=5)
    third_party = ThirdPartyStore(data, [1, 2, 3, 4, 5, 6], PIN).sample(24)
    auth = P2Auth(
        pin=PIN, options=EnrollmentOptions(num_features=num_features)
    )
    auth.enroll(data.trials(0, PIN, "one_handed", 8)[:6], third_party)
    battery = [
        (t, None)
        for t in (
            data.trials(0, PIN, "one_handed", 10)[6:8]  # legit
            + data.trials(0, PIN, "double3", 2)          # two-handed
            + data.emulating_trials(4, 0, PIN, 2)        # attack
        )
    ]
    battery.append((data.trials(0, PIN, "one_handed", 10)[6], "0000"))
    return auth, battery


def bench_templates(n_templates: int, features: int, n_jobs):
    """Enroll the distinct template users; report cost and payloads."""
    start = time.perf_counter()
    templates = enroll_templates(
        n_templates, num_features=features, n_jobs=n_jobs
    )
    elapsed = time.perf_counter() - start
    sample = unpack_authenticator(templates[0])
    per_dtype = {
        dtype: pack_authenticator(sample, dtype=dtype).record_nbytes
        for dtype in QUANT_DTYPES
    }
    extractor_bytes = sum(
        len(blob) for blob in templates[0].extractors.values()
    )
    return templates, {
        "n_templates": n_templates,
        "num_features": features,
        "enroll_wall_s": elapsed,
        "record_bytes": per_dtype,
        "extractor_bytes_once_per_arena": extractor_bytes,
        "n_extractors": len(templates[0].extractors),
    }


def bench_size(features: int):
    """Per-user bytes and models/GB: npz baseline vs packed records."""
    auth, _ = build_world(features)
    with tempfile.TemporaryDirectory() as root:
        npz_path = Path(root) / "user.npz"
        save_authenticator(auth, npz_path)
        npz_bytes = npz_path.stat().st_size
    packed = {
        dtype: pack_authenticator(auth, dtype=dtype)
        for dtype in QUANT_DTYPES
    }
    out = {
        "num_features": features,
        "npz_bytes_per_user": npz_bytes,
        "npz_models_per_gb": int(1e9 / npz_bytes),
        "packed": {},
    }
    for dtype, pack in packed.items():
        out["packed"][dtype] = {
            "record_bytes_per_user": pack.record_nbytes,
            "extractor_bytes_once_per_arena": sum(
                len(blob) for blob in pack.extractors.values()
            ),
            "models_per_gb": int(1e9 / pack.record_nbytes),
            "vs_npz": npz_bytes / pack.record_nbytes,
        }
    return out


def bench_parity(features: int):
    """The quantization contract, measured on the probe battery."""
    auth, battery = build_world(features)
    reference = [
        auth.authenticate(trial, claimed_pin=pin) for trial, pin in battery
    ]
    out = {
        "num_features": features,
        "battery": {
            "n_probes": len(battery),
            "n_accepted": sum(d.accepted for d in reference),
        },
        "dtypes": {},
    }
    for dtype in QUANT_DTYPES:
        reloaded = unpack_authenticator(
            pack_authenticator(auth, dtype=dtype)
        )
        decisions = [
            reloaded.authenticate(trial, claimed_pin=pin)
            for trial, pin in battery
        ]
        max_delta = max(
            (
                abs(a - b)
                for ref, got in zip(reference, decisions)
                for a, b in zip(ref.scores, got.scores)
            ),
            default=0.0,
        )
        out["dtypes"][dtype] = {
            "decisions_match": all(
                got.accepted == ref.accepted
                and got.input_case == ref.input_case
                and got.pin_ok == ref.pin_ok
                for ref, got in zip(reference, decisions)
            ),
            "scores_bit_exact": all(
                got.scores == ref.scores
                for ref, got in zip(reference, decisions)
            ),
            "max_abs_score_delta": max_delta,
        }
    return out


def bench_cold_load(templates, n_users: int, n_loads: int, seed: int = 7):
    """Cold-load latency per backend over ``n_loads`` sampled users."""
    rng = np.random.default_rng(seed)
    auth = unpack_authenticator(templates[0])
    out = {"n_users": n_users, "n_loads": n_loads, "backends": {}}
    with tempfile.TemporaryDirectory() as root:
        backends = {
            "npz": NpzDirectoryBackend(Path(root) / "npz"),
            "sharded": ShardedPackedBackend(Path(root) / "sharded"),
            "arena": PackedArenaBackend(Path(root) / "arena"),
        }
        ids = {}
        for name, backend in backends.items():
            if name == "npz":
                # The npz baseline has no packed fast path; population
                # size is capped so store time stays sane.
                ids[name] = [f"u{i:07d}" for i in range(min(n_users, 64))]
                for user_id in ids[name]:
                    backend.store(user_id, auth)
            else:
                ids[name] = materialize_population(
                    backend, n_users, templates
                )
        if hasattr(backends["arena"], "close"):
            backends["arena"].close()

        for name in backends:
            # Fresh instance: empty extractor pool, cold index.
            root_dir = Path(root) / name
            opener = {
                "npz": NpzDirectoryBackend,
                "sharded": ShardedPackedBackend,
                "arena": PackedArenaBackend,
            }[name]
            start = time.perf_counter()
            backend = opener(root_dir)
            open_ms = (time.perf_counter() - start) * 1e3

            first_user = ids[name][0]
            start = time.perf_counter()
            backend.load(first_user)
            first_ms = (time.perf_counter() - start) * 1e3

            picks = rng.choice(len(ids[name]), size=n_loads)
            times = []
            for pick in picks:
                user_id = ids[name][int(pick)]
                start = time.perf_counter()
                backend.load(user_id)
                times.append(time.perf_counter() - start)
            out["backends"][name] = {
                "population": len(ids[name]),
                "open_ms": open_ms,
                "first_load_ms": first_ms,
                **_percentiles(times),
            }
    return out


def bench_thrash(
    templates, n_users: int, capacity: int, threads: int, ops_per_thread: int
):
    """Zipf traffic against a capacity-bounded registry over the arena."""
    with tempfile.TemporaryDirectory() as root:
        backend = PackedArenaBackend(root)
        ids = materialize_population(backend, n_users, templates)
        registry = ModelRegistry(capacity=capacity, backend=backend)
        barrier = threading.Barrier(threads + 1)
        errors = []

        def worker(worker_id: int) -> None:
            # Zipf-distributed user picks, wrapped into range: rank r
            # maps to user id r % n_users, keeping the popularity skew
            # while every pick stays in the population.
            rng = np.random.default_rng(1000 + worker_id)
            picks = (rng.zipf(ZIPF_A, ops_per_thread) - 1) % n_users
            barrier.wait()
            try:
                for pick in picks:
                    auth = registry.get(ids[int(pick)])
                    assert auth.enrolled
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        pool = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        for t in pool:
            t.start()
        barrier.wait()
        start = time.perf_counter()
        for t in pool:
            t.join()
        wall = time.perf_counter() - start
        if errors:
            raise errors[0]

        stats = registry.stats
        total = threads * ops_per_thread
        return {
            "n_users": n_users,
            "capacity": capacity,
            "threads": threads,
            "ops": total,
            "zipf_a": ZIPF_A,
            "wall_s": wall,
            "gets_per_sec": total / wall,
            "hit_rate": stats["hits"] / max(1, stats["hits"] + stats["misses"]),
            **stats,
            "arena_bytes": backend.size_bytes(),
            "arena_bytes_per_user": backend.size_bytes() / n_users,
        }


def run(
    *,
    users: int,
    features: int,
    size_features: int,
    n_templates: int,
    n_loads: int,
    capacity: int,
    threads: int,
    ops_per_thread: int,
    n_jobs=None,
):
    """The full harness; shared by the script and the perf-smoke test."""
    templates, templates_report = bench_templates(
        n_templates, features, n_jobs
    )
    return {
        "templates": templates_report,
        "size": bench_size(size_features),
        "parity": bench_parity(features),
        "cold_load": bench_cold_load(templates, users, n_loads),
        "thrash": bench_thrash(
            templates, users, capacity, threads, ops_per_thread
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small population and fewer ops; no JSON unless --out is given",
    )
    parser.add_argument(
        "--users",
        type=int,
        default=None,
        help="simulated population size (default 10000 full / 200 smoke)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for template enrollment (0 = all cores)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_registry.json at the repo root "
        "in full mode, nothing in --smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        params = dict(
            users=args.users or 200, features=840, size_features=840,
            n_templates=2, n_loads=25, capacity=64, threads=4,
            ops_per_thread=100, n_jobs=args.jobs,
        )
    else:
        params = dict(
            users=args.users or 10_000, features=840, size_features=9996,
            n_templates=4, n_loads=100, capacity=256, threads=8,
            ops_per_thread=1000, n_jobs=args.jobs,
        )

    report = {
        "benchmark": "registry-storage",
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        **run(**params),
    }

    size = report["size"]
    f32 = size["packed"]["float32"]
    print(
        f"[size] npz {size['npz_bytes_per_user']} B/user "
        f"({size['npz_models_per_gb']}/GB) | packed f32 "
        f"{f32['record_bytes_per_user']} B/user ({f32['models_per_gb']}/GB, "
        f"{f32['vs_npz']:.2f}x)",
        file=sys.stderr,
    )
    parity = report["parity"]["dtypes"]
    print(
        "[parity] f64 bit-exact="
        f"{parity['float64']['scores_bit_exact']} | f32 decisions="
        f"{parity['float32']['decisions_match']} "
        f"(max |d|={parity['float32']['max_abs_score_delta']:.2e}) | "
        f"f16 decisions={parity['float16']['decisions_match']} "
        f"(max |d|={parity['float16']['max_abs_score_delta']:.2e})",
        file=sys.stderr,
    )
    for name, cold in report["cold_load"]["backends"].items():
        print(
            f"[cold:{name}] open {cold['open_ms']:.1f} ms | first "
            f"{cold['first_load_ms']:.1f} ms | p50 {cold['p50_ms']:.1f} ms "
            f"| p99 {cold['p99_ms']:.1f} ms over {cold['population']} users",
            file=sys.stderr,
        )
    thrash = report["thrash"]
    print(
        f"[thrash] {thrash['gets_per_sec']:.0f} gets/s over "
        f"{thrash['n_users']} users (capacity {thrash['capacity']}, "
        f"{thrash['threads']} threads) | hit rate {thrash['hit_rate']:.3f} "
        f"| evictions {thrash['evictions']}",
        file=sys.stderr,
    )
    report["peak_rss_mib"] = (
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    )

    out = args.out
    if out is None and not args.smoke:
        out = str(REPO_ROOT / "BENCH_registry.json")
    if out:
        with open(out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {out}", file=sys.stderr)
    else:
        json.dump(report, sys.stdout, indent=2)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
