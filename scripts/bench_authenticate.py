#!/usr/bin/env python3
"""Benchmark the authenticate hot path and write BENCH_authenticate.json.

Five sections, all on paper-shaped probes (4 PPG channels, ~5 s at
100 Hz):

- ``single`` — one warm probe through the staged engine
  (``P2Auth.authenticate``) and the fused engine
  (``P2Auth.authenticate_fast``), interleaved within every iteration so
  CPU-frequency drift cancels instead of biasing one side; p50/p95/p99
  per path and the decision-equality flag.
- ``cold`` — the price of the first call: a cold start (empty SG /
  detrend / kernel-plan caches, fresh scratch buffers) versus calling
  :meth:`P2Auth.warmup` first and then authenticating.
- ``stages`` — the per-stage wall-time budget from ``profile=True``
  (median over the run), the observability face of the same numbers.
- ``batch`` — ``P2Auth.authenticate_many`` versus an authenticate()
  loop at batch sizes 1/4/16/64, with the batch==loop parity flag.
- ``registry`` — cross-user batching: ``ModelRegistry
  .authenticate_many`` over mixed probes of three enrolled users
  versus a get()+authenticate() loop (one C-kernel transform call for
  the whole batch versus one per probe).

The headline numbers are ``single.speedup_fused`` (staged p50 over
fused p50) and ``single.fused.p50_ms`` — the acceptance gate wants
>= 1.5x and <= 10 ms in full mode.

Usage::

    python scripts/bench_authenticate.py                  # full, writes JSON
    python scripts/bench_authenticate.py --smoke          # quick, no JSON
    python scripts/bench_authenticate.py --out custom.json
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import PAPER_PINS  # noqa: E402
from repro.core import (  # noqa: E402
    EnrollmentOptions,
    ModelRegistry,
    P2Auth,
)
from repro.data import StudyData, ThirdPartyStore  # noqa: E402
from repro.features import c_kernel_available  # noqa: E402
from repro.signal.detrend import clear_detrend_cache  # noqa: E402
from repro.signal.filters import clear_savgol_cache  # noqa: E402

PIN = PAPER_PINS[0]


def _percentiles(times_s):
    times_ms = np.asarray(times_s) * 1e3
    return {
        "p50_ms": float(np.percentile(times_ms, 50)),
        "p95_ms": float(np.percentile(times_ms, 95)),
        "p99_ms": float(np.percentile(times_ms, 99)),
        "mean_ms": float(np.mean(times_ms)),
    }


def _same_decision(a, b) -> bool:
    """Field-exact equality, ignoring the observability-only timings."""
    fields = ("accepted", "reason", "input_case", "pin_ok", "scores",
              "keys_checked", "passes", "degradation")
    return all(getattr(a, f) == getattr(b, f) for f in fields)


def build_world(num_features: int):
    """One enrolled authenticator plus labelled probe pools."""
    data = StudyData(n_users=5, seed=21)
    third_party = ThirdPartyStore(data, [1, 2], PIN).sample(20)
    enroll_trials = data.trials(0, PIN, "one_handed", 8)[:6]
    auth = P2Auth(pin=PIN, options=EnrollmentOptions(num_features=num_features))
    auth.enroll(enroll_trials, third_party)
    probes = (
        data.trials(0, PIN, "one_handed", 16)[6:]
        + data.emulating_trials(4, 0, PIN, 3)
        + data.trials(0, PIN, "double3", 3)
    )
    return data, third_party, auth, probes


def _reset_cold(auth) -> None:
    """Return the process to a just-started state for this authenticator.

    Clears every cache :meth:`P2Auth.warmup` would prime — SG
    coefficients, detrend factorizations, the marshalled kernel plans —
    and discards the fused pipeline so its scratch buffers and warmup
    flags are rebuilt. (The compiled .so itself stays on disk: a real
    service restart reuses it too, so evicting it would overstate the
    cold cost.)
    """
    clear_detrend_cache()
    clear_savgol_cache()
    models = auth.models
    for model in [models.full_model, models.fused_model, *models.key_models.values()]:
        rocket = getattr(model, "_rocket", None)
        if rocket is not None:
            rocket._plan = None
    auth._hot_pipeline = None


def bench_single(auth, probe, repeats: int):
    """Warm staged vs fused on one probe, interleaved per iteration."""
    auth.warmup([probe.recording.n_samples])
    staged_ref = auth.authenticate(probe)
    fused_ref = auth.authenticate_fast(probe)

    staged_times, fused_times = [], []
    for i in range(repeats):
        # Alternate which path goes first so a frequency ramp mid-run
        # penalises both paths equally.
        order = (("staged", auth.authenticate), ("fused", auth.authenticate_fast))
        if i % 2:
            order = order[::-1]
        for name, fn in order:
            start = time.perf_counter()
            fn(probe)
            elapsed = time.perf_counter() - start
            (staged_times if name == "staged" else fused_times).append(elapsed)

    staged = _percentiles(staged_times)
    fused = _percentiles(fused_times)
    return {
        "repeats": repeats,
        "signal_length": probe.recording.n_samples,
        "staged": staged,
        "fused": fused,
        "speedup_fused": staged["p50_ms"] / fused["p50_ms"],
        "parity_ok": _same_decision(staged_ref, fused_ref),
    }


def bench_cold(auth, probe):
    """First-call latency: cold start vs warmup()-then-authenticate."""
    n = probe.recording.n_samples

    _reset_cold(auth)
    start = time.perf_counter()
    cold_decision = auth.authenticate_fast(probe)
    cold_first_ms = (time.perf_counter() - start) * 1e3

    _reset_cold(auth)
    start = time.perf_counter()
    auth.warmup([n])
    warmup_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    warm_decision = auth.authenticate_fast(probe)
    warm_first_ms = (time.perf_counter() - start) * 1e3

    return {
        "cold_first_call_ms": cold_first_ms,
        "warmup_ms": warmup_ms,
        "first_call_after_warmup_ms": warm_first_ms,
        "parity_ok": _same_decision(cold_decision, warm_decision),
    }


def bench_stages(auth, probe, repeats: int):
    """Median per-stage budget of the staged engine (profile=True)."""
    auth.warmup([probe.recording.n_samples])
    per_stage = {}
    for _ in range(repeats):
        decision = auth.authenticate(probe, profile=True)
        for name, seconds in decision.stage_timings:
            per_stage.setdefault(name, []).append(seconds * 1e3)
    return {
        "repeats": repeats,
        "median_ms": {name: float(np.median(v)) for name, v in per_stage.items()},
    }


def bench_batches(auth, probes, sizes, repeats: int):
    """authenticate_many vs an authenticate() loop per batch size."""
    auth.warmup([t.recording.n_samples for t in probes])
    out = {}
    for size in sizes:
        batch = [probes[i % len(probes)] for i in range(size)]

        batch_times, loop_times = [], []
        batch_decisions = loop_decisions = None
        for i in range(repeats):
            runs = (("batch", lambda: auth.authenticate_many(batch)),
                    ("loop", lambda: [auth.authenticate(t) for t in batch]))
            if i % 2:
                runs = runs[::-1]
            for name, fn in runs:
                start = time.perf_counter()
                result = fn()
                elapsed = time.perf_counter() - start
                if name == "batch":
                    batch_times.append(elapsed)
                    batch_decisions = result
                else:
                    loop_times.append(elapsed)
                    loop_decisions = result

        best_batch = min(batch_times)
        best_loop = min(loop_times)
        out[str(size)] = {
            "batch_per_probe_ms": best_batch / size * 1e3,
            "loop_per_probe_ms": best_loop / size * 1e3,
            "speedup_batch": best_loop / best_batch,
            "parity_ok": all(
                _same_decision(a, b)
                for a, b in zip(batch_decisions, loop_decisions)
            ),
        }
    return {"repeats": repeats, "sizes": out}


def bench_registry(num_features: int, repeats: int):
    """Cross-user batch vs loop through a warm ModelRegistry."""
    data = StudyData(n_users=5, seed=33)
    registry = ModelRegistry()
    users = ["alice", "bob", "carol"]
    for uid, name in enumerate(users):
        third_party = ThirdPartyStore(
            data, [u for u in range(3) if u != uid], PIN
        ).sample(12)
        auth = P2Auth(
            pin=PIN, options=EnrollmentOptions(num_features=num_features)
        )
        auth.enroll(data.trials(uid, PIN, "one_handed", 8)[:6], third_party)
        registry.add(name, auth)

    user_ids, trials = [], []
    for uid, name in enumerate(users):
        own = data.trials(uid, PIN, "one_handed", 10)[6:8]
        user_ids += [name, name]
        trials += own
    user_ids.append("alice")
    trials.append(data.emulating_trials(4, 0, PIN, 1)[0])

    for name in users:
        registry.get(name).warmup([t.recording.n_samples for t in trials])

    batch_times, loop_times = [], []
    batch_decisions = loop_decisions = None
    for i in range(repeats):
        runs = (
            ("batch", lambda: registry.authenticate_many(user_ids, trials)),
            ("loop", lambda: [
                registry.get(u).authenticate(t)
                for u, t in zip(user_ids, trials)
            ]),
        )
        if i % 2:
            runs = runs[::-1]
        for name, fn in runs:
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
            if name == "batch":
                batch_times.append(elapsed)
                batch_decisions = result
            else:
                loop_times.append(elapsed)
                loop_decisions = result

    return {
        "n_users": len(users),
        "n_probes": len(trials),
        "repeats": repeats,
        "batch_ms": min(batch_times) * 1e3,
        "loop_ms": min(loop_times) * 1e3,
        "speedup_batch": min(loop_times) / min(batch_times),
        "parity_ok": all(
            _same_decision(a, b)
            for a, b in zip(batch_decisions, loop_decisions)
        ),
    }


def run(num_features: int, single_repeats: int, stage_repeats: int,
        batch_repeats: int, sizes):
    """The full harness; shared by the script and the perf-smoke test."""
    _, _, auth, probes = build_world(num_features)
    probe = probes[0]
    return {
        "num_features": num_features,
        "c_kernel": c_kernel_available(),
        "cold": bench_cold(auth, probe),
        "single": bench_single(auth, probe, single_repeats),
        "stages": bench_stages(auth, probe, stage_repeats),
        "batch": bench_batches(auth, probes, sizes, batch_repeats),
        "registry": bench_registry(num_features, batch_repeats),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller feature budget and fewer repeats; no JSON unless "
        "--out is given",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_authenticate.json at the repo "
        "root in full mode, nothing in --smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        params = dict(num_features=840, single_repeats=30, stage_repeats=10,
                      batch_repeats=2, sizes=(1, 4, 16))
    else:
        params = dict(num_features=9996, single_repeats=200, stage_repeats=50,
                      batch_repeats=3, sizes=(1, 4, 16, 64))

    report = {
        "benchmark": "authenticate-hot-path",
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        **run(**params),
    }

    single = report["single"]
    print(
        "[single] staged p50 "
        f"{single['staged']['p50_ms']:.2f} ms | fused p50 "
        f"{single['fused']['p50_ms']:.2f} ms | speedup "
        f"{single['speedup_fused']:.2f}x | parity={single['parity_ok']}",
        file=sys.stderr,
    )
    cold = report["cold"]
    print(
        "[cold] first call "
        f"{cold['cold_first_call_ms']:.1f} ms | warmup "
        f"{cold['warmup_ms']:.1f} ms | first call after warmup "
        f"{cold['first_call_after_warmup_ms']:.2f} ms",
        file=sys.stderr,
    )
    reg = report["registry"]
    print(
        f"[registry] batch {reg['batch_ms']:.1f} ms | loop "
        f"{reg['loop_ms']:.1f} ms over {reg['n_probes']} probes | "
        f"parity={reg['parity_ok']}",
        file=sys.stderr,
    )
    report["peak_rss_mib"] = (
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    )

    out = args.out
    if out is None and not args.smoke:
        out = str(REPO_ROOT / "BENCH_authenticate.json")
    if out:
        with open(out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {out}", file=sys.stderr)
    else:
        json.dump(report, sys.stdout, indent=2)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
