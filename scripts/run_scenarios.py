#!/usr/bin/env python3
"""Run the scenario sweep and write SCENARIOS.json / SCENARIOS.md.

Sweeps the daily-wear scenarios (sustained motion states and the
cross-device transfer) over an intensity × template-age grid against
enrolled victims, then compares template-maintenance policies —
``frozen``, ``periodic_reenroll``, ``sliding_update`` — as FRR-vs-age
and FAR-vs-age curves on clean probes. See the "Scenarios" section of
``docs/robustness.md`` for how to read the numbers.

Two invariants gate the exit code:

- no scenario raises FAR (pooled over ages and victims) above its own
  intensity-0 baseline;
- at the oldest simulated age, at least one update policy has strictly
  lower FRR than the frozen template.

The report is timestamp-free and fully seeded (``--seed``, or the
``REPRO_FAULT_SEED`` environment variable): rerunning with the same
grid reproduces the committed artifacts byte for byte.

Usage::

    python scripts/run_scenarios.py                  # full, writes JSON+MD
    python scripts/run_scenarios.py --smoke          # CI subset, no files
    python scripts/run_scenarios.py --jobs 4         # parallel fan-out
    python scripts/run_scenarios.py --out custom.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.data import StudyData  # noqa: E402
from repro.eval.robustness import (  # noqa: E402
    DEFAULT_AGE_GRID,
    DEFAULT_INTENSITIES,
    SMOKE_AGE_GRID,
    SMOKE_INTENSITIES,
    SMOKE_SCENARIOS,
    build_scenario_report,
    render_scenario_markdown,
    run_mitigation_sweep,
    run_scenario_sweep,
)
from repro.faults import resolve_fault_seed  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI subset: two scenarios at the intensity and age extremes, "
        "one victim; no files unless --out is given",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_N_JOBS or 1; 0 = all cores)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="fault seed (default: REPRO_FAULT_SEED or 0)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="JSON output path (default: SCENARIOS.json at the repo root "
        "in full mode, nothing in --smoke mode); the markdown table is "
        "written next to it with an .md suffix",
    )
    args = parser.parse_args(argv)
    seed = resolve_fault_seed(args.seed)

    if args.smoke:
        label = "smoke"
        data = StudyData(n_users=5, seed=5)
        cell_kwargs = dict(
            attacker_ids=(1,),
            enroll_n=6,
            test_n=4,
            third_party_n=30,
            ra_per_attacker=2,
            ea_per_attacker=2,
            # Full feature resolution: at 840 features the impostor score
            # distribution is noisy enough that a single attack probe can
            # flip past the threshold under perturbation, tripping the FAR
            # invariant on sampling noise rather than a real regression.
            num_features=2520,
        )
        scenario_kwargs = dict(
            scenarios=SMOKE_SCENARIOS,
            intensities=SMOKE_INTENSITIES,
            victim_ids=(0,),
            age_grid=SMOKE_AGE_GRID,
        )
        mitigation_kwargs = dict(
            age_grid=SMOKE_AGE_GRID,
            victim_ids=(0,),
        )
    else:
        label = "default"
        data = StudyData(n_users=6, seed=5)
        cell_kwargs = dict(
            attacker_ids=(4, 5),
            enroll_n=9,
            test_n=6,
            third_party_n=60,
            ra_per_attacker=5,
            ea_per_attacker=5,
            num_features=2520,
        )
        scenario_kwargs = dict(
            intensities=DEFAULT_INTENSITIES,
            victim_ids=(0, 1),
            age_grid=(0.0, 60.0, 120.0),
        )
        mitigation_kwargs = dict(
            age_grid=DEFAULT_AGE_GRID,
            victim_ids=(0, 1),
        )

    cells = run_scenario_sweep(
        data, n_jobs=args.jobs, seed=seed, **scenario_kwargs, **cell_kwargs
    )
    mitigation = run_mitigation_sweep(
        data, n_jobs=args.jobs, seed=seed, **mitigation_kwargs, **cell_kwargs
    )
    report = build_scenario_report(cells, mitigation, seed=seed, label=label)

    for row in report["scenario_grid"]:
        print(
            f"[{row['scenario']:>22s} day {row['age_days']:>3.0f} "
            f"@ {row['intensity']:.2f}] "
            f"FRR {row['frr']:.3f} | FAR {row['far']:.3f} | "
            f"quality-rejected {row['quality_rejection_rate']:.3f}",
            file=sys.stderr,
        )
    for policy, points in sorted(report["mitigation"]["curves"].items()):
        curve = ", ".join(
            f"day {p['age_days']:.0f}: {p['frr']:.3f}" for p in points
        )
        print(f"[mitigation {policy:>18s}] FRR {curve}", file=sys.stderr)

    failed = False
    if report["invariants"]["scenario_far_within_baseline"] is False:
        print(
            "SECURITY INVARIANT VIOLATED: a scenario raised FAR above its "
            "intensity-0 baseline",
            file=sys.stderr,
        )
        failed = True
    if report["invariants"]["update_policy_beats_frozen_at_max_age"] is False:
        print(
            "MITIGATION INVARIANT VIOLATED: no update policy strictly "
            "improves FRR over the frozen template at the oldest age",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1

    out = args.out
    if out is None and not args.smoke:
        out = str(REPO_ROOT / "SCENARIOS.json")
    if out:
        with open(out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        md_path = str(Path(out).with_suffix(".md"))
        with open(md_path, "w") as handle:
            handle.write(render_scenario_markdown(report))
        print(f"wrote {out} and {md_path}", file=sys.stderr)
    else:
        json.dump(report, sys.stdout, indent=2)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
