#!/usr/bin/env python3
"""Run the repository's full static-analysis gate locally.

Runs, in order:

1. ``reprolint`` — the repo-specific AST linter (always available,
   stdlib only);
2. ``ruff check`` — style and bug-pattern linting, if ruff is
   installed;
3. ``mypy src/repro`` — static typing, if mypy is installed.

ruff and mypy are optional extras (``pip install -e .[lint]``); when
they are missing locally this script reports them as skipped and they
are enforced by CI instead (see ``.github/workflows/ci.yml``). The
exit code is nonzero if any tool that ran reported findings.

Usage::

    python scripts/lint.py            # run everything available
    python scripts/lint.py --strict   # missing tools count as failures
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: What reprolint sweeps. Fixtures under tests/tools/fixtures are
#: excluded by reprolint itself; ruff excludes them via pyproject.
REPROLINT_PATHS = ("src", "tests", "scripts", "benchmarks", "examples", "tools")


def _run(name: str, cmd: List[str]) -> Tuple[str, int]:
    print(f"== {name}: {' '.join(cmd)}")
    proc = subprocess.run(cmd, cwd=REPO_ROOT)
    return name, proc.returncode


def _check_manifest() -> int:
    """Fail when the committed CONCURRENCY.md is stale."""
    print("== concurrency-manifest: CONCURRENCY.md freshness")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "tools.reprolint",
            "--concurrency-manifest",
            "src",
            "tools",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        return proc.returncode
    committed_path = REPO_ROOT / "CONCURRENCY.md"
    committed = (
        committed_path.read_text(encoding="utf-8")
        if committed_path.exists()
        else ""
    )
    if proc.stdout != committed:
        print(
            "CONCURRENCY.md is stale; regenerate with\n"
            "  python -m tools.reprolint --concurrency-manifest src tools"
            " > CONCURRENCY.md",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail if ruff or mypy are not installed instead of skipping",
    )
    args = parser.parse_args(argv)

    results: List[Tuple[str, int]] = []
    skipped: List[str] = []

    paths = [p for p in REPROLINT_PATHS if (REPO_ROOT / p).exists()]
    results.append(
        _run("reprolint", [sys.executable, "-m", "tools.reprolint", *paths])
    )
    results.append(("concurrency-manifest", _check_manifest()))

    if shutil.which("ruff"):
        results.append(_run("ruff", ["ruff", "check", "."]))
    else:
        skipped.append("ruff")

    if shutil.which("mypy"):
        results.append(_run("mypy", ["mypy", "src/repro"]))
    else:
        skipped.append("mypy")

    print()
    for name, code in results:
        print(f"{name:10s} {'ok' if code == 0 else f'FAILED (exit {code})'}")
    for name in skipped:
        print(f"{name:10s} skipped (not installed; enforced in CI)")

    failed = any(code != 0 for _, code in results)
    if args.strict and skipped:
        print(f"--strict: missing tools: {', '.join(skipped)}", file=sys.stderr)
        return 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
