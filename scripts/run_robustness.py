#!/usr/bin/env python3
"""Run the robustness sweep and write ROBUSTNESS.json / ROBUSTNESS.md.

Sweeps every registered fault class over an intensity grid against
enrolled victims (enrollment stays clean; faults hit probe trials only)
and adds the degradation-ladder recovery comparison — no policy vs
quality-gate-only vs the full ladder — for a single dead channel. See
``docs/robustness.md`` for how to read the numbers.

The report is timestamp-free and fully seeded (``--seed``, or the
``REPRO_FAULT_SEED`` environment variable): rerunning with the same
grid reproduces the committed artifacts byte for byte.

Usage::

    python scripts/run_robustness.py                  # full, writes JSON+MD
    python scripts/run_robustness.py --smoke          # CI subset, no files
    python scripts/run_robustness.py --jobs 4         # parallel fan-out
    python scripts/run_robustness.py --out custom.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.data import StudyData  # noqa: E402
from repro.eval.robustness import (  # noqa: E402
    DEFAULT_INTENSITIES,
    SMOKE_FAULTS,
    SMOKE_INTENSITIES,
    build_report,
    evaluate_recovery,
    render_markdown,
    run_robustness_sweep,
)
from repro.faults import resolve_fault_seed  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI subset: two faults at the intensity extremes, one "
        "victim; no files unless --out is given",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_N_JOBS or 1; 0 = all cores)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="fault seed (default: REPRO_FAULT_SEED or 0)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="JSON output path (default: ROBUSTNESS.json at the repo root "
        "in full mode, nothing in --smoke mode); the markdown table is "
        "written next to it with an .md suffix",
    )
    args = parser.parse_args(argv)
    seed = resolve_fault_seed(args.seed)

    if args.smoke:
        label = "smoke"
        data = StudyData(n_users=5, seed=5)
        sweep_kwargs = dict(
            faults=SMOKE_FAULTS,
            intensities=SMOKE_INTENSITIES,
            victim_ids=(0,),
            attacker_ids=(1,),
            enroll_n=6,
            test_n=4,
            third_party_n=30,
            ra_per_attacker=2,
            ea_per_attacker=2,
            num_features=840,
        )
        recovery_kwargs = dict(
            enroll_n=6, test_n=4, third_party_n=30, num_features=840
        )
    else:
        label = "default"
        data = StudyData(n_users=6, seed=5)
        sweep_kwargs = dict(
            intensities=DEFAULT_INTENSITIES,
            victim_ids=(0, 1),
            attacker_ids=(4, 5),
            enroll_n=9,
            test_n=6,
            third_party_n=60,
            ra_per_attacker=3,
            ea_per_attacker=3,
            num_features=2520,
        )
        recovery_kwargs = dict(
            enroll_n=9, test_n=6, third_party_n=60, num_features=2520
        )

    cells = run_robustness_sweep(
        data, n_jobs=args.jobs, seed=seed, **sweep_kwargs
    )
    recovery = evaluate_recovery(data, seed=seed, **recovery_kwargs)
    report = build_report(cells, recovery, seed=seed, label=label)

    for row in report["grid"]:
        print(
            f"[{row['fault']:>22s} @ {row['intensity']:.2f}] "
            f"FRR {row['frr']:.3f} | FAR {row['far']:.3f} | "
            f"quality-rejected {row['quality_rejection_rate']:.3f}",
            file=sys.stderr,
        )
    modes = report["recovery"]["modes"]
    print(
        "[recovery: dead channel] "
        + " | ".join(
            f"{mode}: {c['accepted']}✓/{c['rejected']}✗"
            f"/{c['quality_refused'] + c['errors']} refused"
            for mode, c in modes.items()
        ),
        file=sys.stderr,
    )
    if report["invariants"]["faults_never_increase_far"] is False:
        print(
            "SECURITY INVARIANT VIOLATED: a fault raised FAR above its "
            "clean baseline",
            file=sys.stderr,
        )
        return 1

    out = args.out
    if out is None and not args.smoke:
        out = str(REPO_ROOT / "ROBUSTNESS.json")
    if out:
        with open(out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        md_path = str(Path(out).with_suffix(".md"))
        with open(md_path, "w") as handle:
            handle.write(render_markdown(report))
        print(f"wrote {out} and {md_path}", file=sys.stderr)
    else:
        json.dump(report, sys.stdout, indent=2)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
