#!/usr/bin/env python3
"""Benchmark the MiniRocket transform engines and write BENCH_minirocket.json.

Times ``fit`` and ``transform`` at the paper's shapes (90-sample
keystroke segments, 1 and 4 PPG channels, the ~10K-feature budget) for
each available engine:

- ``reference`` — the original per-kernel Python loop, kept as
  ``MiniRocket._transform_reference`` for parity testing;
- ``vectorized`` — the batched NumPy linear-algebra engine;
- ``c`` — the compiled kernel (built on demand; skipped when no C
  compiler is available).

The headline ``speedup`` of each case compares the reference loop to
the *default* path — whatever ``MiniRocket(engine=None).transform``
selects on this machine (the compiled kernel when it builds, the NumPy
engine otherwise). Each engine also records whether its output is
bit-identical to the reference (``exact``), peak traced allocations
(tracemalloc), and the process's final ``ru_maxrss``.

Usage::

    python scripts/bench_transform.py                  # full, writes JSON
    python scripts/bench_transform.py --smoke          # quick, no JSON
    python scripts/bench_transform.py --out custom.json
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.features import minirocket as mr  # noqa: E402
from repro.features.minirocket import MiniRocket  # noqa: E402

#: (name, n_instances, n_channels, length, num_features, repeats)
FULL_CASES = (
    ("smoke-1ch", 32, 1, 90, 840, 2),
    ("paper-1ch", 256, 1, 90, 9996, 5),
    ("paper-4ch", 256, 4, 90, 9996, 5),
)
SMOKE_CASES = (("smoke-1ch", 32, 1, 90, 840, 2),)


def _make_input(n: int, channels: int, length: int) -> np.ndarray:
    rng = np.random.default_rng(42)
    x = rng.normal(size=(n, channels, length))
    # A slow baseline drift makes the segments PPG-like rather than
    # white noise; the transform cost is shape-driven either way.
    drift = np.sin(np.linspace(0.0, 3.0, length))
    return np.ascontiguousarray(x + drift)


def _time_call(fn, repeats: int):
    """Best/mean wall time plus tracemalloc peak over ``repeats`` runs."""
    times = []
    peak = 0
    for _ in range(repeats):
        tracemalloc.start()
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
        _, run_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peak = max(peak, run_peak)
    return result, {
        "best_s": min(times),
        "mean_s": float(np.mean(times)),
        "peak_traced_mib": peak / 2**20,
    }


def bench_case(name, n, channels, length, num_features, repeats):
    x = _make_input(n, channels, length)

    rocket = MiniRocket(num_features=num_features, seed=0)
    _, fit_stats = _time_call(lambda: rocket.fit(x), repeats)

    default_engine = mr._resolve_engine(None)
    def run_vectorized() -> np.ndarray:
        return MiniRocket.transform(_fitted_clone(rocket, "vectorized"), x)

    def run_c() -> np.ndarray:
        return MiniRocket.transform(_fitted_clone(rocket, "c"), x)

    engines = {"reference": lambda: rocket._transform_reference(x)}
    engines["vectorized"] = run_vectorized
    if mr.c_kernel_available():
        engines["c"] = run_c

    reference_out = None
    results = {}
    for engine_name, fn in engines.items():
        out, stats = _time_call(fn, repeats)
        if engine_name == "reference":
            reference_out = out
        else:
            stats["exact"] = bool(np.array_equal(out, reference_out))
        results[engine_name] = stats

    ref_best = results["reference"]["best_s"]
    default_best = results[default_engine]["best_s"]
    case = {
        "case": name,
        "n_instances": n,
        "n_channels": channels,
        "length": length,
        "num_features": rocket.n_features_out,
        "repeats": repeats,
        "default_engine": default_engine,
        "fit": fit_stats,
        "transform": results,
        "speedup": ref_best / default_best,
        "speedup_vectorized": ref_best / results["vectorized"]["best_s"],
    }
    if "c" in results:
        case["speedup_c"] = ref_best / results["c"]["best_s"]
    return case


def _fitted_clone(rocket: MiniRocket, engine: str) -> MiniRocket:
    """A copy of a fitted MiniRocket pinned to a specific engine."""
    clone = MiniRocket(
        num_features=rocket.num_features,
        max_dilations_per_kernel=rocket.max_dilations_per_kernel,
        seed=rocket.seed,
        batch_size=rocket.batch_size,
        engine=engine,
    )
    clone.__dict__.update(
        {k: v for k, v in rocket.__dict__.items() if k != "engine"}
    )
    return clone


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one small case, two repeats; no JSON unless --out is given",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_minirocket.json at the repo "
        "root in full mode, nothing in --smoke mode)",
    )
    args = parser.parse_args(argv)

    cases = SMOKE_CASES if args.smoke else FULL_CASES
    report = {
        "benchmark": "minirocket-transform",
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "c_kernel_available": mr.c_kernel_available(),
        "cases": [],
    }
    for case_args in cases:
        case = bench_case(*case_args)
        report["cases"].append(case)
        parts = [
            f"{engine}: {stats['best_s'] * 1e3:8.1f} ms"
            + ("" if engine == "reference" else f" exact={stats['exact']}")
            for engine, stats in case["transform"].items()
        ]
        print(
            f"[{case['case']}] default={case['default_engine']} "
            f"speedup={case['speedup']:.1f}x | " + " | ".join(parts),
            file=sys.stderr,
        )
    report["peak_rss_mib"] = (
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    )

    out = args.out
    if out is None and not args.smoke:
        out = str(REPO_ROOT / "BENCH_minirocket.json")
    if out:
        with open(out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {out}", file=sys.stderr)
    else:
        json.dump(report, sys.stdout, indent=2)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
