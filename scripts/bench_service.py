#!/usr/bin/env python3
"""Benchmark the auth service end to end; write BENCH_service.json.

A closed-loop load generator over the full HTTP stack: the asyncio
HTTP/1.1 server from :mod:`repro.service.http` fronts an
:class:`~repro.service.AuthService` whose registry reads a sharded
packed population, and N concurrent clients — each with its own
keep-alive connection — issue PIN-proof authentication requests with
Zipf-distributed user picks. Sections:

- ``world`` — population size, template count, feature budget, backend.
- ``closed_loop`` — per concurrency level (default 1/8/32), a **cold**
  pass (fresh registry cache: first touch of every user pays the
  backend load + model warmup) and a **warm** pass (the whole
  population preloaded): auth/sec, p50/p95/p99 request latency, and
  the registry hit/miss delta proving which regime each pass measured.
- ``parity`` — the probe battery through the in-process service facade
  versus direct ``ModelRegistry.authenticate`` calls; the committed
  artifact records that the wire path is decision- and score-
  bit-identical.

Usage::

    python scripts/bench_service.py                  # full, writes JSON
    python scripts/bench_service.py --smoke          # quick, no JSON
    python scripts/bench_service.py --users 2000 --out custom.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import resource
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import ModelRegistry, ShardedPackedBackend  # noqa: E402
from repro.data import StudyData  # noqa: E402
from repro.eval import enroll_templates, materialize_population  # noqa: E402
from repro.service import AuthService, encode_trial, pin_proof  # noqa: E402
from repro.service.http import serve  # noqa: E402
from repro.service.protocol import AuthRequest, make_nonce  # noqa: E402

#: PIN every bulk-enrolled user types (the bulkenroll default).
PIN = "1628"

#: Zipf exponent for user picks (web-like popularity skew).
ZIPF_A = 1.2


def _percentiles(times_s):
    times_ms = np.asarray(times_s) * 1e3
    return {
        "p50_ms": float(np.percentile(times_ms, 50)),
        "p95_ms": float(np.percentile(times_ms, 95)),
        "p99_ms": float(np.percentile(times_ms, 99)),
        "mean_ms": float(np.mean(times_ms)),
    }


def build_world(root, n_users, n_templates, features, n_jobs):
    """A packed population plus wire-ready probe payloads.

    Probes come from the cohort behind template 0 (the bulkenroll
    seeds), so users stamped from that template accept them and users
    stamped from other templates reject them — realistic mixed traffic.
    """
    templates = enroll_templates(
        n_templates, num_features=features, n_jobs=n_jobs
    )
    backend = ShardedPackedBackend(root)
    ids = materialize_population(backend, n_users, templates)
    study = StudyData(n_users=5, seed=0)  # template 0's cohort
    probes = study.trials(0, PIN, "one_handed", 9)[7:9]
    return backend, ids, [encode_trial(t) for t in probes], probes


def _make_service(backend, capacity):
    registry = ModelRegistry(capacity=capacity, backend=backend)
    service = AuthService(registry, retry=None, stripes=64, max_workers=4)
    return service


def _adopt_all(service, ids):
    for uid in ids:
        service.adopt_user(uid, PIN)


def _request_body(uid, trial_json):
    nonce = make_nonce()
    proof = pin_proof(PIN, uid, nonce)
    return (
        f'{{"user_id":"{uid}","nonce":"{nonce}","proof":"{proof}",'
        f'"trial":{trial_json}}}'
    ).encode("ascii")


async def _http_post(reader, writer, path, body):
    writer.write(
        f"POST {path} HTTP/1.1\r\nhost: bench\r\n"
        f"content-length: {len(body)}\r\n\r\n".encode("ascii")
        + body
    )
    await writer.drain()
    status_line = await reader.readline()
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    payload = await reader.readexactly(int(headers["content-length"]))
    return int(status_line.split()[1]), payload


async def _run_pass(host, port, ids, trial_jsons, concurrency, n_requests, seed):
    """One closed-loop pass; returns (wall_s, latencies, accept_count)."""
    per_client = max(1, n_requests // concurrency)
    latencies = []
    accepted = 0

    async def client(client_id):
        nonlocal accepted
        rng = np.random.default_rng(seed * 1000 + client_id)
        picks = (rng.zipf(ZIPF_A, per_client) - 1) % len(ids)
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for i, pick in enumerate(picks):
                uid = ids[int(pick)]
                trial_json = trial_jsons[i % len(trial_jsons)]
                body = _request_body(uid, trial_json)
                start = time.perf_counter()
                status, payload = await _http_post(
                    reader, writer, "/v1/auth", body
                )
                latencies.append(time.perf_counter() - start)
                if status != 200:
                    raise RuntimeError(
                        f"auth returned {status}: {payload[:200]!r}"
                    )
                if json.loads(payload)["accepted"]:
                    accepted += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    start = time.perf_counter()
    await asyncio.gather(*(client(i) for i in range(concurrency)))
    wall = time.perf_counter() - start
    return wall, latencies, accepted


async def _bench_level(backend, ids, trial_jsons, concurrency, n_requests, capacity):
    """Cold + warm closed-loop passes at one concurrency level."""
    service = _make_service(backend, capacity)
    _adopt_all(service, ids)
    ready = asyncio.Event()
    server = asyncio.create_task(serve(service, "127.0.0.1", 0, ready=ready))
    await asyncio.wait_for(ready.wait(), 10)
    host, port = ready.address  # type: ignore[attr-defined]
    out = {"concurrency": concurrency}
    try:
        for phase in ("cold", "warm"):
            if phase == "warm":
                # Preload the whole population so every request hits.
                await service.warm(ids)
            before = service.stats()["registry"]["stats"]
            wall, latencies, accepted = await _run_pass(
                host, port, ids, trial_jsons, concurrency, n_requests,
                seed={"cold": 1, "warm": 2}[phase],
            )
            after = service.stats()["registry"]["stats"]
            out[phase] = {
                "requests": len(latencies),
                "accepted": accepted,
                "wall_s": wall,
                "auth_per_sec": len(latencies) / wall,
                "registry_hits": after["hits"] - before["hits"],
                "registry_misses": after["misses"] - before["misses"],
                **_percentiles(latencies),
            }
    finally:
        server.cancel()
        try:
            await server
        except asyncio.CancelledError:
            pass
        service.close()
    return out


def bench_closed_loop(backend, ids, trial_jsons, concurrencies, n_requests, capacity):
    levels = []
    for concurrency in concurrencies:
        levels.append(
            asyncio.run(
                _bench_level(
                    backend, ids, trial_jsons, concurrency, n_requests, capacity
                )
            )
        )
    return levels


def bench_parity(backend, ids, probes, capacity):
    """Wire-path decisions vs direct engine calls on the battery."""
    registry = ModelRegistry(capacity=capacity, backend=backend)
    service = AuthService(registry, retry=None)
    battery = []
    for uid in (ids[0], ids[min(1, len(ids) - 1)]):
        service.adopt_user(uid, PIN)
        for trial in probes:
            battery.append((uid, trial, PIN))
        battery.append((uid, probes[0], "0000"))  # wrong-PIN case

    async def through_service():
        responses = []
        for uid, trial, pin in battery:
            nonce = make_nonce()
            responses.append(
                await service.authenticate(
                    AuthRequest(
                        user_id=uid,
                        nonce=nonce,
                        proof=pin_proof(pin, uid, nonce),
                        trial=encode_trial(trial),
                    )
                )
            )
        return responses

    try:
        responses = asyncio.run(through_service())
    finally:
        service.close()
    direct = [
        registry.authenticate(uid, trial, claimed_pin=pin)
        for uid, trial, pin in battery
    ]
    return {
        "n_probes": len(battery),
        "n_accepted": sum(d.accepted for d in direct),
        "decisions_match": all(
            r.accepted == d.accepted
            and r.reason == d.reason
            and r.pin_ok == d.pin_ok
            for r, d in zip(responses, direct)
        ),
        "scores_bit_exact": all(
            r.scores == tuple(d.scores) for r, d in zip(responses, direct)
        ),
    }


def run(
    *,
    users: int,
    features: int,
    n_templates: int,
    n_requests: int,
    concurrencies,
    capacity: int,
    n_jobs=None,
):
    """The full harness; shared by the script and the perf-smoke test."""
    with tempfile.TemporaryDirectory() as root:
        backend, ids, trial_jsons_raw, probes = build_world(
            root, users, n_templates, features, n_jobs
        )
        trial_jsons = [json.dumps(t) for t in trial_jsons_raw]
        return {
            "world": {
                "n_users": users,
                "n_templates": n_templates,
                "num_features": features,
                "backend": "ShardedPackedBackend",
                "registry_capacity": capacity,
                "zipf_a": ZIPF_A,
                "n_requests_per_pass": n_requests,
            },
            "closed_loop": bench_closed_loop(
                backend, ids, trial_jsons, concurrencies, n_requests, capacity
            ),
            "parity": bench_parity(backend, ids, probes, capacity),
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small population and fewer requests; no JSON unless --out",
    )
    parser.add_argument(
        "--users",
        type=int,
        default=None,
        help="packed population size (default 1000 full / 48 smoke)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for template enrollment (0 = all cores)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_service.json at the repo root "
        "in full mode, nothing in --smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        params = dict(
            users=args.users or 48, features=840, n_templates=2,
            n_requests=48, concurrencies=(1, 8), capacity=64,
            n_jobs=args.jobs,
        )
    else:
        params = dict(
            users=args.users or 1000, features=840, n_templates=4,
            n_requests=256, concurrencies=(1, 8, 32), capacity=1024,
            n_jobs=args.jobs,
        )

    report = {
        "benchmark": "auth-service",
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        **run(**params),
    }

    for level in report["closed_loop"]:
        for phase in ("cold", "warm"):
            stats = level[phase]
            print(
                f"[c={level['concurrency']:>2} {phase}] "
                f"{stats['auth_per_sec']:7.1f} auth/s | "
                f"p50 {stats['p50_ms']:6.1f} ms | "
                f"p95 {stats['p95_ms']:6.1f} ms | "
                f"p99 {stats['p99_ms']:6.1f} ms | "
                f"misses {stats['registry_misses']}",
                file=sys.stderr,
            )
    parity = report["parity"]
    print(
        f"[parity] decisions_match={parity['decisions_match']} "
        f"scores_bit_exact={parity['scores_bit_exact']} over "
        f"{parity['n_probes']} probes",
        file=sys.stderr,
    )
    report["peak_rss_mib"] = (
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    )

    out = args.out
    if out is None and not args.smoke:
        out = str(REPO_ROOT / "BENCH_service.json")
    if out:
        with open(out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {out}", file=sys.stderr)
    else:
        json.dump(report, sys.stdout, indent=2)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
