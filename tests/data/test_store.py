"""Unit tests for the third-party sample store."""

import pytest

from repro.data import StudyData, ThirdPartyStore
from repro.errors import ConfigurationError

PIN = "1628"


@pytest.fixture(scope="module")
def data():
    return StudyData(n_users=5, seed=2)


class TestThirdPartyStore:
    def test_sample_size(self, data):
        store = ThirdPartyStore(data, [1, 2, 3], PIN)
        assert len(store.sample(10)) == 10

    def test_round_robin_balance(self, data):
        store = ThirdPartyStore(data, [1, 2, 3], PIN)
        trials = store.sample(9)
        per_user = {uid: 0 for uid in (1, 2, 3)}
        for trial in trials:
            per_user[trial.user_id] += 1
        assert set(per_user.values()) == {3}

    def test_uneven_sample_size(self, data):
        store = ThirdPartyStore(data, [1, 2, 3], PIN)
        trials = store.sample(7)
        counts = {}
        for trial in trials:
            counts[trial.user_id] = counts.get(trial.user_id, 0) + 1
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_deterministic(self, data):
        store = ThirdPartyStore(data, [1, 2], PIN)
        a = store.sample(6)
        b = store.sample(6)
        assert all(x is y for x, y in zip(a, b))

    def test_contributors_listed(self, data):
        store = ThirdPartyStore(data, [2, 4], PIN)
        assert store.contributors == [2, 4]

    def test_empty_contributors_rejected(self, data):
        with pytest.raises(ConfigurationError):
            ThirdPartyStore(data, [], PIN)

    def test_invalid_sample_size(self, data):
        store = ThirdPartyStore(data, [1], PIN)
        with pytest.raises(ConfigurationError):
            store.sample(0)

    def test_grows_on_demand(self, data):
        store = ThirdPartyStore(data, [1, 2], PIN)
        assert len(store.sample(20)) == 20
