"""Unit tests for study data generation."""

import numpy as np
import pytest

from repro.data import CONDITIONS, StudyData
from repro.data.generation import generate_study
from repro.errors import ConfigurationError
from repro.types import Hand

PIN = "1628"


@pytest.fixture(scope="module")
def data():
    return StudyData(n_users=5, seed=3)


class TestTrialsGeneration:
    def test_count(self, data):
        assert len(data.trials(0, PIN, "one_handed", 4)) == 4

    def test_deterministic_across_instances(self):
        a = StudyData(n_users=4, seed=8).trials(1, PIN, "one_handed", 2)
        b = StudyData(n_users=4, seed=8).trials(1, PIN, "one_handed", 2)
        for ta, tb in zip(a, b):
            assert np.allclose(ta.recording.samples, tb.recording.samples)

    def test_prefix_stable_when_extending(self, data):
        first = data.trials(0, PIN, "one_handed", 2)
        extended = data.trials(0, PIN, "one_handed", 5)
        for ta, tb in zip(first, extended[:2]):
            assert np.array_equal(ta.recording.samples, tb.recording.samples)

    def test_trials_differ_across_repetitions(self, data):
        trials = data.trials(0, PIN, "one_handed", 3)
        n = min(t.recording.n_samples for t in trials)
        assert not np.allclose(
            trials[0].recording.samples[:, :n], trials[1].recording.samples[:, :n]
        )

    def test_double3_condition(self, data):
        for trial in data.trials(0, PIN, "double3", 3):
            left = sum(1 for e in trial.events if e.hand is Hand.LEFT)
            assert left == 3
            assert not trial.one_handed

    def test_double2_condition(self, data):
        for trial in data.trials(0, PIN, "double2", 3):
            left = sum(1 for e in trial.events if e.hand is Hand.LEFT)
            assert left == 2

    def test_random_condition_varies_pins(self, data):
        pins = {t.pin for t in data.trials(0, PIN, "random", 8)}
        assert len(pins) > 3

    def test_unknown_condition_rejected(self, data):
        with pytest.raises(ConfigurationError):
            data.trials(0, PIN, "three_handed", 2)

    def test_unknown_user_rejected(self, data):
        with pytest.raises(ConfigurationError):
            data.trials(99, PIN, "one_handed", 2)

    def test_conditions_registry(self):
        assert set(CONDITIONS) == {"one_handed", "double3", "double2", "random"}


class TestAttackGeneration:
    def test_emulating_trials_use_victim_pin(self, data):
        trials = data.emulating_trials(3, 0, PIN, 3)
        assert all(t.pin == PIN for t in trials)
        assert all(t.user_id == 3 for t in trials)

    def test_emulating_no_pin_randomizes(self, data):
        trials = data.emulating_trials(3, 0, None, 6)
        assert len({t.pin for t in trials}) > 2

    def test_random_attack_guesses(self, data):
        trials = data.random_attack_trials(3, 6)
        assert len({t.pin for t in trials}) > 2
        assert all(t.user_id == 3 for t in trials)

    def test_random_attack_with_pool(self, data):
        pool = ("1628", "3570")
        trials = data.random_attack_trials(3, 8, pin_pool=pool)
        assert {t.pin for t in trials} <= set(pool)


class TestAgedTrials:
    def test_age_zero_is_the_clean_data(self, data):
        clean = data.trials(0, PIN, "one_handed", 3)
        aged = data.aged_trials(0, PIN, "one_handed", 3, age_days=0.0)
        assert all(a is c for a, c in zip(aged, clean))

    def test_same_key_is_bit_identical(self, data):
        """Same (seed, user_id, age_days) — even from a fresh StudyData,
        as a pool worker would build — gives bit-identical trials."""
        a = data.aged_trials(0, PIN, "one_handed", 3, age_days=45.0)
        fresh = StudyData(n_users=data.n_users, seed=data.seed)
        b = fresh.aged_trials(0, PIN, "one_handed", 3, age_days=45.0)
        for x, y in zip(a, b):
            assert np.array_equal(x.recording.samples, y.recording.samples)
            assert x.events == y.events

    def test_aging_changes_the_signal(self, data):
        clean = data.trials(0, PIN, "one_handed", 2)
        aged = data.aged_trials(0, PIN, "one_handed", 2, age_days=90.0)
        assert not np.array_equal(
            clean[0].recording.samples, aged[0].recording.samples
        )

    def test_larger_count_extends_prefix(self, data):
        short = data.aged_trials(0, PIN, "one_handed", 2, age_days=30.0)
        longer = data.aged_trials(0, PIN, "one_handed", 4, age_days=30.0)
        assert all(lng is sht for lng, sht in zip(longer[:2], short))

    def test_different_ages_differ(self, data):
        a = data.aged_trials(0, PIN, "one_handed", 1, age_days=30.0)
        b = data.aged_trials(0, PIN, "one_handed", 1, age_days=60.0)
        assert not np.array_equal(
            a[0].recording.samples, b[0].recording.samples
        )

    def test_negative_age_rejected(self, data):
        with pytest.raises(ConfigurationError):
            data.aged_trials(0, PIN, "one_handed", 2, age_days=-1.0)

    def test_attack_generators_age_zero_preserves_streams(self, data):
        """The historical attack trial streams are bit-identical with
        the default age, so every pre-aging experiment reproduces."""
        for fresh, historical in (
            (data.emulating_trials(3, 0, PIN, 2, age_days=0.0),
             data.emulating_trials(3, 0, PIN, 2)),
            (data.random_attack_trials(3, 2, age_days=0.0),
             data.random_attack_trials(3, 2)),
        ):
            for a, b in zip(fresh, historical):
                assert np.array_equal(
                    a.recording.samples, b.recording.samples
                )
                assert a.events == b.events and a.pin == b.pin

    def test_attack_generators_drift_with_age(self, data):
        ea = data.emulating_trials(3, 0, PIN, 1)
        ea_aged = data.emulating_trials(3, 0, PIN, 1, age_days=90.0)
        assert not np.array_equal(
            ea[0].recording.samples, ea_aged[0].recording.samples
        )


class TestGenerateStudy:
    def test_warm_cache(self):
        data = generate_study(n_users=3, repetitions=2, pins=("1628",))
        # Pre-warmed: same objects come back without regeneration.
        first = data.trials(0, "1628", "one_handed", 2)
        again = data.trials(0, "1628", "one_handed", 2)
        assert first[0] is again[0]
