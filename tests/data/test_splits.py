"""Unit tests for enrollment/test splitting."""

import pytest

from repro.data import enroll_test_split
from repro.errors import ConfigurationError


class TestEnrollTestSplit:
    def test_split_sizes(self, study_data):
        trials = study_data.trials(0, "1628", "one_handed", 7)
        enroll, test = enroll_test_split(trials, 5)
        assert len(enroll) == 5
        assert len(test) == 2

    def test_chronological_order_kept(self, study_data):
        trials = study_data.trials(0, "1628", "one_handed", 6)
        enroll, test = enroll_test_split(trials, 4)
        assert enroll == trials[:4]
        assert test == trials[4:]

    def test_no_test_data_rejected(self, study_data):
        trials = study_data.trials(0, "1628", "one_handed", 4)
        with pytest.raises(ConfigurationError):
            enroll_test_split(trials, 4)

    def test_invalid_enroll_n(self, study_data):
        trials = study_data.trials(0, "1628", "one_handed", 4)
        with pytest.raises(ConfigurationError):
            enroll_test_split(trials, 0)
