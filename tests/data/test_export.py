"""Unit tests for trial dataset export."""

import numpy as np
import pytest

from repro.data import load_trials, save_trials
from repro.errors import ConfigurationError

PIN = "1628"


@pytest.fixture(scope="module")
def archive(study_data, tmp_path_factory):
    trials = study_data.trials(0, PIN, "one_handed", 3)
    trials += study_data.trials(1, PIN, "double3", 2)
    path = tmp_path_factory.mktemp("data") / "trials.npz"
    save_trials(path, trials)
    return path, trials


class TestRoundTrip:
    def test_count_and_order(self, archive):
        path, originals = archive
        loaded = load_trials(path)
        assert len(loaded) == len(originals)
        assert [t.user_id for t in loaded] == [t.user_id for t in originals]

    def test_samples_bit_identical(self, archive):
        path, originals = archive
        loaded = load_trials(path)
        for a, b in zip(originals, loaded):
            assert np.array_equal(a.recording.samples, b.recording.samples)
            assert a.recording.fs == b.recording.fs

    def test_events_preserved(self, archive):
        path, originals = archive
        loaded = load_trials(path)
        for a, b in zip(originals, loaded):
            assert a.events == b.events
            assert a.pin == b.pin
            assert a.one_handed == b.one_handed

    def test_channel_metadata_preserved(self, archive):
        path, originals = archive
        loaded = load_trials(path)
        assert loaded[0].recording.channels == originals[0].recording.channels

    def test_accel_round_trip(self, tmp_path):
        from repro.data import StudyData

        data = StudyData(n_users=2, seed=1, include_accel=True)
        trials = data.trials(0, PIN, "one_handed", 2)
        path = tmp_path / "a.npz"
        save_trials(path, trials)
        loaded = load_trials(path)
        assert loaded[0].accel is not None
        assert np.array_equal(loaded[0].accel.samples, trials[0].accel.samples)

    def test_loaded_trials_authenticate_identically(
        self, archive, enrolled_auth
    ):
        path, originals = archive
        loaded = load_trials(path)
        for a, b in zip(originals[:3], loaded[:3]):
            da = enrolled_auth.authenticate(a)
            db = enrolled_auth.authenticate(b)
            assert da.accepted == db.accepted
            assert np.allclose(da.scores, db.scores)


class TestValidation:
    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_trials(tmp_path / "x.npz", [])

    def test_garbage_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, nothing=np.zeros(2))
        with pytest.raises(ConfigurationError):
            load_trials(path)
