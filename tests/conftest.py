"""Shared fixtures for the test suite.

Expensive artifacts (population, study data, enrolled authenticator)
are session-scoped: they are deterministic, read-only, and building
them once keeps the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PipelineConfig, SimulationConfig
from repro.core import EnrollmentOptions, P2Auth
from repro.data import StudyData, ThirdPartyStore
from repro.physio import TrialSynthesizer, sample_population

#: PIN used throughout the tests.
TEST_PIN = "1628"

#: Small feature budget keeping model fits fast.
TEST_FEATURES = 840


@pytest.fixture(scope="session")
def sim_config():
    return SimulationConfig()


@pytest.fixture(scope="session")
def pipeline_config():
    return PipelineConfig()


@pytest.fixture(scope="session")
def population(sim_config):
    """Eight deterministic user profiles."""
    return sample_population(8, seed=123, config=sim_config)


@pytest.fixture(scope="session")
def synthesizer(sim_config):
    return TrialSynthesizer(sim_config)


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(7)


@pytest.fixture(scope="session")
def one_trial(population, synthesizer):
    """A single one-handed trial of user 0 typing the test PIN."""
    rng = np.random.default_rng(11)
    return synthesizer.synthesize_trial(population[0], TEST_PIN, rng)


@pytest.fixture(scope="session")
def accel_trial(population, synthesizer):
    """A trial with the accelerometer stream included."""
    rng = np.random.default_rng(12)
    return synthesizer.synthesize_trial(
        population[0], TEST_PIN, rng, include_accel=True
    )


@pytest.fixture(scope="session")
def study_data():
    """Small lazily generated study dataset."""
    return StudyData(n_users=7, seed=5)


@pytest.fixture(scope="session")
def enrolled_auth(study_data):
    """A P2Auth instance enrolled for user 0 at test scale."""
    enroll = study_data.trials(0, TEST_PIN, "one_handed", 7)
    store = ThirdPartyStore(study_data, [1, 2, 3, 4], TEST_PIN)
    auth = P2Auth(
        pin=TEST_PIN,
        options=EnrollmentOptions(num_features=TEST_FEATURES),
    )
    auth.enroll(enroll, store.sample(24))
    return auth


@pytest.fixture(scope="session")
def enrolled_auth_boost(study_data):
    """A privacy-boost P2Auth instance enrolled for user 0."""
    enroll = study_data.trials(0, TEST_PIN, "one_handed", 7)
    store = ThirdPartyStore(study_data, [1, 2, 3, 4], TEST_PIN)
    auth = P2Auth(
        pin=TEST_PIN,
        options=EnrollmentOptions(
            num_features=TEST_FEATURES, privacy_boost=True
        ),
    )
    auth.enroll(enroll, store.sample(24))
    return auth
