"""Unit tests for the configuration objects."""

import dataclasses

import pytest

from repro.config import (
    PAPER_PINS,
    PipelineConfig,
    ProtocolConfig,
    SimulationConfig,
)
from repro.errors import ConfigurationError


class TestSimulationConfig:
    def test_paper_defaults(self):
        config = SimulationConfig()
        assert config.fs == 100.0
        assert config.accel_fs == 75.0
        assert config.inter_key_interval == pytest.approx(1.1)

    def test_artifacts_dominate_heartbeat(self):
        # Section III: keystrokes produce larger peaks than heartbeats.
        config = SimulationConfig()
        assert config.artifact_amplitude_range[0] > config.pulse_amplitude

    @pytest.mark.parametrize(
        "field,value",
        [
            ("fs", 0.0),
            ("accel_fs", -1.0),
            ("heart_rate_range", (0.0, 80.0)),
            ("heart_rate_range", (90.0, 60.0)),
            ("artifact_amplitude_range", (-1.0, 2.0)),
            ("inter_key_interval", 0.0),
            ("timestamp_jitter", -0.1),
            ("adc_bits", 1),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(SimulationConfig(), **{field: value})


class TestPipelineConfig:
    def test_paper_constants(self):
        config = PipelineConfig()
        assert config.calibration_window == 30
        assert config.energy_window == 20
        assert config.energy_threshold_ratio == 0.5
        assert config.segment_window == 90

    @pytest.mark.parametrize(
        "field,value",
        [
            ("fs", 0.0),
            ("median_kernel", 4),
            ("median_kernel", -3),
            ("sg_window", 10),
            ("sg_window", 3),
            ("calibration_window", 1),
            ("detrend_lambda", 0.0),
            ("energy_window", 0),
            ("energy_threshold_ratio", 0.0),
            ("energy_threshold_ratio", 1.0),
            ("segment_window", 2),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(PipelineConfig(), **{field: value})

    def test_scaled_to_halves_windows(self):
        scaled = PipelineConfig().scaled_to(50.0)
        assert scaled.fs == 50.0
        assert scaled.calibration_window == 15
        assert scaled.energy_window == 10
        assert scaled.segment_window == 45

    def test_scaled_to_keeps_windows_odd_where_required(self):
        scaled = PipelineConfig().scaled_to(30.0)
        assert scaled.median_kernel % 2 == 1
        assert scaled.sg_window % 2 == 1
        assert scaled.sg_window > scaled.sg_polyorder

    def test_scaled_to_identity(self):
        config = PipelineConfig()
        assert config.scaled_to(100.0) == config

    def test_scaled_to_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig().scaled_to(0.0)


class TestProtocolConfig:
    def test_paper_protocol(self):
        config = ProtocolConfig()
        assert config.n_users == 15
        assert config.pins == PAPER_PINS
        assert config.enroll_samples == 9
        assert config.third_party_samples == 100
        assert config.random_attack_entries == 150
        assert config.n_attackers == 4

    def test_paper_pins_are_the_study_pins(self):
        assert PAPER_PINS == ("1628", "3570", "5094", "6938", "7412")

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_users", 1),
            ("pins", ()),
            ("pins", ("12a4",)),
            ("repetitions", 1),
            ("enroll_samples", 0),
            ("third_party_samples", -1),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(ProtocolConfig(), **{field: value})
