"""Unit tests for the core data types."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.types import (
    AccelRecording,
    ChannelInfo,
    Hand,
    KeystrokeEvent,
    LabeledWaveform,
    PinEntryTrial,
    PPGRecording,
    PROTOTYPE_CHANNELS,
    SegmentedKeystroke,
    Wavelength,
)


def _recording(n_channels=4, n=100, fs=100.0):
    return PPGRecording(samples=np.zeros((n_channels, n)), fs=fs)


class TestChannelInfo:
    def test_label(self):
        info = ChannelInfo(sensor_site=1, wavelength=Wavelength.RED)
        assert info.label == "s1/red"

    def test_prototype_has_four_channels(self):
        assert len(PROTOTYPE_CHANNELS) == 4

    def test_prototype_covers_both_sites_and_wavelengths(self):
        sites = {c.sensor_site for c in PROTOTYPE_CHANNELS}
        wavelengths = {c.wavelength for c in PROTOTYPE_CHANNELS}
        assert sites == {0, 1}
        assert wavelengths == {Wavelength.RED, Wavelength.INFRARED}


class TestPPGRecording:
    def test_basic_properties(self):
        rec = _recording(4, 250, 100.0)
        assert rec.n_channels == 4
        assert rec.n_samples == 250
        assert rec.duration == pytest.approx(2.5)

    def test_1d_input_promoted_to_single_channel(self):
        rec = PPGRecording(
            samples=np.zeros(50), fs=100.0, channels=PROTOTYPE_CHANNELS[:1]
        )
        assert rec.samples.shape == (1, 50)

    def test_channel_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            PPGRecording(samples=np.zeros((2, 50)), fs=100.0)

    def test_non_positive_fs_rejected(self):
        with pytest.raises(ConfigurationError):
            _recording(fs=0.0)

    def test_3d_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            PPGRecording(samples=np.zeros((2, 3, 4)), fs=100.0)

    def test_time_axis(self):
        rec = PPGRecording(
            samples=np.zeros((4, 10)), fs=10.0, start_time=1.0
        )
        axis = rec.time_axis()
        assert axis[0] == pytest.approx(1.0)
        assert axis[-1] == pytest.approx(1.9)

    def test_sample_index_round_trip(self):
        rec = _recording(n=200)
        assert rec.sample_index(0.5) == 50

    def test_sample_index_out_of_range(self):
        rec = _recording(n=100)
        with pytest.raises(ConfigurationError):
            rec.sample_index(5.0)
        with pytest.raises(ConfigurationError):
            rec.sample_index(-0.5)

    def test_select_channels(self):
        rec = _recording()
        sub = rec.select_channels([0, 2])
        assert sub.n_channels == 2
        assert sub.channels == (PROTOTYPE_CHANNELS[0], PROTOTYPE_CHANNELS[2])

    def test_select_channels_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            _recording().select_channels([])

    def test_with_samples_keeps_layout(self):
        rec = _recording(4, 100)
        new = rec.with_samples(np.ones((4, 100)))
        assert new.channels == rec.channels
        assert np.all(new.samples == 1.0)


class TestAccelRecording:
    def test_properties(self):
        rec = AccelRecording(samples=np.zeros((3, 75)), fs=75.0)
        assert rec.n_samples == 75
        assert rec.duration == pytest.approx(1.0)

    def test_wrong_axis_count_rejected(self):
        with pytest.raises(ConfigurationError):
            AccelRecording(samples=np.zeros((2, 75)), fs=75.0)

    def test_non_positive_fs_rejected(self):
        with pytest.raises(ConfigurationError):
            AccelRecording(samples=np.zeros((3, 75)), fs=0.0)


class TestKeystrokeEvent:
    def test_valid_event(self):
        event = KeystrokeEvent(key="5", true_time=1.0, reported_time=1.1)
        assert event.hand is Hand.LEFT

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            KeystrokeEvent(key="a", true_time=0.0, reported_time=0.0)


class TestPinEntryTrial:
    def _events(self, pin):
        return tuple(
            KeystrokeEvent(key=d, true_time=float(i), reported_time=float(i))
            for i, d in enumerate(pin)
        )

    def test_valid_trial(self):
        trial = PinEntryTrial(
            recording=_recording(n=500),
            events=self._events("1628"),
            pin="1628",
            user_id=0,
        )
        assert len(trial.events) == 4

    def test_event_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            PinEntryTrial(
                recording=_recording(n=500),
                events=self._events("162"),
                pin="1628",
                user_id=0,
            )

    def test_event_key_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            PinEntryTrial(
                recording=_recording(n=500),
                events=self._events("1629"),
                pin="1628",
                user_id=0,
            )

    def test_watch_hand_events(self):
        events = list(self._events("1628"))
        events[1] = KeystrokeEvent(
            key="6", true_time=1.0, reported_time=1.0, hand=Hand.RIGHT
        )
        trial = PinEntryTrial(
            recording=_recording(n=500),
            events=tuple(events),
            pin="1628",
            user_id=0,
            one_handed=False,
        )
        assert [e.key for e in trial.watch_hand_events] == ["1", "2", "8"]


class TestSegmentedKeystroke:
    def test_properties(self):
        seg = SegmentedKeystroke(
            samples=np.zeros((4, 90)), key="1", center_index=50, fs=100.0
        )
        assert seg.n_channels == 4
        assert seg.window == 90

    def test_1d_rejected(self):
        with pytest.raises(ConfigurationError):
            SegmentedKeystroke(
                samples=np.zeros(90), key="1", center_index=50, fs=100.0
            )


class TestLabeledWaveform:
    def test_1d_promoted(self):
        wf = LabeledWaveform(samples=np.zeros(90), user_id=3)
        assert wf.samples.shape == (1, 90)
        assert wf.key is None
