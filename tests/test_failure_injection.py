"""Failure-injection tests: corrupt inputs must never authenticate.

For an authentication system the failure mode that matters is silent
*acceptance* of garbage. These tests feed broken trials — saturated
ADC, NaNs, dead channels, dropped events, mismatched sampling rates —
through the full stack and assert the system either raises a typed
error or rejects; it must never accept.
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import P2AuthError
from repro.types import KeystrokeEvent, PPGRecording

PIN = "1628"


def _corrupt_recording(trial, samples):
    recording = trial.recording.with_samples(samples)
    return dataclasses.replace(trial, recording=recording)


def _authenticate_never_accepts(auth, trial):
    """Corrupt input: a typed error or a rejection, never an accept."""
    try:
        decision = auth.authenticate(trial)
    except P2AuthError:
        return
    assert not decision.accepted


class TestCorruptSignals:
    def test_saturated_adc(self, enrolled_auth, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        saturated = np.full_like(trial.recording.samples, 24.0)
        _authenticate_never_accepts(
            enrolled_auth, _corrupt_recording(trial, saturated)
        )

    def test_all_zero_signal(self, enrolled_auth, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        zeros = np.zeros_like(trial.recording.samples)
        _authenticate_never_accepts(enrolled_auth, _corrupt_recording(trial, zeros))

    def test_nan_burst(self, enrolled_auth, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        corrupted = trial.recording.samples.copy()
        corrupted[:, 100:140] = np.nan
        _authenticate_never_accepts(
            enrolled_auth, _corrupt_recording(trial, corrupted)
        )

    def test_pure_noise_replacement(self, enrolled_auth, study_data, rng):
        """An attacker substituting a noise stream must be rejected."""
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        noise = rng.normal(0.0, 1.0, size=trial.recording.samples.shape)
        _authenticate_never_accepts(enrolled_auth, _corrupt_recording(trial, noise))

    def test_replayed_third_party_trial(self, enrolled_auth, study_data):
        """Replaying someone else's capture with the right PIN fails."""
        other = study_data.trials(3, PIN, "one_handed", 1)[0]
        decision = enrolled_auth.authenticate(other)
        assert not decision.accepted


class TestStructuralCorruption:
    def test_wrong_sampling_rate(self, enrolled_auth, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        recording = PPGRecording(
            samples=trial.recording.samples,
            fs=50.0,
            channels=trial.recording.channels,
        )
        bad = dataclasses.replace(trial, recording=recording)
        with pytest.raises(P2AuthError):
            enrolled_auth.authenticate(bad)

    def test_wrong_channel_count(self, enrolled_auth, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        sub = dataclasses.replace(
            trial, recording=trial.recording.select_channels([0, 1])
        )
        _authenticate_never_accepts(enrolled_auth, sub)

    def test_events_outside_recording(self, enrolled_auth, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        shifted = tuple(
            KeystrokeEvent(
                key=e.key,
                true_time=e.true_time,
                reported_time=e.reported_time + 100.0,
                hand=e.hand,
            )
            for e in trial.events
        )
        bad = dataclasses.replace(trial, events=shifted)
        _authenticate_never_accepts(enrolled_auth, bad)

    def test_truncated_recording(self, enrolled_auth, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        truncated = _corrupt_recording(trial, trial.recording.samples[:, :120])
        _authenticate_never_accepts(enrolled_auth, truncated)


class TestDeadChannels:
    def test_one_dead_channel_still_usable(self, enrolled_auth, study_data):
        """A single dead (constant) channel degrades but must not crash."""
        accepted = []
        for trial in study_data.trials(0, PIN, "one_handed", 10)[7:]:
            corrupted = trial.recording.samples.copy()
            corrupted[3] = 0.0
            try:
                decision = enrolled_auth.authenticate(
                    _corrupt_recording(trial, corrupted)
                )
                accepted.append(decision.accepted)
            except P2AuthError:
                accepted.append(False)
        # No crash; decisions were produced (either way) for all probes.
        assert len(accepted) == 3
