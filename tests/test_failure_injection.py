"""Failure-injection tests: corrupt inputs must never authenticate.

For an authentication system the failure mode that matters is silent
*acceptance* of garbage. These tests feed broken trials — saturated
ADC, NaNs, dead channels, dropped events, mismatched sampling rates —
through the full stack and assert the system either raises a typed
error or rejects; it must never accept.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import DegradationPolicy, EnrollmentOptions, P2Auth
from repro.data import ThirdPartyStore
from repro.errors import EnrollmentError, P2AuthError
from repro.faults import FAULT_TYPES, FaultChain, fault_rng, make_fault
from repro.types import KeystrokeEvent, PPGRecording

PIN = "1628"


def _corrupt_recording(trial, samples):
    recording = trial.recording.with_samples(samples)
    return dataclasses.replace(trial, recording=recording)


def _authenticate_never_accepts(auth, trial):
    """Corrupt input: a typed error or a rejection, never an accept."""
    try:
        decision = auth.authenticate(trial)
    except P2AuthError:
        return
    assert not decision.accepted


class TestCorruptSignals:
    def test_saturated_adc(self, enrolled_auth, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        saturated = np.full_like(trial.recording.samples, 24.0)
        _authenticate_never_accepts(
            enrolled_auth, _corrupt_recording(trial, saturated)
        )

    def test_all_zero_signal(self, enrolled_auth, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        zeros = np.zeros_like(trial.recording.samples)
        _authenticate_never_accepts(enrolled_auth, _corrupt_recording(trial, zeros))

    def test_nan_burst(self, enrolled_auth, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        corrupted = trial.recording.samples.copy()
        corrupted[:, 100:140] = np.nan
        _authenticate_never_accepts(
            enrolled_auth, _corrupt_recording(trial, corrupted)
        )

    def test_pure_noise_replacement(self, enrolled_auth, study_data, rng):
        """An attacker substituting a noise stream must be rejected."""
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        noise = rng.normal(0.0, 1.0, size=trial.recording.samples.shape)
        _authenticate_never_accepts(enrolled_auth, _corrupt_recording(trial, noise))

    def test_replayed_third_party_trial(self, enrolled_auth, study_data):
        """Replaying someone else's capture with the right PIN fails."""
        other = study_data.trials(3, PIN, "one_handed", 1)[0]
        decision = enrolled_auth.authenticate(other)
        assert not decision.accepted


class TestStructuralCorruption:
    def test_wrong_sampling_rate(self, enrolled_auth, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        recording = PPGRecording(
            samples=trial.recording.samples,
            fs=50.0,
            channels=trial.recording.channels,
        )
        bad = dataclasses.replace(trial, recording=recording)
        with pytest.raises(P2AuthError):
            enrolled_auth.authenticate(bad)

    def test_wrong_channel_count(self, enrolled_auth, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        sub = dataclasses.replace(
            trial, recording=trial.recording.select_channels([0, 1])
        )
        _authenticate_never_accepts(enrolled_auth, sub)

    def test_events_outside_recording(self, enrolled_auth, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        shifted = tuple(
            KeystrokeEvent(
                key=e.key,
                true_time=e.true_time,
                reported_time=e.reported_time + 100.0,
                hand=e.hand,
            )
            for e in trial.events
        )
        bad = dataclasses.replace(trial, events=shifted)
        _authenticate_never_accepts(enrolled_auth, bad)

    def test_truncated_recording(self, enrolled_auth, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        truncated = _corrupt_recording(trial, trial.recording.samples[:, :120])
        _authenticate_never_accepts(enrolled_auth, truncated)


class TestInjectedFaults:
    """Every registered injector at worst case, through the full stack."""

    @pytest.mark.parametrize("name", sorted(FAULT_TYPES))
    def test_attacker_never_accepted_under_fault(
        self, name, enrolled_auth, study_data
    ):
        """Damage must never help an attacker in, policy or not."""
        fault = make_fault(name, 1.0)
        for index, trial in enumerate(
            study_data.trials(5, PIN, "one_handed", 3)
        ):
            rng = fault_rng(0, name, "attack", index)
            _authenticate_never_accepts(enrolled_auth, fault.apply(trial, rng))

    @pytest.mark.parametrize("name", sorted(FAULT_TYPES))
    def test_attacker_never_accepted_with_ladder(self, name, study_data):
        """Same invariant with the degradation ladder enabled: repair
        must recover the legitimate user, never the attacker."""
        auth = P2Auth(
            pin=PIN,
            options=EnrollmentOptions(num_features=840),
            policy=DegradationPolicy(),
        )
        auth.enroll(
            study_data.trials(0, PIN, "one_handed", 7),
            ThirdPartyStore(study_data, [1, 2, 3, 4], PIN).sample(24),
        )
        fault = make_fault(name, 1.0)
        for index, trial in enumerate(
            study_data.trials(6, PIN, "one_handed", 3)
        ):
            rng = fault_rng(1, name, "attack", index)
            _authenticate_never_accepts(auth, fault.apply(trial, rng))

    def test_chained_faults_never_accepted(self, enrolled_auth, study_data):
        """Compound damage (dropout + drift + motion) on an attacker."""
        chain = FaultChain(
            faults=(
                make_fault("sample_dropout", 0.8),
                make_fault("clock_drift", 0.8),
                make_fault("motion_burst", 0.8),
            )
        )
        for index, trial in enumerate(
            study_data.trials(5, PIN, "one_handed", 3)
        ):
            rng = fault_rng(2, "chain", index)
            _authenticate_never_accepts(enrolled_auth, chain.apply(trial, rng))

    @pytest.mark.parametrize("name", sorted(FAULT_TYPES))
    def test_enrollment_on_faulted_trials_gates_or_trains(
        self, name, study_data
    ):
        """Enrollment on max-intensity faulted trials must either raise
        a typed EnrollmentError (quality gate) or produce a working
        authenticator — never crash with an untyped error."""
        fault = make_fault(name, 1.0)
        trials = [
            fault.apply(t, fault_rng(3, name, "enroll", i))
            for i, t in enumerate(study_data.trials(0, PIN, "one_handed", 7))
        ]
        auth = P2Auth(pin=PIN, options=EnrollmentOptions(num_features=840))
        store = ThirdPartyStore(study_data, [1, 2, 3, 4], PIN)
        try:
            auth.enroll(trials, store.sample(24))
        except EnrollmentError:
            return
        assert auth.enrolled


class TestDeadChannels:
    def test_one_dead_channel_still_usable(self, enrolled_auth, study_data):
        """A single dead (constant) channel degrades but must not crash."""
        accepted = []
        for trial in study_data.trials(0, PIN, "one_handed", 10)[7:]:
            corrupted = trial.recording.samples.copy()
            corrupted[3] = 0.0
            try:
                decision = enrolled_auth.authenticate(
                    _corrupt_recording(trial, corrupted)
                )
                accepted.append(decision.accepted)
            except P2AuthError:
                accepted.append(False)
        # No crash; decisions were produced (either way) for all probes.
        assert len(accepted) == 3
