"""Wire protocol: proof crypto, strict parsing, trial round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.service.protocol import (
    AuthRequest,
    AuthResponse,
    EnrollBeginRequest,
    EnrollCompleteRequest,
    decode_trial,
    derive_proof_key,
    encode_trial,
    make_nonce,
    make_pin,
    pin_proof,
    proof_from_key,
    verify_proof,
)

from .conftest import PIN


class TestProofCrypto:
    def test_proof_is_deterministic(self):
        assert pin_proof("1628", "u0", "abc") == pin_proof("1628", "u0", "abc")

    @pytest.mark.parametrize(
        "pin,user,nonce",
        [("1629", "u0", "abc"), ("1628", "u1", "abc"), ("1628", "u0", "abd")],
    )
    def test_proof_varies_with_every_input(self, pin, user, nonce):
        assert pin_proof(pin, user, nonce) != pin_proof("1628", "u0", "abc")

    def test_verify_accepts_canonical_proof(self):
        nonce = make_nonce()
        proof = pin_proof("1628", "u0", nonce)
        assert verify_proof("1628", "u0", nonce, proof)

    def test_verify_accepts_derived_key_proof(self):
        nonce = make_nonce()
        key = derive_proof_key("1628", "u0")
        proof = proof_from_key(key, "u0", nonce)
        assert proof != pin_proof("1628", "u0", nonce)
        assert verify_proof("1628", "u0", nonce, proof)

    def test_verify_rejects_wrong_pin(self):
        nonce = make_nonce()
        assert not verify_proof("1628", "u0", nonce, pin_proof("0000", "u0", nonce))

    def test_verify_rejects_transplanted_proof(self):
        # A proof minted for one user/nonce must not verify elsewhere.
        nonce = make_nonce()
        proof = pin_proof("1628", "u0", nonce)
        assert not verify_proof("1628", "u1", nonce, proof)
        assert not verify_proof("1628", "u0", make_nonce(), proof)

    def test_raw_pin_never_appears_in_proof(self):
        nonce = make_nonce()
        assert "1628" not in pin_proof("1628", "u0", nonce)
        assert "1628" not in derive_proof_key("1628", "u0")

    def test_make_pin_digits_and_length(self):
        pin = make_pin(6)
        assert len(pin) == 6 and pin.isdigit()
        with pytest.raises(ProtocolError):
            make_pin(0)

    def test_nonces_are_unique_and_hex(self):
        nonces = {make_nonce() for _ in range(64)}
        assert len(nonces) == 64
        assert all(len(n) == 32 and int(n, 16) >= 0 for n in nonces)


class TestTrialRoundTrip:
    def test_round_trip_is_bit_identical(self, one_trial):
        back = decode_trial(encode_trial(one_trial), one_trial.pin)
        assert back.pin == one_trial.pin
        assert back.one_handed == one_trial.one_handed
        assert back.user_id == one_trial.user_id
        assert back.recording.fs == one_trial.recording.fs
        assert back.recording.channels == one_trial.recording.channels
        # Exact equality, not allclose: the samples must survive the
        # wire byte-for-byte or decision parity is unprovable.
        assert np.array_equal(
            back.recording.samples, one_trial.recording.samples
        )
        assert back.events == one_trial.events

    def test_wire_payload_carries_no_digit_labels(self, one_trial):
        wire = encode_trial(one_trial)
        assert "pin" not in wire
        assert all("key" not in ev for ev in wire["events"])

    def test_accel_streams_are_refused(self, accel_trial):
        with pytest.raises(ProtocolError, match="accel"):
            encode_trial(accel_trial)

    def test_event_count_must_match_pin_length(self, one_trial):
        wire = encode_trial(one_trial)
        with pytest.raises(ProtocolError, match="events"):
            decode_trial(wire, one_trial.pin + "9")

    def test_unknown_field_rejected(self, one_trial):
        wire = encode_trial(one_trial)
        wire["surprise"] = 1
        with pytest.raises(ProtocolError, match="unknown field"):
            decode_trial(wire, one_trial.pin)

    def test_bad_base64_rejected(self, one_trial):
        wire = encode_trial(one_trial)
        wire["recording"]["samples_b64"] = "!!not-base64!!"
        with pytest.raises(ProtocolError, match="base64"):
            decode_trial(wire, one_trial.pin)

    def test_sample_byte_count_must_match_shape(self, one_trial):
        wire = encode_trial(one_trial)
        wire["recording"]["shape"] = [1, 8]
        with pytest.raises(ProtocolError, match="bytes"):
            decode_trial(wire, one_trial.pin)

    def test_bool_is_not_an_int(self, one_trial):
        wire = encode_trial(one_trial)
        wire["typist"] = True
        with pytest.raises(ProtocolError, match="boolean"):
            decode_trial(wire, one_trial.pin)

    def test_unknown_hand_rejected(self, one_trial):
        wire = encode_trial(one_trial)
        wire["events"][0]["hand"] = "tentacle"
        with pytest.raises(ProtocolError, match="hand"):
            decode_trial(wire, one_trial.pin)

    def test_missing_recording_rejected(self, one_trial):
        wire = encode_trial(one_trial)
        del wire["recording"]
        with pytest.raises(ProtocolError, match="recording"):
            decode_trial(wire, one_trial.pin)


class TestRequestParsers:
    def test_enroll_begin_strict(self):
        assert EnrollBeginRequest.parse({"user_id": "u0"}).user_id == "u0"
        with pytest.raises(ProtocolError):
            EnrollBeginRequest.parse({"user_id": "u0", "extra": 1})
        with pytest.raises(ProtocolError):
            EnrollBeginRequest.parse(["u0"])
        with pytest.raises(ProtocolError):
            EnrollBeginRequest.parse({"user_id": ""})

    def test_enroll_complete_requires_trials(self):
        base = {"user_id": "u0", "nonce": "n", "proof": "p"}
        with pytest.raises(ProtocolError, match="trials"):
            EnrollCompleteRequest.parse(base)
        with pytest.raises(ProtocolError, match="non-empty"):
            EnrollCompleteRequest.parse({**base, "trials": []})

    def test_auth_request_requires_proof(self, one_trial):
        body = {"user_id": "u0", "nonce": "n", "trial": encode_trial(one_trial)}
        with pytest.raises(ProtocolError, match="proof"):
            AuthRequest.parse(body)
        parsed = AuthRequest.parse({**body, "proof": "p"})
        assert parsed.user_id == "u0"

    def test_auth_response_withholds_keys_checked(self):
        wire = AuthResponse(
            user_id="u0", accepted=True, reason="ok", pin_ok=True,
            input_case="legal",
        ).to_wire()
        assert "keys_checked" not in wire
        assert PIN not in str(wire)
