"""Fixtures for the service-layer tests.

Enrollment is the expensive part, so the two-user registry is
session-scoped and read-only; every test gets its own (cheap)
:class:`AuthService` over it. Tests that mutate the registry —
wire-enrollment happy paths — build a fresh one.
"""

from __future__ import annotations

import pytest

from repro.core import EnrollmentOptions, ModelRegistry
from repro.data import ThirdPartyStore
from repro.service import AuthService

#: PIN every pre-enrolled service user types.
PIN = "1628"

#: Small feature budget keeping model fits fast.
FEATURES = 840


@pytest.fixture(scope="session")
def third_party(study_data):
    """Negative corpus shared by every enrollment in these tests."""
    store = ThirdPartyStore(study_data, [2, 3, 4, 5], PIN)
    return store.sample(24)


@pytest.fixture(scope="session")
def service_registry(study_data, third_party):
    """A registry with users ``u0``/``u1`` enrolled (study users 0/1)."""
    registry = ModelRegistry(
        options=EnrollmentOptions(num_features=FEATURES)
    )
    for uid, idx in (("u0", 0), ("u1", 1)):
        registry.enroll(
            uid,
            PIN,
            study_data.trials(idx, PIN, "one_handed", 7),
            third_party,
        )
    return registry


@pytest.fixture(scope="session")
def probes(study_data):
    """Held-out probes beyond the 7 enrollment trials.

    ``legit``: user 0 typing their own PIN (target ``u0``).
    ``impostor``: user 1 typing user 0's PIN (also target ``u0``).
    """
    return {
        "legit": study_data.trials(0, PIN, "one_handed", 11)[7:],
        "impostor": study_data.trials(1, PIN, "one_handed", 11)[7:],
    }


@pytest.fixture()
def service(service_registry):
    """A fresh unlimited-retry service over the shared registry."""
    svc = AuthService(service_registry, retry=None, max_workers=4)
    svc.adopt_user("u0", PIN)
    svc.adopt_user("u1", PIN)
    yield svc
    svc.close()
