"""ASGI adapter and HTTP server: routing, error mapping, wire hygiene."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.session import RetryPolicy
from repro.service import AuthService, encode_trial, make_app, pin_proof
from repro.service.http import serve
from repro.service.protocol import make_nonce

from .conftest import PIN


def call_app(app, method, path, body=None):
    """Drive the ASGI app once in-memory; returns (status, json, headers)."""

    async def run():
        sent = []
        incoming = [
            {
                "type": "http.request",
                "body": body if body is not None else b"",
                "more_body": False,
            }
        ]

        async def receive():
            return incoming.pop(0)

        async def send(message):
            sent.append(message)

        await app({"type": "http", "method": method, "path": path}, receive, send)
        return sent

    sent = asyncio.run(run())
    start = next(m for m in sent if m["type"] == "http.response.start")
    payload = b"".join(
        m.get("body", b"") for m in sent if m["type"] == "http.response.body"
    )
    headers = {k.decode(): v.decode() for k, v in start["headers"]}
    return start["status"], json.loads(payload), headers


def post_json(app, path, obj):
    return call_app(app, "POST", path, json.dumps(obj).encode())


@pytest.fixture()
def app(service):
    return make_app(service)


class TestRouting:
    def test_health(self, app):
        status, body, headers = call_app(app, "GET", "/v1/health")
        assert status == 200 and body == {"status": "ok"}
        assert headers["content-type"] == "application/json"

    def test_unknown_route_is_404(self, app):
        status, body, _ = call_app(app, "GET", "/v1/nope")
        assert status == 404 and body["error"]["code"] == "not_found"

    def test_wrong_method_is_405_with_allow(self, app):
        status, body, headers = call_app(app, "GET", "/v1/auth")
        assert status == 405
        assert body["error"]["code"] == "method_not_allowed"
        assert headers["allow"] == "POST"

    def test_bad_json_is_400_protocol_error(self, app):
        status, body, _ = call_app(app, "POST", "/v1/auth", b"{nope")
        assert status == 400 and body["error"]["code"] == "protocol_error"

    def test_unknown_field_is_400(self, app):
        status, body, _ = post_json(app, "/v1/enroll/begin", {"user": "x"})
        assert status == 400 and body["error"]["code"] == "protocol_error"

    def test_admin_users(self, app):
        status, body, _ = call_app(app, "GET", "/v1/admin/users")
        assert status == 200 and set(body["users"]) >= {"u0", "u1"}

    def test_admin_stats(self, app):
        status, body, _ = call_app(app, "GET", "/v1/admin/stats")
        assert status == 200
        assert set(body) == {"registry", "service", "sessions", "config"}
        assert "capacity" in body["registry"]

    def test_payload_too_large(self, app, monkeypatch):
        monkeypatch.setattr("repro.service.http.MAX_BODY_BYTES", 64)
        status, body, _ = call_app(app, "POST", "/v1/auth", b"x" * 65)
        assert status == 413
        assert body["error"]["code"] == "payload_too_large"

    def test_lifespan_completes(self, app):
        async def run():
            sent = []
            incoming = [
                {"type": "lifespan.startup"},
                {"type": "lifespan.shutdown"},
            ]

            async def receive():
                return incoming.pop(0)

            async def send(message):
                sent.append(message)

            await app({"type": "lifespan"}, receive, send)
            return sent

        sent = asyncio.run(run())
        assert [m["type"] for m in sent] == [
            "lifespan.startup.complete",
            "lifespan.shutdown.complete",
        ]


class TestErrorMapping:
    def test_unknown_user_is_404(self, app, probes):
        nonce = make_nonce()
        status, body, _ = post_json(
            app,
            "/v1/auth",
            {
                "user_id": "ghost",
                "nonce": nonce,
                "proof": pin_proof(PIN, "ghost", nonce),
                "trial": encode_trial(probes["legit"][0]),
            },
        )
        assert status == 404 and body["error"]["code"] == "unknown_user"

    def test_replayed_nonce_is_403(self, app, probes):
        nonce = make_nonce()
        req = {
            "user_id": "u0",
            "nonce": nonce,
            "proof": pin_proof(PIN, "u0", nonce),
            "trial": encode_trial(probes["legit"][0]),
        }
        status, _, _ = post_json(app, "/v1/auth", req)
        assert status == 200
        status, body, _ = post_json(app, "/v1/auth", req)
        assert status == 403 and body["error"]["code"] == "proof_rejected"

    def test_backoff_is_429_with_retry_after(self, service_registry, probes):
        svc = AuthService(
            service_registry,
            retry=RetryPolicy(max_failures=3, backoff_base_s=30.0),
        )
        svc.adopt_user("u0", PIN)
        app = make_app(svc)
        try:
            def bad():
                nonce = make_nonce()
                return {
                    "user_id": "u0",
                    "nonce": nonce,
                    "proof": pin_proof("9999", "u0", nonce),
                    "trial": encode_trial(probes["legit"][0]),
                }

            status, body, _ = post_json(app, "/v1/auth", bad())
            assert status == 200 and not body["accepted"]
            status, body, headers = post_json(app, "/v1/auth", bad())
            assert status == 429
            assert body["error"]["code"] == "retry_backoff"
            assert 1 <= int(headers["retry-after"]) <= 30
        finally:
            svc.close()


def _string_leaves(obj, key=""):
    """Yield every (field_name, value) string leaf of a JSON body."""
    if isinstance(obj, dict):
        for k, v in obj.items():
            yield from _string_leaves(v, k)
    elif isinstance(obj, list):
        for v in obj:
            yield from _string_leaves(v, key)
    elif isinstance(obj, str):
        yield key, obj


def _assert_no_pin(path, obj, pin):
    """No string field of a request may carry the PIN.

    Opaque fields get structural checks instead of substring ones — a
    random PIN can appear by chance inside base64/hex blobs, so a
    substring assertion there would be flaky, and a 4-digit PIN can
    never *be* a 32/64-char hex string anyway.
    """
    for field, value in _string_leaves(obj):
        if field == "samples_b64":
            continue
        if field in ("proof", "nonce"):
            assert len(value) in (32, 64) and int(value, 16) >= 0
            assert value != pin
            continue
        assert pin not in value, f"PIN leaked in {path} field {field!r}"


class TestWireHygiene:
    """The raw PIN must never appear in any request body."""

    def test_full_flow_requests_never_carry_the_pin(
        self, service_registry, study_data, third_party, probes
    ):
        from repro.core import EnrollmentOptions, ModelRegistry

        registry = ModelRegistry(
            options=EnrollmentOptions(num_features=840)
        )
        svc = AuthService(registry, third_party_trials=third_party)
        app = make_app(svc)
        captured_requests = []

        def post(path, obj):
            captured_requests.append((path, obj))
            return call_app(app, "POST", path, json.dumps(obj).encode())

        try:
            status, begin, _ = post("/v1/enroll/begin", {"user_id": "alice"})
            assert status == 200
            pin = begin["pin"]
            trials = [
                encode_trial(t)
                for t in study_data.trials(0, pin, "one_handed", 7)
            ]
            status, done, _ = post(
                "/v1/enroll/complete",
                {
                    "user_id": "alice",
                    "nonce": begin["nonce"],
                    "proof": pin_proof(pin, "alice", begin["nonce"]),
                    "trials": trials,
                },
            )
            assert status == 200 and done["enrolled"]
            probe = study_data.trials(0, pin, "one_handed", 8)[7]
            nonce = make_nonce()
            status, out, _ = post(
                "/v1/auth",
                {
                    "user_id": "alice",
                    "nonce": nonce,
                    "proof": pin_proof(pin, "alice", nonce),
                    "trial": encode_trial(probe),
                },
            )
            assert status == 200 and out["accepted"]
            # The assertion this class exists for: no request body —
            # enrollment or authentication — ever carries the PIN.
            assert len(captured_requests) == 3
            for path, obj in captured_requests:
                _assert_no_pin(path, obj, pin)
            # And the auth response withholds per-key digit labels.
            assert "keys_checked" not in out
        finally:
            svc.close()


class TestSocketServer:
    def test_round_trip_with_keep_alive(self, service):
        async def run():
            ready = asyncio.Event()
            task = asyncio.create_task(serve(service, "127.0.0.1", 0, ready=ready))
            await asyncio.wait_for(ready.wait(), 5)
            host, port = ready.address
            reader, writer = await asyncio.open_connection(host, port)

            async def request(raw):
                writer.write(raw)
                await writer.drain()
                status_line = await reader.readline()
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n"):
                        break
                    name, _, value = line.decode().partition(":")
                    headers[name.strip().lower()] = value.strip()
                body = await reader.readexactly(int(headers["content-length"]))
                return int(status_line.split()[1]), json.loads(body)

            # Two requests over one connection: keep-alive works.
            status, body = await request(
                b"GET /v1/health HTTP/1.1\r\nhost: x\r\n\r\n"
            )
            assert status == 200 and body == {"status": "ok"}
            payload = json.dumps({"user_id": "u0"}).encode()
            status, body = await request(
                b"POST /v1/enroll/begin HTTP/1.1\r\nhost: x\r\n"
                + f"content-length: {len(payload)}\r\n\r\n".encode()
                + payload
            )
            assert status == 200 and body["user_id"] == "u0"
            writer.close()
            await writer.wait_closed()
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        asyncio.run(run())

    def test_malformed_request_line_closes_with_400(self, service):
        async def run():
            ready = asyncio.Event()
            task = asyncio.create_task(serve(service, "127.0.0.1", 0, ready=ready))
            await asyncio.wait_for(ready.wait(), 5)
            host, port = ready.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"NONSENSE\r\n\r\n")
            await writer.drain()
            status_line = await reader.readline()
            assert b"400" in status_line
            writer.close()
            await writer.wait_closed()
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        asyncio.run(run())
