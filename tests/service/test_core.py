"""AuthService: windows, parity, concurrency, lockout persistence."""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.core import EnrollmentOptions, ModelRegistry
from repro.core.artifacts import AuthDecision
from repro.core.session import RetryPolicy
from repro.errors import (
    BackoffError,
    ConfigurationError,
    LockoutError,
    ProofError,
    UnknownUserError,
)
from repro.service import AuthService, encode_trial, pin_proof
from repro.service.protocol import (
    AuthRequest,
    EnrollCompleteRequest,
    make_nonce,
)

from .conftest import FEATURES, PIN


def _auth_request(user_id, trial, pin=PIN):
    nonce = make_nonce()
    return AuthRequest(
        user_id=user_id,
        nonce=nonce,
        proof=pin_proof(pin, user_id, nonce),
        trial=encode_trial(trial),
    )


class _Clock:
    """Injectable deterministic clock."""

    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stripes": 0},
            {"max_workers": 0},
            {"session_capacity": 0},
            {"enroll_ttl_s": 0.0},
            {"enroll_max_attempts": 0},
        ],
    )
    def test_bad_parameters_rejected(self, service_registry, kwargs):
        with pytest.raises(ConfigurationError):
            AuthService(service_registry, **kwargs)


class TestEnrollmentWindow:
    def test_begin_issues_pin_and_nonce(self, service):
        begin = service.enroll_begin("w1")
        assert len(begin.pin) == 4 and begin.pin.isdigit()
        assert len(begin.nonce) == 32
        other = service.enroll_begin("w2")
        assert other.nonce != begin.nonce

    def test_complete_without_window(self, service, one_trial):
        req = EnrollCompleteRequest(
            user_id="w1", nonce="n", proof="p",
            trials=(encode_trial(one_trial),),
        )
        with pytest.raises(ProofError, match="no open enrollment window"):
            asyncio.run(service.enroll_complete(req))

    def test_window_expires(self, service_registry, one_trial):
        clock = _Clock()
        svc = AuthService(service_registry, clock=clock, enroll_ttl_s=60.0)
        try:
            begin = svc.enroll_begin("w1")
            clock.now += 61.0
            req = EnrollCompleteRequest(
                user_id="w1",
                nonce=begin.nonce,
                proof=pin_proof(begin.pin, "w1", begin.nonce),
                trials=(encode_trial(one_trial),),
            )
            with pytest.raises(ProofError, match="expired"):
                asyncio.run(svc.enroll_complete(req))
            # The expired window is gone, not retryable.
            with pytest.raises(ProofError, match="no open enrollment window"):
                asyncio.run(svc.enroll_complete(req))
        finally:
            svc.close()

    def test_nonce_mismatch_rejected(self, service, one_trial):
        begin = service.enroll_begin("w1")
        req = EnrollCompleteRequest(
            user_id="w1",
            nonce=make_nonce(),
            proof=pin_proof(begin.pin, "w1", begin.nonce),
            trials=(encode_trial(one_trial),),
        )
        with pytest.raises(ProofError, match="nonce"):
            asyncio.run(service.enroll_complete(req))

    def test_bad_proofs_burn_the_window(self, service_registry, one_trial):
        svc = AuthService(service_registry, enroll_max_attempts=2)
        try:
            begin = svc.enroll_begin("w1")

            def bad():
                return EnrollCompleteRequest(
                    user_id="w1",
                    nonce=begin.nonce,
                    proof=pin_proof("0000", "w1", begin.nonce),
                    trials=(encode_trial(one_trial),),
                )

            with pytest.raises(ProofError, match="rejected"):
                asyncio.run(svc.enroll_complete(bad()))
            with pytest.raises(ProofError, match="burned"):
                asyncio.run(svc.enroll_complete(bad()))
            # Even the correct proof is now refused: single-use window.
            good = EnrollCompleteRequest(
                user_id="w1",
                nonce=begin.nonce,
                proof=pin_proof(begin.pin, "w1", begin.nonce),
                trials=(encode_trial(one_trial),),
            )
            with pytest.raises(ProofError, match="no open enrollment window"):
                asyncio.run(svc.enroll_complete(good))
        finally:
            svc.close()

    def test_wire_enrollment_end_to_end(self, study_data, third_party, probes):
        registry = ModelRegistry(
            options=EnrollmentOptions(num_features=FEATURES)
        )
        svc = AuthService(registry, third_party_trials=third_party)
        try:
            begin = svc.enroll_begin("alice")
            pin = begin.pin
            trials = tuple(
                encode_trial(t)
                for t in study_data.trials(0, pin, "one_handed", 7)
            )
            req = EnrollCompleteRequest(
                user_id="alice",
                nonce=begin.nonce,
                proof=pin_proof(pin, "alice", begin.nonce),
                trials=trials,
            )
            resp = asyncio.run(svc.enroll_complete(req))
            assert resp.enrolled and resp.n_trials == 7
            assert "alice" in registry
            # The window is consumed: replaying the completion fails.
            with pytest.raises(ProofError, match="no open enrollment window"):
                asyncio.run(svc.enroll_complete(req))
            # And the enrolled user authenticates over the wire.
            probe = study_data.trials(0, pin, "one_handed", 8)[7]
            out = asyncio.run(
                svc.authenticate(_auth_request("alice", probe, pin=pin))
            )
            assert out.accepted
            assert out.session_state == "authenticated"
        finally:
            svc.close()


class TestAdoptUser:
    def test_adopt_unknown_user(self, service):
        with pytest.raises(UnknownUserError):
            service.adopt_user("ghost", PIN)

    def test_unadopted_user_with_templates(self, service_registry, probes):
        svc = AuthService(service_registry)
        try:
            with pytest.raises(ProofError, match="credentials"):
                asyncio.run(
                    svc.authenticate(_auth_request("u0", probes["legit"][0]))
                )
        finally:
            svc.close()

    def test_unknown_user_is_404_not_403(self, service, probes):
        with pytest.raises(UnknownUserError):
            asyncio.run(
                service.authenticate(_auth_request("ghost", probes["legit"][0]))
            )


class TestDecisionParity:
    """The acceptance criterion: service == direct engine, bitwise."""

    def _direct(self, registry, user_id, trial, claimed_pin):
        return registry.authenticate(user_id, trial, claimed_pin=claimed_pin)

    def _compare(self, response, decision: AuthDecision):
        assert response.accepted == decision.accepted
        assert response.reason == decision.reason
        assert response.pin_ok == decision.pin_ok
        expected_case = (
            None if decision.input_case is None else decision.input_case.value
        )
        assert response.input_case == expected_case
        # Bit-identical scores: == on floats, deliberately.
        assert response.scores == tuple(decision.scores)
        assert response.passes == tuple(decision.passes)

    def test_probe_battery_matches_direct_calls(
        self, service, service_registry, probes
    ):
        battery = [("u0", t) for t in probes["legit"]]
        battery += [("u0", t) for t in probes["impostor"]]

        async def run():
            return await asyncio.gather(
                *(
                    service.authenticate(_auth_request(uid, trial))
                    for uid, trial in battery
                )
            )

        responses = asyncio.run(run())
        for (uid, trial), response in zip(battery, responses):
            direct = self._direct(service_registry, uid, trial, PIN)
            self._compare(response, direct)
        # The battery must exercise both verdicts to prove anything.
        verdicts = {r.accepted for r in responses}
        assert verdicts == {True, False}

    def test_wrong_proof_matches_direct_wrong_pin(
        self, service, service_registry, probes
    ):
        trial = probes["legit"][0]
        response = asyncio.run(
            service.authenticate(_auth_request("u0", trial, pin="9999"))
        )
        direct = self._direct(service_registry, "u0", trial, "9999")
        self._compare(response, direct)
        assert response.pin_ok is False
        assert not response.accepted


class TestNonceReplay:
    def test_replayed_nonce_rejected(self, service, probes):
        req = _auth_request("u0", probes["legit"][0])

        async def run():
            await service.authenticate(req)
            await service.authenticate(req)

        with pytest.raises(ProofError, match="single-use"):
            asyncio.run(run())
        assert service.stats()["service"]["nonce_replays"] == 1


class _StubAuth:
    """Engine stub measuring overlap of concurrent authenticate calls."""

    enrolled = True

    def __init__(self, tracker, delay=0.05):
        self._tracker = tracker
        self._delay = delay

    def authenticate(self, trial, claimed_pin=None):
        with self._tracker["lock"]:
            self._tracker["active"] += 1
            self._tracker["max_active"] = max(
                self._tracker["max_active"], self._tracker["active"]
            )
        time.sleep(self._delay)
        with self._tracker["lock"]:
            self._tracker["active"] -= 1
        return AuthDecision(accepted=True, reason="stub", pin_ok=True)


class _StubRegistry:
    """Just enough registry surface for AuthService."""

    def __init__(self, auths):
        self._auths = auths

    def get(self, user_id):
        return self._auths[user_id]

    def __contains__(self, user_id):
        return user_id in self._auths

    def describe(self):
        return {"capacity": None, "backend": None, "cached_users": 0,
                "stats": {}}

    def warm_users(self):
        return frozenset(self._auths)

    def list_users(self):
        return sorted(self._auths)


def _stub_service(user_ids, delay=0.05, **kwargs):
    tracker = {"lock": threading.Lock(), "active": 0, "max_active": 0}
    auths = {uid: _StubAuth(tracker, delay) for uid in user_ids}
    svc = AuthService(_StubRegistry(auths), retry=None, **kwargs)
    for uid in user_ids:
        svc.adopt_user(uid, PIN)
    return svc, tracker


class TestConcurrency:
    def test_same_user_requests_serialize(self, one_trial):
        svc, tracker = _stub_service(["s0"], max_workers=4)
        try:
            async def run():
                await asyncio.gather(
                    *(
                        svc.authenticate(_auth_request("s0", one_trial))
                        for _ in range(4)
                    )
                )

            asyncio.run(run())
            assert tracker["max_active"] == 1
        finally:
            svc.close()

    def test_cross_user_requests_overlap(self, one_trial):
        users = [f"s{i}" for i in range(4)]
        svc, tracker = _stub_service(users, delay=0.2, max_workers=4)
        try:
            async def run():
                await asyncio.gather(
                    *(
                        svc.authenticate(_auth_request(uid, one_trial))
                        for uid in users
                    )
                )

            start = time.monotonic()
            asyncio.run(run())
            elapsed = time.monotonic() - start
            assert tracker["max_active"] >= 2
            # Four 0.2 s engine calls must not take 4 * 0.2 s.
            assert elapsed < 0.7
        finally:
            svc.close()


class TestLockoutPersistence:
    def _throttled_service(self, registry, capacity=1):
        clock = _Clock()
        svc = AuthService(
            registry,
            retry=RetryPolicy(
                max_failures=2, backoff_base_s=5.0, backoff_factor=2.0
            ),
            session_capacity=capacity,
            clock=clock,
        )
        svc.adopt_user("u0", PIN)
        svc.adopt_user("u1", PIN)
        return svc, clock

    def test_backoff_then_lockout_with_retry_after(
        self, service_registry, probes
    ):
        svc, clock = self._throttled_service(service_registry, capacity=4)
        try:
            trial = probes["legit"][0]
            bad = lambda: _auth_request("u0", trial, pin="9999")  # noqa: E731
            first = asyncio.run(svc.authenticate(bad()))
            assert not first.accepted and first.failures == 1
            assert first.retry_after_s == pytest.approx(5.0)
            # Inside the window: typed 429 with the remaining delay.
            clock.now += 1.0
            with pytest.raises(BackoffError) as exc:
                asyncio.run(svc.authenticate(bad()))
            assert exc.value.retry_after_s == pytest.approx(4.0)
            # Past the window: the attempt runs, fails, and locks out.
            clock.now += 10.0
            second = asyncio.run(svc.authenticate(bad()))
            assert second.failures == 2
            assert second.session_state == "locked"
            with pytest.raises(LockoutError):
                asyncio.run(svc.authenticate(bad()))
            assert svc.stats()["service"]["throttled"] == 2
        finally:
            svc.close()

    def test_lockout_survives_slot_eviction(self, service_registry, probes):
        svc, clock = self._throttled_service(service_registry, capacity=1)
        try:
            trial = probes["legit"][0]
            for _ in range(2):
                asyncio.run(
                    svc.authenticate(_auth_request("u0", trial, pin="9999"))
                )
                clock.now += 100.0
            status = asyncio.run(svc.session_status("u0"))
            assert status.locked
            # u1 takes the only session slot, evicting u0's session.
            asyncio.run(svc.authenticate(_auth_request("u1", probes["impostor"][0])))
            assert svc.stats()["service"]["session_evictions"] == 1
            # The evicted ladder still gates u0: locked, not reset.
            with pytest.raises(LockoutError):
                asyncio.run(
                    svc.authenticate(_auth_request("u0", trial))
                )
            status = asyncio.run(svc.session_status("u0"))
            assert status.locked and status.state == "locked"
        finally:
            svc.close()

    def test_unlock_clears_ladder_and_restores_service(
        self, service_registry, probes
    ):
        svc, clock = self._throttled_service(service_registry, capacity=1)
        try:
            trial = probes["legit"][0]
            for _ in range(2):
                asyncio.run(
                    svc.authenticate(_auth_request("u0", trial, pin="9999"))
                )
                clock.now += 100.0
            # Evict the locked session so the saved ladder is what
            # unlock must clear.
            asyncio.run(svc.authenticate(_auth_request("u1", probes["impostor"][0])))
            asyncio.run(svc.unlock("u0"))
            out = asyncio.run(svc.authenticate(_auth_request("u0", trial)))
            assert out.accepted
        finally:
            svc.close()


class TestAdminSurface:
    def test_stats_shape(self, service, probes):
        asyncio.run(service.authenticate(_auth_request("u0", probes["legit"][0])))
        stats = service.stats()
        assert stats["registry"]["backend"] is None
        assert stats["registry"]["warm_users"] >= 1
        assert stats["service"]["requests"] == 1
        assert stats["service"]["accepted"] == 1
        assert stats["sessions"]["live"] == 1
        assert stats["config"]["stripes"] == 64

    def test_list_users(self, service):
        assert set(service.list_users()) >= {"u0", "u1"}

    def test_warm(self, service):
        n = asyncio.run(service.warm(["u0", "u1"]))
        assert n >= 2
        with pytest.raises(UnknownUserError):
            asyncio.run(service.warm(["ghost"]))

    def test_session_status_for_fresh_user(self, service):
        status = asyncio.run(service.session_status("u0"))
        assert status.state == "off_wrist"
        assert not status.locked and status.failures == 0
        with pytest.raises(UnknownUserError):
            asyncio.run(service.session_status("ghost"))
