"""Unit tests for watch-wear detection."""

import numpy as np
import pytest

from repro.core import detect_wear
from repro.errors import SignalError
from repro.physio.cardiac import synthesize_cardiac
from repro.types import PPGRecording, PROTOTYPE_CHANNELS


def _recording(samples, fs=100.0):
    samples = np.atleast_2d(samples)
    if samples.shape[0] == 1:
        samples = np.repeat(samples, 4, axis=0)
    return PPGRecording(samples=samples, fs=fs, channels=PROTOTYPE_CHANNELS)


class TestDetectWear:
    def test_worn_on_real_trial(self, one_trial):
        status = detect_wear(one_trial.recording)
        assert status.worn
        assert 40.0 <= status.heart_rate_bpm <= 180.0

    def test_heart_rate_estimate_close(self, population, rng):
        user = population[0]
        cardiac = synthesize_cardiac(1500, 100.0, user.cardiac, rng)
        status = detect_wear(_recording(cardiac))
        assert status.worn
        assert abs(status.heart_rate_bpm - user.cardiac.heart_rate) < 12.0

    def test_off_wrist_noise_not_worn(self, rng):
        noise = rng.normal(0.0, 0.3, size=(4, 800))
        status = detect_wear(_recording(noise))
        assert not status.worn
        assert status.heart_rate_bpm is None

    def test_flat_signal_not_worn(self):
        status = detect_wear(_recording(np.zeros((4, 500))))
        assert not status.worn
        assert status.confidence == 0.0

    def test_too_short_rejected(self, rng):
        with pytest.raises(SignalError):
            detect_wear(_recording(rng.normal(size=(4, 100))))

    def test_confidence_in_unit_interval(self, one_trial, rng):
        for recording in (
            one_trial.recording,
            _recording(rng.normal(size=(4, 500))),
        ):
            status = detect_wear(recording)
            assert 0.0 <= status.confidence <= 1.0

    def test_cardiac_survives_baseline_drift(self, population, rng):
        user = population[0]
        cardiac = synthesize_cardiac(1500, 100.0, user.cardiac, rng)
        t = np.arange(1500) / 100.0
        drift = 3.0 * np.sin(2 * np.pi * 0.05 * t)
        status = detect_wear(_recording(cardiac + drift))
        assert status.worn
