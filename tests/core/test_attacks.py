"""Unit tests for the attack models."""

import pytest

from repro.core import EmulatingAttacker, RandomAttacker
from repro.errors import ConfigurationError
from repro.physio import TrialSynthesizer


@pytest.fixture()
def synth(sim_config):
    return TrialSynthesizer(sim_config)


class TestRandomAttacker:
    def test_guesses_are_valid_pins(self, population, synth, rng):
        attacker = RandomAttacker(population[1], synth, rng)
        for _ in range(10):
            guess = attacker.guess_pin()
            assert len(guess) == 4
            assert guess.isdigit()

    def test_guesses_vary(self, population, synth, rng):
        attacker = RandomAttacker(population[1], synth, rng)
        guesses = {attacker.guess_pin() for _ in range(20)}
        assert len(guesses) > 5

    def test_attempt_produces_trial_by_attacker(self, population, synth, rng):
        attacker = RandomAttacker(population[1], synth, rng)
        trial = attacker.attempt()
        assert trial.user_id == population[1].user_id
        assert len(trial.pin) == 4

    def test_invalid_pin_length(self, population, synth, rng):
        with pytest.raises(ConfigurationError):
            RandomAttacker(population[1], synth, rng, pin_length=0)


class TestEmulatingAttacker:
    def test_attempt_types_victim_pin(self, population, synth, rng):
        attacker = EmulatingAttacker(population[1], population[0], synth, rng)
        trial = attacker.attempt("1628")
        assert trial.pin == "1628"
        assert trial.user_id == population[1].user_id

    def test_two_handed_attempt(self, population, synth, rng):
        attacker = EmulatingAttacker(population[1], population[0], synth, rng)
        trial = attacker.attempt("1628", one_handed=False, forced_left_count=2)
        assert not trial.one_handed
        assert len(trial.watch_hand_events) == 2
