"""Unit tests for the graceful-degradation policy and retry ladder."""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    DegradationPolicy,
    P2Auth,
    RetryPolicy,
    SessionManager,
    SessionState,
    apply_policy,
)
from repro.errors import AuthenticationError, ConfigurationError, QualityError

PIN = "1628"


def _with_samples(trial, samples):
    return dataclasses.replace(
        trial, recording=trial.recording.with_samples(samples)
    )


@pytest.fixture()
def trial(study_data):
    return study_data.trials(0, PIN, "one_handed", 1)[0]


class TestApplyPolicy:
    def test_clean_trial_is_identity(self, trial, pipeline_config):
        prepared, events = apply_policy(trial, pipeline_config)
        assert prepared is trial
        assert events == ()

    def test_short_gap_repaired(self, trial, pipeline_config):
        samples = trial.recording.samples.copy()
        samples[:, 50:60] = np.nan  # 0.1 s at 100 Hz, inside the budget
        prepared, events = apply_policy(
            _with_samples(trial, samples), pipeline_config
        )
        assert np.all(np.isfinite(prepared.recording.samples))
        stages = [e.stage for e in events]
        assert "gap_repair" in stages

    def test_gap_beyond_budget_demoted_to_fallback(self, trial, pipeline_config):
        samples = trial.recording.samples.copy()
        samples[2, 100:180] = np.nan  # 0.8 s gap on one channel
        prepared, events = apply_policy(
            _with_samples(trial, samples), pipeline_config
        )
        # The oversized gap costs the channel, not the trial.
        assert np.all(np.isfinite(prepared.recording.samples))
        actions = [(e.stage, e.action) for e in events]
        assert ("gap_repair", "demoted") in actions
        assert ("channel_fallback", "imputed") in actions

    def test_gap_beyond_budget_raises_without_fallback(
        self, trial, pipeline_config
    ):
        samples = trial.recording.samples.copy()
        samples[2, 100:180] = np.nan
        policy = DegradationPolicy(channel_fallback=False)
        with pytest.raises(QualityError):
            apply_policy(_with_samples(trial, samples), pipeline_config, policy)

    def test_dead_channel_imputed(self, trial, pipeline_config):
        samples = trial.recording.samples.copy()
        samples[3] = np.nan
        prepared, events = apply_policy(
            _with_samples(trial, samples), pipeline_config
        )
        assert prepared.recording.samples.shape == trial.recording.samples.shape
        assert np.all(np.isfinite(prepared.recording.samples))
        assert any(e.stage == "channel_fallback" for e in events)
        # The gate confirms the repaired recording is usable.
        assert any(
            e.stage == "quality_gate" and e.action == "passed" for e in events
        )

    def test_all_channels_dead_raises(self, trial, pipeline_config):
        samples = np.full_like(trial.recording.samples, np.nan)
        with pytest.raises(QualityError):
            apply_policy(_with_samples(trial, samples), pipeline_config)

    def test_gate_rejects_flat_signal(self, trial, pipeline_config):
        samples = np.zeros_like(trial.recording.samples)
        with pytest.raises(QualityError):
            apply_policy(_with_samples(trial, samples), pipeline_config)

    def test_repair_disabled_leaves_nans(self, trial, pipeline_config):
        samples = trial.recording.samples.copy()
        samples[:, 50:60] = np.nan
        policy = DegradationPolicy(repair_gaps=False, gate=False)
        prepared, _ = apply_policy(
            _with_samples(trial, samples), pipeline_config, policy
        )
        assert np.isnan(prepared.recording.samples[:, 55]).all()


class TestAuthenticatorIntegration:
    def test_decision_carries_degradation_events(self, study_data):
        enroll = study_data.trials(0, PIN, "one_handed", 7)
        probe = study_data.trials(0, PIN, "one_handed", 8)[7]
        from repro.data import ThirdPartyStore

        store = ThirdPartyStore(study_data, [1, 2, 3], PIN)
        from repro.core import EnrollmentOptions

        auth = P2Auth(
            pin=PIN,
            options=EnrollmentOptions(num_features=840),
            policy=DegradationPolicy(),
        )
        auth.enroll(enroll, store.sample(18))

        clean = auth.authenticate(probe)
        assert clean.degradation == ()

        samples = probe.recording.samples.copy()
        samples[1] = np.nan
        damaged = _with_samples(probe, samples)
        decision = auth.authenticate(damaged)
        assert any(e.stage == "channel_fallback" for e in decision.degradation)

    def test_no_policy_preserves_prior_behaviour(self, enrolled_auth, trial):
        assert enrolled_auth.policy is None
        decision = enrolled_auth.authenticate(trial)
        assert decision.degradation == ()


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_base_s=1.0, backoff_factor=2.0, max_backoff_s=5.0
        )
        assert policy.backoff(0) == 0.0
        assert policy.backoff(1) == 1.0
        assert policy.backoff(2) == 2.0
        assert policy.backoff(4) == 5.0  # capped

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_failures=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base_s=-1.0)


class TestSessionRetryLadder:
    @pytest.fixture()
    def worn_session(self, enrolled_auth, study_data):
        from repro.physio.cardiac import synthesize_cardiac
        from repro.types import PPGRecording

        session = SessionManager(
            enrolled_auth,
            retry=RetryPolicy(max_failures=3, backoff_base_s=2.0),
        )
        user = study_data.user(0)
        generator = np.random.default_rng(0)
        cardiac = synthesize_cardiac(800, 100.0, user.cardiac, generator)
        samples = np.tile(cardiac, (4, 1)) + generator.normal(
            0, 0.15, size=(4, 800)
        )
        session.process_wear_check(PPGRecording(samples=samples, fs=100.0))
        assert session.state is SessionState.WORN
        return session

    def test_failures_back_off_then_lock(self, worn_session, study_data):
        imposter = study_data.trials(5, PIN, "one_handed", 1)[0]
        # Failure 1 at t=0: backoff until t=2.
        worn_session.submit_entry(imposter, now=0.0)
        assert worn_session.consecutive_failures == 1
        assert worn_session.retry_not_before == pytest.approx(2.0)
        # Retrying inside the window is refused without signal analysis.
        with pytest.raises(AuthenticationError):
            worn_session.submit_entry(imposter, now=1.0)
        # Failure 2 at t=3: backoff doubles.
        worn_session.submit_entry(imposter, now=3.0)
        assert worn_session.retry_not_before == pytest.approx(7.0)
        # Failure 3 locks the session.
        worn_session.submit_entry(imposter, now=8.0)
        assert worn_session.locked
        with pytest.raises(AuthenticationError):
            worn_session.submit_entry(imposter, now=100.0)
        kinds = [e.kind for e in worn_session.log]
        assert "backoff" in kinds
        assert "lockout" in kinds

    def test_quality_refusal_counts_as_failure(self, worn_session, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        garbage = _with_samples(
            trial, np.zeros_like(trial.recording.samples)
        )
        auth = worn_session._auth
        assert auth.policy is None  # fixture auth has no ladder...
        # ...so drive a policy-bearing session for the quality path.
        from repro.core import DegradationPolicy as DP

        with_policy = P2Auth(
            pin=PIN, options=auth.options, policy=DP()
        )
        with_policy._models = auth.models
        session = SessionManager(
            with_policy, retry=RetryPolicy(max_failures=2)
        )
        session._state = SessionState.WORN
        with pytest.raises(QualityError):
            session.submit_entry(garbage, now=0.0)
        assert session.consecutive_failures == 1
        kinds = [e.kind for e in session.log]
        assert "entry" in kinds

    def test_success_resets_ladder(self, worn_session, study_data):
        imposter = study_data.trials(5, PIN, "one_handed", 1)[0]
        worn_session.submit_entry(imposter, now=0.0)
        assert worn_session.consecutive_failures == 1
        for probe in study_data.trials(0, PIN, "one_handed", 12)[7:]:
            if worn_session.submit_entry(probe, now=1000.0).accepted:
                break
        if worn_session.authenticated:
            assert worn_session.consecutive_failures == 0
            assert worn_session.retry_not_before == 0.0

    def test_locked_sticky_through_wear_and_unlock(
        self, worn_session, study_data
    ):
        imposter = study_data.trials(5, PIN, "one_handed", 1)[0]
        for attempt, now in enumerate((0.0, 10.0, 100.0)):
            worn_session.submit_entry(imposter, now=now)
        assert worn_session.locked
        # Re-wearing the watch must not clear the lockout.
        generator = np.random.default_rng(1)
        from repro.types import PPGRecording

        worn_session.process_wear_check(
            PPGRecording(
                samples=generator.normal(0, 0.3, size=(4, 800)), fs=100.0
            )
        )
        assert worn_session.locked
        worn_session.unlock("password fallback")
        assert worn_session.state is SessionState.OFF_WRIST
        assert worn_session.consecutive_failures == 0
        assert any(e.kind == "unlock" for e in worn_session.log)

    def test_backwards_clock_cannot_reopen_backoff(
        self, worn_session, study_data
    ):
        """A stale ``now`` (clock adjustment, suspend skew) is clamped
        up to the last observed time: it can neither bypass an active
        backoff window nor rewind the ladder's timeline."""
        imposter = study_data.trials(5, PIN, "one_handed", 1)[0]
        # Failure at t=50: backoff until t=52.
        worn_session.submit_entry(imposter, now=50.0)
        assert worn_session.retry_not_before == pytest.approx(52.0)
        # A probe stamped "earlier" is still inside the window.
        with pytest.raises(AuthenticationError):
            worn_session.submit_entry(imposter, now=0.0)

    def test_non_finite_now_rejected(self, worn_session, study_data):
        """NaN compares False against every bound, so an unchecked NaN
        ``now`` would walk straight through the backoff guard and then
        poison ``retry_not_before`` for the rest of the session."""
        imposter = study_data.trials(5, PIN, "one_handed", 1)[0]
        worn_session.submit_entry(imposter, now=0.0)
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConfigurationError):
                worn_session.submit_entry(imposter, now=bad)
        # The rejected stamps left no trace on the ladder's clock.
        assert worn_session.retry_not_before == pytest.approx(2.0)
        assert worn_session.consecutive_failures == 1

    def test_multiday_session_clock_stays_bounded(
        self, worn_session, study_data
    ):
        """Over a long session with jittery wall-clock input the logical
        clock is monotone and the backoff horizon never runs further
        than ``max_backoff_s`` ahead of the submitted time."""
        imposter = study_data.trials(5, PIN, "one_handed", 1)[0]
        policy = worn_session._retry
        day = 86_400.0
        last_seen = 0.0
        for step, jitter in enumerate((0.0, -30.0, 12.0, -86_400.0)):
            now = (step + 1) * day + jitter
            try:
                worn_session.submit_entry(imposter, now=now)
            except AuthenticationError:
                pass
            if worn_session.locked:
                worn_session.unlock()
                worn_session._state = SessionState.WORN
            effective = max(now, last_seen)
            last_seen = max(last_seen, effective)
            assert worn_session._clock >= effective
            assert (
                worn_session.retry_not_before - effective
                <= policy.max_backoff_s
            )

    def test_no_retry_policy_never_locks(self, enrolled_auth, study_data):
        session = SessionManager(enrolled_auth)
        session._state = SessionState.WORN
        imposter = study_data.trials(5, PIN, "one_handed", 1)[0]
        for _ in range(6):
            session.submit_entry(imposter)
        assert not session.locked
        assert session.state is SessionState.WORN

    def test_degradation_events_logged(self, study_data):
        from repro.core import EnrollmentOptions
        from repro.data import ThirdPartyStore

        enroll = study_data.trials(0, PIN, "one_handed", 7)
        store = ThirdPartyStore(study_data, [1, 2, 3], PIN)
        auth = P2Auth(
            pin=PIN,
            options=EnrollmentOptions(num_features=840),
            policy=DegradationPolicy(),
        )
        auth.enroll(enroll, store.sample(18))
        session = SessionManager(auth)
        session._state = SessionState.WORN
        probe = study_data.trials(0, PIN, "one_handed", 8)[7]
        samples = probe.recording.samples.copy()
        samples[1] = np.nan
        session.submit_entry(_with_samples(probe, samples))
        assert any(e.kind == "degradation" for e in session.log)
