"""Unit tests for privacy-boost waveform fusion (Eq. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import fuse_waveforms
from repro.errors import SignalError
from repro.types import SegmentedKeystroke


def _segment(samples, key="1"):
    return SegmentedKeystroke(
        samples=samples, key=key, center_index=0, fs=100.0
    )


class TestFusion:
    def test_additive(self):
        a = _segment(np.ones((2, 10)))
        b = _segment(2.0 * np.ones((2, 10)), key="2")
        fused = fuse_waveforms([a, b])
        assert np.allclose(fused, 3.0)

    def test_single_segment_identity(self):
        a = _segment(np.random.default_rng(0).normal(size=(2, 10)))
        assert np.allclose(fuse_waveforms([a]), a.samples)

    def test_order_invariant(self):
        rng = np.random.default_rng(1)
        segs = [_segment(rng.normal(size=(2, 10)), key=k) for k in "1628"]
        assert np.allclose(fuse_waveforms(segs), fuse_waveforms(segs[::-1]))

    def test_empty_rejected(self):
        with pytest.raises(SignalError):
            fuse_waveforms([])

    def test_shape_mismatch_rejected(self):
        a = _segment(np.ones((2, 10)))
        b = _segment(np.ones((2, 12)), key="2")
        with pytest.raises(SignalError):
            fuse_waveforms([a, b])

    def test_fusion_hides_individual_waveforms(self):
        """The privacy argument: one cannot read a single keystroke's
        waveform off the fused template when others overlap it."""
        rng = np.random.default_rng(2)
        segs = [_segment(rng.normal(size=(1, 30)), key=k) for k in "1628"]
        fused = fuse_waveforms(segs)
        for seg in segs:
            assert not np.allclose(fused, seg.samples)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=2, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_linearity_property(self, count, window):
        rng = np.random.default_rng(count * 100 + window)
        arrays = [rng.normal(size=(2, window)) for _ in range(count)]
        segs = [_segment(a, key="5") for a in arrays]
        assert np.allclose(fuse_waveforms(segs), np.sum(arrays, axis=0))
