"""Unit tests for the packed registry backends (repro.core.backends).

Parametrized round-trips cover all three bundled backends; the
concurrency section exercises the protocol's promise that concurrent
store/load/delete of the *same* user id stays safe (any load sees
either a complete template or KeyError, never a torn read).
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import (
    EnrollmentOptions,
    NpzDirectoryBackend,
    P2Auth,
    PackedArenaBackend,
    ShardedPackedBackend,
    pack_authenticator,
)
from repro.data import ThirdPartyStore
from repro.errors import ConfigurationError

PIN = "1628"
FEATURES = 840

BACKENDS = {
    "npz": NpzDirectoryBackend,
    "sharded": ShardedPackedBackend,
    "arena": PackedArenaBackend,
}


@pytest.fixture(scope="module")
def alice(study_data):
    enroll = study_data.trials(0, PIN, "one_handed", 5)
    store = ThirdPartyStore(study_data, [1, 2, 3, 4], PIN)
    auth = P2Auth(pin=PIN, options=EnrollmentOptions(num_features=FEATURES))
    auth.enroll(enroll, store.sample(15))
    return auth


@pytest.fixture(scope="module")
def battery(study_data):
    legit = study_data.trials(0, PIN, "one_handed", 7)[5:7]
    two_handed = study_data.trials(0, PIN, "double3", 1)
    attack = study_data.emulating_trials(4, 0, PIN, 1)
    probes = [(t, None) for t in legit + two_handed + attack]
    probes.append((legit[0], "0000"))
    return probes


def _make(kind, root):
    return BACKENDS[kind](root)


@pytest.mark.parametrize("kind", sorted(BACKENDS))
class TestProtocolRoundTrip:
    def test_round_trip_preserves_battery_decisions(
        self, kind, alice, battery, tmp_path
    ):
        backend = _make(kind, tmp_path)
        backend.store("alice", alice)
        reloaded = backend.load("alice")
        for trial, pin in battery:
            ref = alice.authenticate(trial, claimed_pin=pin)
            got = reloaded.authenticate(trial, claimed_pin=pin)
            assert got.accepted == ref.accepted
            assert got.input_case == ref.input_case
            assert got.pin_ok == ref.pin_ok

    def test_membership_surface(self, kind, alice, tmp_path):
        backend = _make(kind, tmp_path)
        assert backend.user_ids() == []
        assert not backend.exists("alice")
        assert "alice" not in backend
        backend.store("alice", alice)
        backend.store("bob", alice)
        assert backend.user_ids() == ["alice", "bob"]
        assert backend.exists("alice") and "bob" in backend
        assert not backend.exists("nobody")
        # Ids the store path would reject are simply absent.
        assert not backend.exists("no spaces")

    def test_delete_then_load_raises_key_error(self, kind, alice, tmp_path):
        backend = _make(kind, tmp_path)
        backend.store("alice", alice)
        backend.delete("alice")
        backend.delete("alice")  # idempotent
        assert backend.user_ids() == []
        with pytest.raises(KeyError):
            backend.load("alice")

    def test_missing_user_raises_key_error(self, kind, tmp_path):
        with pytest.raises(KeyError):
            _make(kind, tmp_path).load("ghost")

    def test_restore_supersedes(self, kind, alice, tmp_path):
        backend = _make(kind, tmp_path)
        backend.store("alice", alice)
        backend.store("alice", alice)
        assert backend.user_ids() == ["alice"]
        assert backend.load("alice").enrolled

    def test_reopen_sees_stored_users(self, kind, alice, tmp_path):
        first = _make(kind, tmp_path)
        first.store("alice", alice)
        if hasattr(first, "close"):
            first.close()
        second = _make(kind, tmp_path)
        assert second.user_ids() == ["alice"]
        assert second.load("alice").enrolled


@pytest.mark.parametrize("kind", sorted(BACKENDS))
class TestSameIdConcurrency:
    """The protocol docstring's concurrency promise, exercised."""

    def test_concurrent_store_load_delete_same_id(
        self, kind, alice, study_data, tmp_path
    ):
        backend = _make(kind, tmp_path)
        backend.store("shared", alice)
        probe = study_data.trials(0, PIN, "one_handed", 7)[6]
        ref = alice.authenticate(probe)
        errors = []
        barrier = threading.Barrier(6)

        def worker(role):
            barrier.wait()
            try:
                for _ in range(8):
                    if role % 3 == 0:
                        backend.store("shared", alice)
                    elif role % 3 == 1:
                        try:
                            loaded = backend.load("shared")
                        except KeyError:
                            continue  # deleted concurrently: allowed
                        got = loaded.authenticate(probe)
                        assert got.accepted == ref.accepted
                        np.testing.assert_allclose(
                            got.scores, ref.scores, rtol=0, atol=1e-5
                        )
                    else:
                        backend.delete("shared")
                        backend.exists("shared")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(worker, range(6)))
        assert errors == []
        # The backend is still consistent: a final store round-trips.
        backend.store("shared", alice)
        assert backend.load("shared").enrolled


class TestShardedLayout:
    def test_manifest_pins_shards_and_dtype(self, alice, tmp_path):
        first = ShardedPackedBackend(tmp_path, n_shards=8, dtype="float16")
        first.store("alice", alice)
        # Reopen with different constructor args: the manifest wins, so
        # the shard of an existing user never moves.
        second = ShardedPackedBackend(tmp_path, n_shards=64, dtype="float64")
        assert second.n_shards == 8
        assert second.dtype == "float16"
        assert second.load("alice").enrolled

    def test_extractors_written_once(self, alice, tmp_path):
        backend = ShardedPackedBackend(tmp_path)
        packed = pack_authenticator(alice, dtype="float32")
        for user in ("u1", "u2", "u3"):
            backend.store_packed(user, packed)
        blobs = list((tmp_path / "extractors").glob("*.p2x"))
        assert len(blobs) == len(packed.extractors)
        records = list(tmp_path.glob("shards/*/*.p2u"))
        assert len(records) == 3

    def test_invalid_config_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ShardedPackedBackend(tmp_path / "a", n_shards=0)
        with pytest.raises(ConfigurationError):
            ShardedPackedBackend(tmp_path / "b", dtype="int8")


class TestArenaLifecycle:
    def test_tombstone_survives_reopen(self, alice, tmp_path):
        backend = PackedArenaBackend(tmp_path)
        backend.store("alice", alice)
        backend.store("bob", alice)
        backend.delete("alice")
        backend.close()
        reopened = PackedArenaBackend(tmp_path)
        assert reopened.user_ids() == ["bob"]
        with pytest.raises(KeyError):
            reopened.load("alice")

    def test_compact_reclaims_and_preserves(self, alice, study_data, tmp_path):
        backend = PackedArenaBackend(tmp_path)
        backend.store("alice", alice)
        backend.store("alice", alice)  # superseded copy = garbage
        backend.store("bob", alice)
        backend.delete("bob")  # tombstone + garbage
        before = backend.size_bytes()
        probe = study_data.trials(0, PIN, "one_handed", 7)[6]
        ref = backend.load("alice").authenticate(probe)
        freed = backend.compact()
        assert freed > 0
        assert backend.size_bytes() == before - freed
        assert backend.user_ids() == ["alice"]
        got = backend.load("alice").authenticate(probe)
        assert got.accepted == ref.accepted
        assert got.scores == ref.scores

    def test_compact_drops_unreferenced_extractors(self, alice, tmp_path):
        backend = PackedArenaBackend(tmp_path)
        backend.store("alice", alice)
        backend.delete("alice")
        backend.compact()
        assert backend.size_bytes() == 0
        backend.close()
        assert PackedArenaBackend(tmp_path).user_ids() == []

    def test_truncated_tail_is_dropped(self, alice, tmp_path):
        backend = PackedArenaBackend(tmp_path)
        backend.store("alice", alice)
        backend.store("bob", alice)
        backend.close()
        arena = tmp_path / "arena.bin"
        arena.write_bytes(arena.read_bytes()[:-20])  # crash mid-append
        reopened = PackedArenaBackend(tmp_path)
        assert reopened.user_ids() == ["alice"]
        assert reopened.load("alice").enrolled
        # Appends restart cleanly at the truncation point.
        reopened.store("carol", alice)
        assert reopened.user_ids() == ["alice", "carol"]

    def test_invalid_dtype_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            PackedArenaBackend(tmp_path, dtype="int8")
