"""Unit tests for the session state machine."""

import numpy as np
import pytest

from repro.core import P2Auth
from repro.core.session import SessionManager, SessionState
from repro.errors import AuthenticationError
from repro.physio.cardiac import synthesize_cardiac
from repro.types import PPGRecording

PIN = "1628"


@pytest.fixture()
def session(enrolled_auth):
    return SessionManager(enrolled_auth)


@pytest.fixture(scope="module")
def worn_recording(study_data, rng=None):
    user = study_data.user(0)
    generator = np.random.default_rng(0)
    cardiac = synthesize_cardiac(800, 100.0, user.cardiac, generator)
    samples = np.tile(cardiac, (4, 1)) + generator.normal(0, 0.15, size=(4, 800))
    return PPGRecording(samples=samples, fs=100.0)


@pytest.fixture(scope="module")
def off_recording():
    generator = np.random.default_rng(1)
    return PPGRecording(
        samples=generator.normal(0, 0.3, size=(4, 800)), fs=100.0
    )


class TestLifecycle:
    def test_starts_off_wrist(self, session):
        assert session.state is SessionState.OFF_WRIST
        assert not session.authenticated

    def test_requires_enrolled_auth(self):
        with pytest.raises(AuthenticationError):
            SessionManager(P2Auth(pin=PIN))

    def test_wear_gain_transitions_to_worn(self, session, worn_recording):
        status = session.process_wear_check(worn_recording)
        assert status.worn
        assert session.state is SessionState.WORN

    def test_entry_off_wrist_rejected_outright(self, session, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        with pytest.raises(AuthenticationError):
            session.submit_entry(trial)

    def test_accepted_entry_authenticates(
        self, session, worn_recording, study_data
    ):
        session.process_wear_check(worn_recording)
        trial = study_data.trials(0, PIN, "one_handed", 10)[8]
        decision = session.submit_entry(trial)
        if decision.accepted:
            assert session.state is SessionState.AUTHENTICATED

    def test_wear_loss_ends_authenticated_session(
        self, session, worn_recording, off_recording, study_data
    ):
        session.process_wear_check(worn_recording)
        trial = study_data.trials(0, PIN, "one_handed", 10)[9]
        session.submit_entry(trial)
        session.process_wear_check(off_recording)
        assert session.state is SessionState.OFF_WRIST
        assert not session.authenticated

    def test_reauth_demotes_to_worn(self, session, worn_recording, study_data):
        session.process_wear_check(worn_recording)
        # Force authenticated state via an accepted entry (retry a few).
        for trial in study_data.trials(0, PIN, "one_handed", 12)[7:]:
            if session.submit_entry(trial).accepted:
                break
        if session.state is SessionState.AUTHENTICATED:
            session.require_reauth("payment")
            assert session.state is SessionState.WORN

    def test_rejected_entry_does_not_authenticate(
        self, session, worn_recording, study_data
    ):
        session.process_wear_check(worn_recording)
        imposter_trial = study_data.trials(5, PIN, "one_handed", 1)[0]
        decision = session.submit_entry(imposter_trial)
        assert not decision.accepted
        assert session.state is SessionState.WORN

    def test_log_records_events(self, session, worn_recording, study_data):
        session.process_wear_check(worn_recording)
        trial = study_data.trials(0, PIN, "one_handed", 8)[7]
        session.submit_entry(trial)
        kinds = [event.kind for event in session.log]
        assert "wear_check" in kinds
        assert "entry" in kinds
