"""Unit tests for the session state machine."""

import numpy as np
import pytest

from repro.core import P2Auth
from repro.core.session import SessionManager, SessionState
from repro.errors import AuthenticationError
from repro.physio.cardiac import synthesize_cardiac
from repro.types import PPGRecording

PIN = "1628"


@pytest.fixture()
def session(enrolled_auth):
    return SessionManager(enrolled_auth)


@pytest.fixture(scope="module")
def worn_recording(study_data, rng=None):
    user = study_data.user(0)
    generator = np.random.default_rng(0)
    cardiac = synthesize_cardiac(800, 100.0, user.cardiac, generator)
    samples = np.tile(cardiac, (4, 1)) + generator.normal(0, 0.15, size=(4, 800))
    return PPGRecording(samples=samples, fs=100.0)


@pytest.fixture(scope="module")
def off_recording():
    generator = np.random.default_rng(1)
    return PPGRecording(
        samples=generator.normal(0, 0.3, size=(4, 800)), fs=100.0
    )


class TestLifecycle:
    def test_starts_off_wrist(self, session):
        assert session.state is SessionState.OFF_WRIST
        assert not session.authenticated

    def test_requires_enrolled_auth(self):
        with pytest.raises(AuthenticationError):
            SessionManager(P2Auth(pin=PIN))

    def test_wear_gain_transitions_to_worn(self, session, worn_recording):
        status = session.process_wear_check(worn_recording)
        assert status.worn
        assert session.state is SessionState.WORN

    def test_entry_off_wrist_rejected_outright(self, session, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        with pytest.raises(AuthenticationError):
            session.submit_entry(trial)

    def test_accepted_entry_authenticates(
        self, session, worn_recording, study_data
    ):
        session.process_wear_check(worn_recording)
        trial = study_data.trials(0, PIN, "one_handed", 10)[8]
        decision = session.submit_entry(trial)
        if decision.accepted:
            assert session.state is SessionState.AUTHENTICATED

    def test_wear_loss_ends_authenticated_session(
        self, session, worn_recording, off_recording, study_data
    ):
        session.process_wear_check(worn_recording)
        trial = study_data.trials(0, PIN, "one_handed", 10)[9]
        session.submit_entry(trial)
        session.process_wear_check(off_recording)
        assert session.state is SessionState.OFF_WRIST
        assert not session.authenticated

    def test_reauth_demotes_to_worn(self, session, worn_recording, study_data):
        session.process_wear_check(worn_recording)
        # Force authenticated state via an accepted entry (retry a few).
        for trial in study_data.trials(0, PIN, "one_handed", 12)[7:]:
            if session.submit_entry(trial).accepted:
                break
        if session.state is SessionState.AUTHENTICATED:
            session.require_reauth("payment")
            assert session.state is SessionState.WORN

    def test_rejected_entry_does_not_authenticate(
        self, session, worn_recording, study_data
    ):
        session.process_wear_check(worn_recording)
        imposter_trial = study_data.trials(5, PIN, "one_handed", 1)[0]
        decision = session.submit_entry(imposter_trial)
        assert not decision.accepted
        assert session.state is SessionState.WORN

    def test_log_records_events(self, session, worn_recording, study_data):
        session.process_wear_check(worn_recording)
        trial = study_data.trials(0, PIN, "one_handed", 8)[7]
        session.submit_entry(trial)
        kinds = [event.kind for event in session.log]
        assert "wear_check" in kinds
        assert "entry" in kinds


class TestAssumeWorn:
    def test_off_wrist_transitions_to_worn(self, session):
        session.assume_worn("device attestation")
        assert session.state is SessionState.WORN
        assert any(
            e.kind == "wear_check" and "assumed worn" in e.detail
            for e in session.log
        )

    def test_noop_outside_off_wrist(self, enrolled_auth, study_data):
        from repro.core.session import RetryPolicy

        session = SessionManager(
            enrolled_auth, retry=RetryPolicy(max_failures=1)
        )
        session.assume_worn()
        imposter = study_data.trials(5, PIN, "one_handed", 1)[0]
        session.submit_entry(imposter, now=0.0)
        assert session.locked
        session.assume_worn()  # must not bypass the ladder
        assert session.state is SessionState.LOCKED


class TestLockoutStatusQuery:
    @pytest.fixture()
    def worn_session(self, enrolled_auth):
        from repro.core.session import RetryPolicy

        session = SessionManager(
            enrolled_auth,
            retry=RetryPolicy(max_failures=3, backoff_base_s=2.0),
        )
        session.assume_worn()
        return session

    def test_fresh_session_is_clear(self, worn_session):
        status = worn_session.lockout_status()
        assert not status.locked
        assert status.failures == 0
        assert status.max_failures == 3
        assert status.retry_after_s == 0.0

    def test_no_policy_means_unlimited(self, session):
        status = session.lockout_status()
        assert status.max_failures is None
        assert status.retry_after_s == 0.0

    def test_backoff_counts_down_with_now(self, worn_session, study_data):
        imposter = study_data.trials(5, PIN, "one_handed", 1)[0]
        worn_session.submit_entry(imposter, now=0.0)
        status = worn_session.lockout_status(now=0.5)
        assert status.failures == 1
        assert status.not_before == pytest.approx(2.0)
        assert status.retry_after_s == pytest.approx(1.5)
        assert worn_session.lockout_status(now=10.0).retry_after_s == 0.0

    def test_query_is_pure(self, worn_session, study_data):
        imposter = study_data.trials(5, PIN, "one_handed", 1)[0]
        worn_session.submit_entry(imposter, now=0.0)
        before = worn_session.lockout_status(now=1.0)
        # A far-future query must not advance the session watermark.
        worn_session.lockout_status(now=1e6)
        after = worn_session.lockout_status(now=1.0)
        assert before == after
        assert worn_session.retry_not_before == pytest.approx(2.0)

    def test_locked_reports_infinite_retry_after(
        self, worn_session, study_data
    ):
        import math

        imposter = study_data.trials(5, PIN, "one_handed", 1)[0]
        for t in (0.0, 10.0, 20.0):
            worn_session.submit_entry(imposter, now=t)
        assert worn_session.locked
        status = worn_session.lockout_status()
        assert status.locked
        assert math.isinf(status.retry_after_s)

    def test_non_finite_now_rejected(self, worn_session):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            worn_session.lockout_status(now=float("nan"))

    def test_typed_backoff_and_lockout_errors(
        self, worn_session, study_data
    ):
        from repro.errors import BackoffError, LockoutError

        imposter = study_data.trials(5, PIN, "one_handed", 1)[0]
        worn_session.submit_entry(imposter, now=0.0)
        with pytest.raises(BackoffError) as excinfo:
            worn_session.submit_entry(imposter, now=0.5)
        assert excinfo.value.retry_after_s == pytest.approx(1.5)
        for t in (10.0, 20.0):
            worn_session.submit_entry(imposter, now=t)
        with pytest.raises(LockoutError):
            worn_session.submit_entry(imposter, now=100.0)


class TestRestoreLockout:
    @pytest.fixture()
    def retry(self):
        from repro.core.session import RetryPolicy

        return RetryPolicy(max_failures=3, backoff_base_s=2.0)

    def test_ladder_survives_snapshot_round_trip(
        self, enrolled_auth, study_data, retry
    ):
        from repro.errors import BackoffError

        first = SessionManager(enrolled_auth, retry=retry)
        first.assume_worn()
        imposter = study_data.trials(5, PIN, "one_handed", 1)[0]
        first.submit_entry(imposter, now=0.0)
        snapshot = first.lockout_status()

        second = SessionManager(enrolled_auth, retry=retry)
        second.restore_lockout(snapshot)
        second.assume_worn()
        assert second.lockout_status() == snapshot
        with pytest.raises(BackoffError):
            second.submit_entry(imposter, now=0.5)

    def test_locked_snapshot_locks_the_session(
        self, enrolled_auth, study_data, retry
    ):
        from repro.errors import LockoutError

        first = SessionManager(enrolled_auth, retry=retry)
        first.assume_worn()
        imposter = study_data.trials(5, PIN, "one_handed", 1)[0]
        for t in (0.0, 10.0, 20.0):
            first.submit_entry(imposter, now=t)
        assert first.locked

        second = SessionManager(enrolled_auth, retry=retry)
        second.restore_lockout(first.lockout_status())
        assert second.locked
        with pytest.raises(LockoutError):
            second.submit_entry(imposter, now=100.0)
        second.unlock()
        assert second.state is SessionState.OFF_WRIST

    def test_invalid_snapshots_rejected(self, enrolled_auth, retry):
        from repro.core.session import LockoutStatus
        from repro.errors import ConfigurationError

        session = SessionManager(enrolled_auth, retry=retry)
        with pytest.raises(ConfigurationError):
            session.restore_lockout(
                LockoutStatus(
                    locked=False,
                    failures=-1,
                    max_failures=3,
                    not_before=0.0,
                    retry_after_s=0.0,
                )
            )
        with pytest.raises(ConfigurationError):
            session.restore_lockout(
                LockoutStatus(
                    locked=False,
                    failures=0,
                    max_failures=3,
                    not_before=float("inf"),
                    retry_after_s=0.0,
                )
            )
