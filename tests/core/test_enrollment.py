"""Unit tests for the enrollment phase."""

import numpy as np
import pytest

from repro.core import (
    EnrollmentOptions,
    WaveformModel,
    enroll_models,
    extract_full_waveform,
    extract_fused_waveform,
    extract_segments,
    preprocess_trial,
)
from repro.core.enrollment import fixed_window
from repro.data import StudyData, ThirdPartyStore
from repro.errors import EnrollmentError, NotFittedError
from repro.ml import KNNClassifier

PIN = "1628"
FEATURES = 840


@pytest.fixture(scope="module")
def data():
    return StudyData(n_users=6, seed=9)


@pytest.fixture(scope="module")
def enroll_trials(data):
    return data.trials(0, PIN, "one_handed", 6)


@pytest.fixture(scope="module")
def third_trials(data):
    return ThirdPartyStore(data, [1, 2, 3], PIN).sample(18)


@pytest.fixture(scope="module")
def models(enroll_trials, third_trials):
    return enroll_models(
        enroll_trials,
        third_trials,
        options=EnrollmentOptions(num_features=FEATURES, privacy_boost=True),
    )


class TestFixedWindow:
    def test_plain_cut(self):
        x = np.arange(100.0)[np.newaxis, :]
        out = fixed_window(x, 10, 20)
        assert out.shape == (1, 20)
        assert out[0, 0] == 10.0

    def test_edge_padding(self):
        x = np.arange(10.0)[np.newaxis, :]
        out = fixed_window(x, 5, 10)
        assert out.shape == (1, 10)
        assert np.all(out[0, 5:] == 9.0)

    def test_negative_start_clamped(self):
        x = np.arange(50.0)[np.newaxis, :]
        out = fixed_window(x, -10, 20)
        assert out[0, 0] == 0.0


class TestExtraction:
    def test_full_waveform_shape(self, enroll_trials, pipeline_config):
        pre = preprocess_trial(enroll_trials[0], pipeline_config)
        wf = extract_full_waveform(pre, window=480, margin=45)
        assert wf.shape == (4, 480)

    def test_segments_one_per_detected_keystroke(
        self, enroll_trials, pipeline_config
    ):
        pre = preprocess_trial(enroll_trials[0], pipeline_config)
        segments = extract_segments(pre, pipeline_config)
        assert len(segments) == pre.detected_count
        for segment in segments:
            assert segment.samples.shape == (4, pipeline_config.segment_window)

    def test_fused_waveform_is_sum_of_segments(
        self, enroll_trials, pipeline_config
    ):
        pre = preprocess_trial(enroll_trials[0], pipeline_config)
        segments = extract_segments(pre, pipeline_config)
        fused = extract_fused_waveform(pre, pipeline_config)
        assert np.allclose(fused, np.sum([s.samples for s in segments], axis=0))


class TestWaveformModel:
    def test_fit_and_score(self, enroll_trials, third_trials, pipeline_config):
        pos = np.stack(
            [
                extract_full_waveform(preprocess_trial(t, pipeline_config))
                for t in enroll_trials
            ]
        )
        neg = np.stack(
            [
                extract_full_waveform(preprocess_trial(t, pipeline_config))
                for t in third_trials
            ]
        )
        model = WaveformModel(num_features=FEATURES).fit(pos, neg)
        assert model.accepts(pos[0])
        scores = model.decision_function(neg)
        assert scores.mean() < 0.0

    def test_custom_classifier_factory(self, enroll_trials, third_trials, pipeline_config):
        pos = np.stack(
            [
                extract_full_waveform(preprocess_trial(t, pipeline_config))
                for t in enroll_trials[:4]
            ]
        )
        neg = np.stack(
            [
                extract_full_waveform(preprocess_trial(t, pipeline_config))
                for t in third_trials[:8]
            ]
        )
        model = WaveformModel(
            num_features=FEATURES, classifier_factory=lambda: KNNClassifier(3)
        ).fit(pos, neg)
        assert isinstance(model.accepts(pos[0]), bool)

    def test_unfitted_rejected(self):
        model = WaveformModel(num_features=FEATURES)
        with pytest.raises(NotFittedError):
            model.decision_function(np.zeros((4, 480)))

    def test_bad_training_shapes(self):
        model = WaveformModel(num_features=FEATURES)
        with pytest.raises(EnrollmentError):
            model.fit(np.zeros((3, 480)), np.zeros((3, 4, 480)))
        with pytest.raises(EnrollmentError):
            model.fit(np.zeros((0, 4, 480)), np.zeros((3, 4, 480)))

    def test_unknown_feature_method(self):
        with pytest.raises(EnrollmentError):
            WaveformModel(feature_method="wavelets")


class TestEnrollModels:
    def test_all_models_present(self, models):
        assert models.full_model is not None
        assert models.fused_model is not None
        assert set(models.keys_enrolled) == set(PIN)

    def test_key_models_match_enrolled_keys(self, models):
        assert set(models.key_models) == set(PIN)

    def test_no_legit_trials_rejected(self, third_trials):
        with pytest.raises(EnrollmentError):
            enroll_models([], third_trials)

    def test_no_third_party_rejected(self, enroll_trials):
        with pytest.raises(EnrollmentError):
            enroll_models(enroll_trials, [])

    def test_no_boost_means_no_fused_model(self, enroll_trials, third_trials):
        models = enroll_models(
            enroll_trials,
            third_trials,
            options=EnrollmentOptions(num_features=FEATURES),
        )
        assert models.fused_model is None

    def test_options_validation(self):
        with pytest.raises(EnrollmentError):
            EnrollmentOptions(feature_method="wavelets")
        with pytest.raises(EnrollmentError):
            EnrollmentOptions(full_window=2)
        with pytest.raises(EnrollmentError):
            EnrollmentOptions(min_positive_samples=0)


class TestSharedNegatives:
    @pytest.fixture(scope="class")
    def options(self):
        return EnrollmentOptions(num_features=FEATURES)

    @pytest.fixture(scope="class")
    def bank(self, third_trials, options):
        from repro.core import build_negative_bank

        return build_negative_bank(third_trials, options=options)

    @pytest.fixture(scope="class")
    def shared_models(self, enroll_trials, third_trials, bank, options):
        return enroll_models(
            enroll_trials, third_trials, options=options, shared_negatives=bank
        )

    def test_bank_structure(self, bank, third_trials):
        assert bank.full.features.shape[0] == len(third_trials)
        assert bank.full.extractor is not None
        assert bank.key_fallback is not None
        for shared in bank.key_sets.values():
            assert shared.features.shape[0] >= 10

    def test_same_models_trained_as_unshared(
        self, shared_models, models
    ):
        assert (shared_models.full_model is None) == (models.full_model is None)
        assert shared_models.keys_enrolled == models.keys_enrolled

    def test_shared_models_authenticate(
        self, shared_models, data, enroll_trials, options
    ):
        probe = preprocess_trial(data.trials(0, PIN, "one_handed", 7)[-1])
        waveform = extract_full_waveform(probe)
        assert shared_models.full_model is not None
        # The victim's own entry scores higher than another user's.
        other = preprocess_trial(data.trials(4, PIN, "one_handed", 1)[0])
        other_waveform = extract_full_waveform(other)
        own = shared_models.full_model.decision_function(waveform)[0]
        foreign = shared_models.full_model.decision_function(other_waveform)[0]
        assert own > foreign

    def test_enroll_without_store_trials(self, enroll_trials, bank, options):
        """A bank replaces the raw store trials entirely."""
        shared = enroll_models(
            enroll_trials, [], options=options, shared_negatives=bank
        )
        assert shared.full_model is not None

    def test_deterministic(self, enroll_trials, bank, options, data):
        a = enroll_models(
            enroll_trials, [], options=options, shared_negatives=bank
        )
        b = enroll_models(
            enroll_trials, [], options=options, shared_negatives=bank
        )
        probe = preprocess_trial(data.trials(5, PIN, "one_handed", 1)[0])
        waveform = extract_full_waveform(probe)
        assert np.array_equal(
            a.full_model.decision_function(waveform),
            b.full_model.decision_function(waveform),
        )

    def test_incompatible_options_rejected(self, enroll_trials, bank):
        with pytest.raises(EnrollmentError):
            enroll_models(
                enroll_trials,
                [],
                options=EnrollmentOptions(num_features=FEATURES * 2),
                shared_negatives=bank,
            )

    def test_incompatible_config_rejected(self, enroll_trials, bank, options):
        from repro.config import PipelineConfig

        with pytest.raises(EnrollmentError):
            enroll_models(
                enroll_trials,
                [],
                config=PipelineConfig(detrend_lambda=5.0),
                options=options,
                shared_negatives=bank,
            )

    def test_manual_method_cannot_build_bank(self, third_trials):
        from repro.core import build_negative_bank

        with pytest.raises(EnrollmentError):
            build_negative_bank(
                third_trials,
                options=EnrollmentOptions(feature_method="manual"),
            )

    def test_fit_shared_requires_matching_method(self, bank):
        model = WaveformModel(feature_method="raw")
        with pytest.raises(EnrollmentError):
            model.fit_shared(np.zeros((2, 4, 90)), bank.full)

    def test_raw_method_bank(self, third_trials, enroll_trials):
        from repro.core import build_negative_bank

        options = EnrollmentOptions(
            feature_method="raw", classifier_factory=KNNClassifier
        )
        bank = build_negative_bank(third_trials, options=options)
        assert bank.full.extractor is None
        shared = enroll_models(
            enroll_trials, [], options=options, shared_negatives=bank
        )
        assert shared.full_model is not None


class TestEnrollmentQualityGate:
    def test_clean_trials_pass_default_gate(self, enroll_trials, third_trials):
        models = enroll_models(
            enroll_trials,
            third_trials,
            options=EnrollmentOptions(num_features=FEATURES),
        )
        assert models.options.quality_gate
        assert models.full_model is not None

    def test_flat_trial_rejected_with_typed_error(
        self, enroll_trials, third_trials
    ):
        import dataclasses

        flat = dataclasses.replace(
            enroll_trials[2],
            recording=enroll_trials[2].recording.with_samples(
                np.zeros_like(enroll_trials[2].recording.samples)
            ),
        )
        trials = list(enroll_trials)
        trials[2] = flat
        with pytest.raises(EnrollmentError, match="trial 2"):
            enroll_models(
                trials,
                third_trials,
                options=EnrollmentOptions(num_features=FEATURES),
            )

    def test_nan_trial_rejected_with_typed_error(
        self, enroll_trials, third_trials
    ):
        import dataclasses

        samples = enroll_trials[0].recording.samples.copy()
        samples[1, 40:200] = np.nan
        damaged = dataclasses.replace(
            enroll_trials[0],
            recording=enroll_trials[0].recording.with_samples(samples),
        )
        trials = [damaged] + list(enroll_trials[1:])
        with pytest.raises(EnrollmentError, match="non-finite"):
            enroll_models(
                trials,
                third_trials,
                options=EnrollmentOptions(num_features=FEATURES),
            )

    def test_gate_can_be_disabled(self, enroll_trials, third_trials):
        import dataclasses

        flat = dataclasses.replace(
            enroll_trials[2],
            recording=enroll_trials[2].recording.with_samples(
                np.zeros_like(enroll_trials[2].recording.samples)
            ),
        )
        trials = list(enroll_trials)
        trials[2] = flat
        # With the gate off, the old train-on-anything behaviour returns
        # (segmentation may still skip the unusable trial downstream).
        models = enroll_models(
            trials,
            third_trials,
            options=EnrollmentOptions(num_features=FEATURES, quality_gate=False),
        )
        assert models.full_model is not None
