"""WaveformModel across its three feature methods.

The Fig. 11/15 comparisons hinge on WaveformModel behaving uniformly
whether it extracts MiniRocket features, manual statistical+DTW
features, or hands the raw series to a neural classifier.
"""

import numpy as np
import pytest

from repro.core import WaveformModel
from repro.ml import KNNClassifier, ResNet1DClassifier, RNNFNNClassifier


@pytest.fixture(scope="module")
def task():
    rng = np.random.default_rng(0)
    t = np.linspace(0, 6.28, 120)

    def batch(freq, n):
        return np.stack(
            [
                np.stack(
                    [np.sin(freq * t + rng.uniform(0, 6))
                     + 0.15 * rng.normal(size=t.size) for _ in range(2)]
                )
                for _ in range(n)
            ]
        )

    return {
        "pos": batch(2.0, 10),
        "neg": batch(3.2, 20),
        "pos_test": batch(2.0, 6),
        "neg_test": batch(3.2, 6),
    }


class TestFeatureMethods:
    @pytest.mark.parametrize("method", ["rocket", "manual"])
    def test_separates_simple_task(self, task, method):
        model = WaveformModel(feature_method=method, num_features=840)
        model.fit(task["pos"], task["neg"])
        pos_scores = model.decision_function(task["pos_test"])
        neg_scores = model.decision_function(task["neg_test"])
        assert pos_scores.mean() > neg_scores.mean()

    def test_raw_method_with_resnet(self, task):
        model = WaveformModel(
            feature_method="raw",
            classifier_factory=lambda: ResNet1DClassifier(epochs=40),
        )
        model.fit(task["pos"], task["neg"])
        assert (
            model.decision_function(task["pos_test"]).mean()
            > model.decision_function(task["neg_test"]).mean()
        )

    def test_raw_method_with_rnn(self, task):
        model = WaveformModel(
            feature_method="raw",
            classifier_factory=lambda: RNNFNNClassifier(epochs=60),
        )
        model.fit(task["pos"], task["neg"])
        assert (
            model.decision_function(task["pos_test"]).mean()
            > model.decision_function(task["neg_test"]).mean()
        )

    def test_balanced_fallback_for_weightless_classifier(self, task):
        """balanced=True with a classifier lacking sample_weight support
        must silently fall back, not crash (KNN has no weights)."""
        model = WaveformModel(
            feature_method="rocket",
            num_features=840,
            classifier_factory=lambda: KNNClassifier(3),
            balanced=True,
        )
        model.fit(task["pos"], task["neg"])
        assert isinstance(model.accepts(task["pos_test"][0]), bool)

    def test_single_waveform_and_batch_agree(self, task):
        model = WaveformModel(feature_method="rocket", num_features=840)
        model.fit(task["pos"], task["neg"])
        single = model.decision_function(task["pos_test"][0])
        batch = model.decision_function(task["pos_test"])
        assert single[0] == pytest.approx(batch[0])
