"""Unit tests for the streaming keystroke detector."""

import numpy as np
import pytest

from repro.core import StreamingKeystrokeDetector
from repro.errors import ConfigurationError, SignalError


def _run(detector, samples, chunk=25):
    events = []
    for start in range(0, samples.shape[1], chunk):
        events.extend(detector.push(samples[:, start : start + chunk]))
    events.extend(detector.flush())
    return events


class TestConstruction:
    def test_invalid_fs(self):
        with pytest.raises(ConfigurationError):
            StreamingKeystrokeDetector(fs=0.0)

    def test_invalid_time_constants(self):
        with pytest.raises(ConfigurationError):
            StreamingKeystrokeDetector(fs=100.0, refractory=0.0)

    def test_window_scales_with_rate(self):
        full = StreamingKeystrokeDetector(fs=100.0)
        half = StreamingKeystrokeDetector(fs=50.0)
        assert half.window == full.window // 2


class TestDetection:
    def test_detects_most_keystrokes(self, population, synthesizer):
        rng = np.random.default_rng(31)
        matched_total, true_total, false_total = 0, 0, 0
        for rep in range(8):
            trial = synthesizer.synthesize_trial(
                population[rep % 4], "1628", rng
            )
            detector = StreamingKeystrokeDetector(fs=trial.recording.fs)
            events = _run(detector, trial.recording.samples)
            true_times = [e.true_time for e in trial.events]
            matched_total += sum(
                1
                for t in true_times
                if any(abs(ev.time - t) < 0.35 for ev in events)
            )
            false_total += sum(
                1
                for ev in events
                if not any(abs(ev.time - t) < 0.35 for t in true_times)
            )
            true_total += len(true_times)
        assert matched_total / true_total >= 0.8
        assert false_total / 8 <= 3.0

    def test_quiet_stream_emits_nothing_catastrophic(self, rng):
        detector = StreamingKeystrokeDetector(fs=100.0)
        noise = rng.normal(0.0, 0.1, size=(4, 1000))
        events = _run(detector, noise)
        # Noise-only: no more than sporadic false alarms.
        assert len(events) <= 4

    def test_events_are_ordered_and_spaced(self, population, synthesizer):
        rng = np.random.default_rng(8)
        trial = synthesizer.synthesize_trial(population[0], "1628", rng)
        detector = StreamingKeystrokeDetector(fs=trial.recording.fs)
        events = _run(detector, trial.recording.samples)
        indices = [e.index for e in events]
        assert indices == sorted(indices)

    def test_chunk_size_does_not_change_events(self, population, synthesizer):
        rng = np.random.default_rng(9)
        trial = synthesizer.synthesize_trial(population[1], "1628", rng)
        samples = trial.recording.samples
        by_chunk = {}
        for chunk in (1, 7, 50, samples.shape[1]):
            detector = StreamingKeystrokeDetector(fs=trial.recording.fs)
            by_chunk[chunk] = [e.index for e in _run(detector, samples, chunk)]
        reference = by_chunk[1]
        for chunk, indices in by_chunk.items():
            assert indices == reference, f"chunk={chunk}"

    def test_reset_forgets_state(self, population, synthesizer):
        rng = np.random.default_rng(10)
        trial = synthesizer.synthesize_trial(population[0], "1628", rng)
        detector = StreamingKeystrokeDetector(fs=trial.recording.fs)
        first = _run(detector, trial.recording.samples)
        detector.reset()
        assert detector.samples_seen == 0
        second = _run(detector, trial.recording.samples)
        assert [e.index for e in first] == [e.index for e in second]

    def test_channel_count_change_rejected(self, rng):
        detector = StreamingKeystrokeDetector(fs=100.0)
        detector.push(rng.normal(size=(4, 10)))
        with pytest.raises(SignalError):
            detector.push(rng.normal(size=(2, 10)))

    def test_3d_chunk_rejected(self, rng):
        detector = StreamingKeystrokeDetector(fs=100.0)
        with pytest.raises(SignalError):
            detector.push(rng.normal(size=(2, 3, 4)))

    def test_flush_idempotent(self, rng):
        detector = StreamingKeystrokeDetector(fs=100.0)
        detector.push(rng.normal(size=(1, 100)))
        detector.flush()
        assert detector.flush() == []


class TestEdgeCases:
    def test_empty_chunk_is_noop(self, rng):
        detector = StreamingKeystrokeDetector(fs=100.0)
        assert detector.push(np.empty((4, 0))) == []
        assert detector.samples_seen == 0
        # The stream continues normally afterwards.
        detector.push(rng.normal(size=(4, 50)))
        assert detector.samples_seen == 50

    def test_empty_chunks_do_not_change_events(self, population, synthesizer):
        rng = np.random.default_rng(13)
        trial = synthesizer.synthesize_trial(population[0], "1628", rng)
        samples = trial.recording.samples

        plain = StreamingKeystrokeDetector(fs=trial.recording.fs)
        reference = [e.index for e in _run(plain, samples)]

        detector = StreamingKeystrokeDetector(fs=trial.recording.fs)
        events = []
        for start in range(0, samples.shape[1], 25):
            events.extend(detector.push(np.empty((samples.shape[0], 0))))
            events.extend(detector.push(samples[:, start:start + 25]))
        events.extend(detector.flush())
        assert [e.index for e in events] == reference

    def test_chunk_larger_than_window(self, population, synthesizer):
        rng = np.random.default_rng(14)
        trial = synthesizer.synthesize_trial(population[1], "1628", rng)
        samples = trial.recording.samples
        detector = StreamingKeystrokeDetector(fs=trial.recording.fs)
        assert samples.shape[1] > detector.window
        one_shot = [e.index for e in _run(detector, samples, samples.shape[1])]
        reference_detector = StreamingKeystrokeDetector(fs=trial.recording.fs)
        reference = [e.index for e in _run(reference_detector, samples, 25)]
        assert one_shot == reference

    def test_flush_after_flush_after_events(self, population, synthesizer):
        rng = np.random.default_rng(15)
        trial = synthesizer.synthesize_trial(population[0], "1628", rng)
        detector = StreamingKeystrokeDetector(fs=trial.recording.fs)
        detector.push(trial.recording.samples)
        detector.flush()
        assert detector.flush() == []
        assert detector.flush() == []

    def test_reset_restores_bit_identical_sequence(
        self, population, synthesizer
    ):
        rng = np.random.default_rng(16)
        trial = synthesizer.synthesize_trial(population[2], "1628", rng)
        detector = StreamingKeystrokeDetector(fs=trial.recording.fs)
        first = _run(detector, trial.recording.samples)
        detector.reset()
        second = _run(detector, trial.recording.samples)
        # Full dataclass equality: index, time, energy, and threshold.
        assert first == second


class TestFinalizeProfiling:
    def test_profile_forwards_and_does_not_perturb(
        self, enrolled_auth, study_data
    ):
        from repro.core import StreamingAuthenticator

        trial = study_data.trials(0, "1628", "one_handed", 8)[7]
        times = [e.reported_time for e in trial.events]

        def run(profile):
            stream = StreamingAuthenticator(
                enrolled_auth,
                fs=trial.recording.fs,
                channels=trial.recording.channels,
            )
            samples = trial.recording.samples
            for start in range(0, samples.shape[1], 64):
                stream.push(samples[:, start : start + 64])
            return stream.finalize(
                pin=trial.pin, reported_times=times, profile=profile
            )

        plain = run(profile=False)
        profiled = run(profile=True)
        assert plain.stage_timings is None
        assert profiled.stage_timings is not None
        assert [name for name, _ in profiled.stage_timings] == [
            "repair", "preprocess", "segment",
            "featurize", "classify", "decide",
        ]
        assert all(t >= 0.0 for _, t in profiled.stage_timings)
        # Profiling is observability only: every decision field matches.
        assert profiled.accepted == plain.accepted
        assert profiled.reason == plain.reason
        assert profiled.scores == plain.scores
        assert profiled.pin_ok == plain.pin_ok
