"""Unit tests for authenticator save/load."""

import numpy as np
import pytest

from repro.core import (
    EnrollmentOptions,
    P2Auth,
    load_authenticator,
    save_authenticator,
)
from repro.data import ThirdPartyStore
from repro.errors import ConfigurationError, EnrollmentError
from repro.ml import KNNClassifier

PIN = "1628"
FEATURES = 840


@pytest.fixture(scope="module")
def archive_path(enrolled_auth, tmp_path_factory):
    path = tmp_path_factory.mktemp("models") / "user0.npz"
    save_authenticator(enrolled_auth, path)
    return path


class TestSaveLoad:
    def test_round_trip_decisions_identical(
        self, enrolled_auth, archive_path, study_data
    ):
        restored = load_authenticator(archive_path)
        probes = study_data.trials(0, PIN, "one_handed", 10)[7:]
        for probe in probes:
            original = enrolled_auth.authenticate(probe)
            loaded = restored.authenticate(probe)
            assert original.accepted == loaded.accepted
            assert np.allclose(original.scores, loaded.scores)

    def test_round_trip_scores_identical_per_key(
        self, enrolled_auth, archive_path, study_data
    ):
        restored = load_authenticator(archive_path)
        probe = study_data.trials(0, PIN, "double3", 1)[0]
        original = enrolled_auth.authenticate(probe)
        loaded = restored.authenticate(probe)
        assert original.keys_checked == loaded.keys_checked
        assert np.allclose(original.scores, loaded.scores)

    def test_pin_digest_restored_without_pin(self, archive_path, study_data):
        restored = load_authenticator(archive_path)
        assert not restored.no_pin_mode
        probe = study_data.trials(0, PIN, "one_handed", 8)[7]
        # Wrong PIN still rejected by the restored digest.
        assert not restored.authenticate(probe, claimed_pin="0000").accepted

    def test_keys_enrolled_preserved(self, enrolled_auth, archive_path):
        restored = load_authenticator(archive_path)
        assert restored.models.keys_enrolled == enrolled_auth.models.keys_enrolled

    def test_unenrolled_rejected(self, tmp_path):
        with pytest.raises(EnrollmentError):
            save_authenticator(P2Auth(pin=PIN), tmp_path / "x.npz")

    def test_custom_classifier_rejected(self, study_data, tmp_path):
        auth = P2Auth(
            pin=PIN,
            options=EnrollmentOptions(
                num_features=FEATURES,
                classifier_factory=lambda: KNNClassifier(3),
            ),
        )
        store = ThirdPartyStore(study_data, [1, 2, 3], PIN)
        auth.enroll(study_data.trials(0, PIN, "one_handed", 5), store.sample(15))
        with pytest.raises(EnrollmentError):
            save_authenticator(auth, tmp_path / "knn.npz")

    def test_garbage_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ConfigurationError):
            load_authenticator(path)

    def test_privacy_boost_round_trip(self, enrolled_auth_boost, tmp_path, study_data):
        path = tmp_path / "boost.npz"
        save_authenticator(enrolled_auth_boost, path)
        restored = load_authenticator(path)
        probe = study_data.trials(0, PIN, "one_handed", 8)[7]
        assert (
            restored.authenticate(probe).accepted
            == enrolled_auth_boost.authenticate(probe).accepted
        )
