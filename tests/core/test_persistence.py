"""Unit tests for authenticator save/load."""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    DegradationPolicy,
    EnrollmentOptions,
    P2Auth,
    RetryPolicy,
    SessionManager,
    load_authenticator,
    load_session,
    save_authenticator,
)
from repro.data import ThirdPartyStore
from repro.errors import ConfigurationError, EnrollmentError, PersistenceError
from repro.ml import KNNClassifier

PIN = "1628"
FEATURES = 840


@pytest.fixture(scope="module")
def archive_path(enrolled_auth, tmp_path_factory):
    path = tmp_path_factory.mktemp("models") / "user0.npz"
    save_authenticator(enrolled_auth, path)
    return path


class TestSaveLoad:
    def test_round_trip_decisions_identical(
        self, enrolled_auth, archive_path, study_data
    ):
        restored = load_authenticator(archive_path)
        probes = study_data.trials(0, PIN, "one_handed", 10)[7:]
        for probe in probes:
            original = enrolled_auth.authenticate(probe)
            loaded = restored.authenticate(probe)
            assert original.accepted == loaded.accepted
            assert np.allclose(original.scores, loaded.scores)

    def test_round_trip_scores_identical_per_key(
        self, enrolled_auth, archive_path, study_data
    ):
        restored = load_authenticator(archive_path)
        probe = study_data.trials(0, PIN, "double3", 1)[0]
        original = enrolled_auth.authenticate(probe)
        loaded = restored.authenticate(probe)
        assert original.keys_checked == loaded.keys_checked
        assert np.allclose(original.scores, loaded.scores)

    def test_pin_digest_restored_without_pin(self, archive_path, study_data):
        restored = load_authenticator(archive_path)
        assert not restored.no_pin_mode
        probe = study_data.trials(0, PIN, "one_handed", 8)[7]
        # Wrong PIN still rejected by the restored digest.
        assert not restored.authenticate(probe, claimed_pin="0000").accepted

    def test_keys_enrolled_preserved(self, enrolled_auth, archive_path):
        restored = load_authenticator(archive_path)
        assert restored.models.keys_enrolled == enrolled_auth.models.keys_enrolled

    def test_unenrolled_rejected(self, tmp_path):
        with pytest.raises(EnrollmentError):
            save_authenticator(P2Auth(pin=PIN), tmp_path / "x.npz")

    def test_custom_classifier_rejected(self, study_data, tmp_path):
        auth = P2Auth(
            pin=PIN,
            options=EnrollmentOptions(
                num_features=FEATURES,
                classifier_factory=lambda: KNNClassifier(3),
            ),
        )
        store = ThirdPartyStore(study_data, [1, 2, 3], PIN)
        auth.enroll(study_data.trials(0, PIN, "one_handed", 5), store.sample(15))
        with pytest.raises(EnrollmentError):
            save_authenticator(auth, tmp_path / "knn.npz")

    def test_garbage_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ConfigurationError):
            load_authenticator(path)

    def test_privacy_boost_round_trip(self, enrolled_auth_boost, tmp_path, study_data):
        path = tmp_path / "boost.npz"
        save_authenticator(enrolled_auth_boost, path)
        restored = load_authenticator(path)
        probe = study_data.trials(0, PIN, "one_handed", 8)[7]
        assert (
            restored.authenticate(probe).accepted
            == enrolled_auth_boost.authenticate(probe).accepted
        )


class TestUnsupportedCombos:
    def _enroll(self, study_data, options):
        auth = P2Auth(pin=PIN, options=options)
        store = ThirdPartyStore(study_data, [1, 2, 3], PIN)
        auth.enroll(study_data.trials(0, PIN, "one_handed", 5), store.sample(15))
        return auth

    def test_manual_model_names_the_combo(self, study_data, tmp_path):
        auth = self._enroll(
            study_data, EnrollmentOptions(feature_method="manual")
        )
        with pytest.raises(PersistenceError) as excinfo:
            save_authenticator(auth, tmp_path / "manual.npz")
        message = str(excinfo.value)
        assert "feature_method='manual'" in message
        assert "model 'full'" in message

    def test_fused_custom_classifier_names_the_combo(self, study_data, tmp_path):
        auth = self._enroll(
            study_data,
            EnrollmentOptions(
                num_features=FEATURES,
                privacy_boost=True,
                classifier_factory=lambda: KNNClassifier(3),
            ),
        )
        with pytest.raises(PersistenceError) as excinfo:
            save_authenticator(auth, tmp_path / "fused-knn.npz")
        assert "classifier='KNNClassifier'" in str(excinfo.value)

    def test_persistence_error_is_an_enrollment_error(self):
        assert issubclass(PersistenceError, EnrollmentError)


class TestPolicyRoundTrip:
    @pytest.fixture(scope="class")
    def policied_auth(self, study_data):
        auth = P2Auth(
            pin=PIN,
            options=EnrollmentOptions(num_features=FEATURES),
            policy=DegradationPolicy(max_gap_s=0.3, min_usable_channels=2),
        )
        store = ThirdPartyStore(study_data, [1, 2, 3], PIN)
        auth.enroll(study_data.trials(0, PIN, "one_handed", 5), store.sample(15))
        return auth

    @pytest.fixture(scope="class")
    def gappy_probe(self, study_data):
        probe = study_data.trials(0, PIN, "one_handed", 7)[6]
        samples = probe.recording.samples.copy()
        samples[:, 50:60] = np.nan  # repairable 0.1 s gap
        return dataclasses.replace(
            probe, recording=probe.recording.with_samples(samples)
        )

    def test_policy_restored_with_identical_degradation_events(
        self, policied_auth, gappy_probe, tmp_path
    ):
        path = tmp_path / "policied.npz"
        save_authenticator(policied_auth, path)
        restored = load_authenticator(path)
        assert restored.policy == policied_auth.policy
        original = policied_auth.authenticate(gappy_probe)
        loaded = restored.authenticate(gappy_probe)
        assert original.degradation == loaded.degradation
        assert original.degradation  # the gap actually exercised the ladder
        assert original.accepted == loaded.accepted
        np.testing.assert_allclose(
            original.scores, loaded.scores, rtol=0, atol=0
        )

    def test_archive_without_policy_restores_none(self, archive_path):
        assert load_authenticator(archive_path).policy is None


class TestSessionRoundTrip:
    def test_session_round_trip(self, enrolled_auth, study_data, tmp_path):
        retry = RetryPolicy(max_failures=3, backoff_base_s=0.5)
        session = SessionManager(
            enrolled_auth, wear_threshold=0.4, retry=retry
        )
        path = tmp_path / "session.npz"
        save_authenticator(enrolled_auth, path, session=session)
        restored = load_session(path)
        assert restored._wear_threshold == 0.4
        assert restored._retry == retry

    def test_archive_without_session_rejected(self, archive_path):
        with pytest.raises(ConfigurationError, match="saved without a session"):
            load_session(archive_path)
