"""Unit tests for the authentication phase and results integration."""

import dataclasses

import numpy as np
import pytest

from repro.core import authenticate_preprocessed, preprocess_trial
from repro.core.authentication import _integrate
from repro.errors import AuthenticationError
from repro.types import InputCase

from .test_enrollment import PIN  # reuse module fixtures' constants


class TestIntegrationRule:
    """Section IV-B.3: 2-of-3 for three keystrokes, all for two."""

    def test_three_keystrokes_two_pass(self):
        assert _integrate((True, True, False))
        assert _integrate((True, True, True))

    def test_three_keystrokes_one_pass_fails(self):
        assert not _integrate((True, False, False))

    def test_two_keystrokes_all_must_pass(self):
        assert _integrate((True, True))
        assert not _integrate((True, False))

    def test_single_keystroke_never_passes(self):
        assert not _integrate((True,))
        assert not _integrate(())

    def test_four_keystrokes_tolerate_one_failure(self):
        assert _integrate((True, True, True, False))
        assert not _integrate((True, True, False, False))


class TestAuthenticationFlow:
    def test_wrong_pin_short_circuits(self, enrolled_auth, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 8)[7]
        decision = enrolled_auth.authenticate(trial, claimed_pin="9999")
        assert not decision.accepted
        assert decision.pin_ok is False
        assert decision.input_case is None  # no signal analysis happened

    def test_legit_one_handed_accepted(self, enrolled_auth, study_data):
        trials = study_data.trials(0, PIN, "one_handed", 10)[7:]
        accepted = [enrolled_auth.authenticate(t).accepted for t in trials]
        assert np.mean(accepted) >= 2 / 3

    def test_decision_carries_case_and_scores(self, enrolled_auth, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 8)[7]
        decision = enrolled_auth.authenticate(trial)
        assert decision.input_case is InputCase.ONE_HANDED
        assert len(decision.scores) == 1
        assert decision.pin_ok is True

    def test_two_handed_uses_key_models(self, enrolled_auth, study_data):
        trial = study_data.trials(0, PIN, "double3", 1)[0]
        decision = enrolled_auth.authenticate(trial)
        if decision.input_case in (
            InputCase.TWO_HANDED_3,
            InputCase.TWO_HANDED_2,
        ):
            assert len(decision.keys_checked) == len(decision.passes)
            assert len(decision.keys_checked) >= 2

    def test_single_detected_keystroke_rejected(
        self, enrolled_auth, study_data, pipeline_config
    ):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        pre = preprocess_trial(trial, pipeline_config)
        pre = dataclasses.replace(
            pre, keystroke_detected=(True, False, False, False)
        )
        decision = authenticate_preprocessed(
            enrolled_auth.models, pre, pin_ok=True
        )
        assert not decision.accepted
        assert decision.input_case is InputCase.REJECT

    def test_unknown_key_counts_as_failure(
        self, enrolled_auth, study_data, pipeline_config
    ):
        """A detected keystroke on a never-enrolled key cannot pass."""
        trial = study_data.trials(0, "5094", "one_handed", 1)[0]
        pre = preprocess_trial(trial, pipeline_config)
        decision = authenticate_preprocessed(
            enrolled_auth.models, pre, pin_ok=True, no_pin_mode=True
        )
        assert not any(
            passed
            for key, passed in zip(decision.keys_checked, decision.passes)
            if key not in enrolled_auth.models.key_models
        )

    def test_missing_pin_ok_outside_no_pin_mode(
        self, enrolled_auth, study_data, pipeline_config
    ):
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        pre = preprocess_trial(trial, pipeline_config)
        with pytest.raises(AuthenticationError):
            authenticate_preprocessed(enrolled_auth.models, pre, pin_ok=None)

    def test_privacy_boost_path(self, enrolled_auth_boost, study_data):
        trial = study_data.trials(0, PIN, "one_handed", 8)[7]
        decision = enrolled_auth_boost.authenticate(trial)
        assert "fused" in decision.reason or decision.input_case is not InputCase.ONE_HANDED
