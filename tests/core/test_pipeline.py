"""Unit tests for the preprocessing pipeline."""

import dataclasses

import numpy as np
import pytest

from repro.config import PipelineConfig
from repro.core import preprocess_trial
from repro.errors import ConfigurationError, SignalError
from repro.signal import decimate_recording


@pytest.fixture(scope="module")
def preprocessed(one_trial, pipeline_config):
    return preprocess_trial(one_trial, pipeline_config)


class TestPreprocessTrial:
    def test_shapes(self, preprocessed, one_trial):
        rec = one_trial.recording
        assert preprocessed.filtered.shape == rec.samples.shape
        assert preprocessed.detrended.shape == rec.samples.shape
        assert preprocessed.reference.shape == (rec.n_samples,)

    def test_one_keystroke_index_per_digit(self, preprocessed, one_trial):
        assert len(preprocessed.keystroke_indices) == len(one_trial.pin)

    def test_all_one_handed_keystrokes_detected(self, preprocessed):
        """Section III: keystroke artifacts dominate the heartbeat, so
        a clean one-handed entry detects all four keystrokes."""
        assert preprocessed.detected_count == 4

    def test_detected_positions(self, preprocessed):
        assert preprocessed.detected_positions() == [0, 1, 2, 3]

    def test_calibrated_indices_near_true_presses(self, preprocessed, one_trial):
        fs = one_trial.recording.fs
        for index, event in zip(
            preprocessed.keystroke_indices, one_trial.events
        ):
            assert abs(index - event.true_time * fs) < 35

    def test_detrended_reference_is_roughly_zero_mean(self, preprocessed):
        assert abs(np.mean(preprocessed.reference)) < 0.2

    def test_fs_mismatch_rejected(self, one_trial):
        config = PipelineConfig().scaled_to(50.0)
        with pytest.raises(SignalError):
            preprocess_trial(one_trial, config)

    def test_decimated_trial_with_scaled_config(self, one_trial):
        config = PipelineConfig().scaled_to(50.0)
        trial = dataclasses.replace(
            one_trial, recording=decimate_recording(one_trial.recording, 50.0)
        )
        pre = preprocess_trial(trial, config)
        assert pre.detected_count >= 3

    def test_segment_extraction(self, preprocessed, pipeline_config):
        seg = preprocessed.segment(1, pipeline_config.segment_window)
        assert seg.samples.shape == (4, pipeline_config.segment_window)
        assert seg.key == "6"

    def test_segment_position_out_of_range(self, preprocessed):
        with pytest.raises(SignalError):
            preprocessed.segment(7)

    def test_segment_default_window_comes_from_config(self, one_trial):
        """``segment()`` without a window uses the trial's own config,
        not a hard-coded 90."""
        config = dataclasses.replace(PipelineConfig(), segment_window=64)
        pre = preprocess_trial(one_trial, config)
        assert pre.config is config
        assert pre.segment(0).samples.shape == (4, 64)

    def test_segment_window_zero_is_rejected_not_defaulted(self, preprocessed):
        """An explicit ``window=0`` must reach ``segment_around`` (which
        rejects it) instead of being silently rewritten to the default —
        the old ``window or 90`` idiom hid this class of caller bug."""
        with pytest.raises(ConfigurationError):
            preprocessed.segment(0, window=0)

    def test_two_handed_detects_only_watch_hand(
        self, population, synthesizer, pipeline_config
    ):
        hits = []
        for seed in range(6):
            rng = np.random.default_rng(300 + seed)
            trial = synthesizer.synthesize_trial(
                population[0], "1628", rng, one_handed=False, forced_left_count=2
            )
            pre = preprocess_trial(trial, pipeline_config)
            hits.append(pre.detected_count)
        # Most two-left-keystroke trials detect exactly 2 keystrokes.
        assert np.median(hits) == 2


class TestPreprocessTrialsBatch:
    """The batched entry point must match the per-trial paths."""

    @pytest.fixture(scope="class")
    def mixed_trials(self, study_data):
        # Trials of several users: synthesized lengths differ, so the
        # batch spans multiple same-shape groups.
        trials = []
        for uid in (0, 1, 2):
            trials.extend(study_data.trials(uid, "1628", "one_handed", 2))
        return trials

    def test_matches_preprocess_trial(self, mixed_trials, pipeline_config):
        from repro.core import preprocess_trials

        batched = preprocess_trials(mixed_trials, pipeline_config)
        for got, trial in zip(batched, mixed_trials):
            single = preprocess_trial(trial, pipeline_config)
            assert got.trial is trial
            assert got.keystroke_indices == single.keystroke_indices
            assert got.keystroke_detected == single.keystroke_detected
            assert np.isclose(got.energy_threshold, single.energy_threshold)
            assert np.array_equal(got.filtered, single.filtered)
            assert np.array_equal(got.detrended, single.detrended)
            assert np.array_equal(got.reference, single.reference)

    def test_matches_reference_path(self, mixed_trials, pipeline_config):
        """Against the pre-banded per-channel sparse-LU reference."""
        from repro.core.pipeline import _preprocess_trial_reference, preprocess_trials

        batched = preprocess_trials(mixed_trials, pipeline_config)
        for got, trial in zip(batched, mixed_trials):
            ref = _preprocess_trial_reference(trial, pipeline_config)
            assert got.keystroke_indices == ref.keystroke_indices
            assert got.keystroke_detected == ref.keystroke_detected
            np.testing.assert_allclose(
                got.detrended, ref.detrended, rtol=0, atol=1e-10
            )
            np.testing.assert_allclose(
                got.reference, ref.reference, rtol=0, atol=1e-10
            )

    def test_group_order_restored(self, study_data, pipeline_config):
        """Interleaved shapes come back in input order."""
        from repro.core import preprocess_trials

        a = study_data.trials(0, "1628", "one_handed", 2)
        b = study_data.trials(3, "1628", "one_handed", 2)
        interleaved = [a[0], b[0], a[1], b[1]]
        batched = preprocess_trials(interleaved, pipeline_config)
        for got, trial in zip(batched, interleaved):
            assert got.trial is trial

    def test_empty_batch(self, pipeline_config):
        from repro.core import preprocess_trials

        assert preprocess_trials([], pipeline_config) == []

    def test_fs_mismatch_rejected(self, one_trial):
        from repro.core import preprocess_trials

        bad = PipelineConfig().scaled_to(25.0)
        with pytest.raises(SignalError):
            preprocess_trials([one_trial], bad)
