"""Unit tests for the preprocessing pipeline."""

import dataclasses

import numpy as np
import pytest

from repro.config import PipelineConfig
from repro.core import preprocess_trial
from repro.errors import ConfigurationError, SignalError
from repro.signal import decimate_recording


@pytest.fixture(scope="module")
def preprocessed(one_trial, pipeline_config):
    return preprocess_trial(one_trial, pipeline_config)


class TestPreprocessTrial:
    def test_shapes(self, preprocessed, one_trial):
        rec = one_trial.recording
        assert preprocessed.filtered.shape == rec.samples.shape
        assert preprocessed.detrended.shape == rec.samples.shape
        assert preprocessed.reference.shape == (rec.n_samples,)

    def test_one_keystroke_index_per_digit(self, preprocessed, one_trial):
        assert len(preprocessed.keystroke_indices) == len(one_trial.pin)

    def test_all_one_handed_keystrokes_detected(self, preprocessed):
        """Section III: keystroke artifacts dominate the heartbeat, so
        a clean one-handed entry detects all four keystrokes."""
        assert preprocessed.detected_count == 4

    def test_detected_positions(self, preprocessed):
        assert preprocessed.detected_positions() == [0, 1, 2, 3]

    def test_calibrated_indices_near_true_presses(self, preprocessed, one_trial):
        fs = one_trial.recording.fs
        for index, event in zip(
            preprocessed.keystroke_indices, one_trial.events
        ):
            assert abs(index - event.true_time * fs) < 35

    def test_detrended_reference_is_roughly_zero_mean(self, preprocessed):
        assert abs(np.mean(preprocessed.reference)) < 0.2

    def test_fs_mismatch_rejected(self, one_trial):
        config = PipelineConfig().scaled_to(50.0)
        with pytest.raises(SignalError):
            preprocess_trial(one_trial, config)

    def test_decimated_trial_with_scaled_config(self, one_trial):
        config = PipelineConfig().scaled_to(50.0)
        trial = dataclasses.replace(
            one_trial, recording=decimate_recording(one_trial.recording, 50.0)
        )
        pre = preprocess_trial(trial, config)
        assert pre.detected_count >= 3

    def test_segment_extraction(self, preprocessed, pipeline_config):
        seg = preprocessed.segment(1, pipeline_config.segment_window)
        assert seg.samples.shape == (4, pipeline_config.segment_window)
        assert seg.key == "6"

    def test_segment_position_out_of_range(self, preprocessed):
        with pytest.raises(SignalError):
            preprocessed.segment(7)

    def test_segment_default_window_comes_from_config(self, one_trial):
        """``segment()`` without a window uses the trial's own config,
        not a hard-coded 90."""
        config = dataclasses.replace(PipelineConfig(), segment_window=64)
        pre = preprocess_trial(one_trial, config)
        assert pre.config is config
        assert pre.segment(0).samples.shape == (4, 64)

    def test_segment_window_zero_is_rejected_not_defaulted(self, preprocessed):
        """An explicit ``window=0`` must reach ``segment_around`` (which
        rejects it) instead of being silently rewritten to the default —
        the old ``window or 90`` idiom hid this class of caller bug."""
        with pytest.raises(ConfigurationError):
            preprocessed.segment(0, window=0)

    def test_two_handed_detects_only_watch_hand(
        self, population, synthesizer, pipeline_config
    ):
        hits = []
        for seed in range(6):
            rng = np.random.default_rng(300 + seed)
            trial = synthesizer.synthesize_trial(
                population[0], "1628", rng, one_handed=False, forced_left_count=2
            )
            pre = preprocess_trial(trial, pipeline_config)
            hits.append(pre.detected_count)
        # Most two-left-keystroke trials detect exactly 2 keystrokes.
        assert np.median(hits) == 2
