"""Unit tests for the P2Auth facade."""

import numpy as np
import pytest

from repro.core import EnrollmentOptions, P2Auth
from repro.data import ThirdPartyStore
from repro.errors import EnrollmentError

PIN = "1628"
FEATURES = 840


class TestLifecycle:
    def test_authenticate_before_enroll_rejected(self, study_data):
        auth = P2Auth(pin=PIN)
        trial = study_data.trials(0, PIN, "one_handed", 1)[0]
        with pytest.raises(EnrollmentError):
            auth.authenticate(trial)

    def test_models_property_before_enroll(self):
        with pytest.raises(EnrollmentError):
            _ = P2Auth(pin=PIN).models

    def test_enrolled_flag(self, enrolled_auth):
        assert enrolled_auth.enrolled

    def test_enroll_returns_self(self, study_data):
        store = ThirdPartyStore(study_data, [1, 2, 3], PIN)
        auth = P2Auth(
            pin=PIN, options=EnrollmentOptions(num_features=FEATURES)
        )
        result = auth.enroll(
            study_data.trials(0, PIN, "one_handed", 5), store.sample(15)
        )
        assert result is auth

    def test_no_pin_mode_flag(self):
        assert P2Auth(pin=None).no_pin_mode
        assert not P2Auth(pin=PIN).no_pin_mode


class TestEndToEnd:
    def test_legit_accepted_attacker_rejected(self, enrolled_auth, study_data):
        legit = study_data.trials(0, PIN, "one_handed", 10)[7:]
        legit_rate = np.mean(
            [enrolled_auth.authenticate(t).accepted for t in legit]
        )
        attacks = study_data.emulating_trials(6, 0, PIN, 6)
        attack_rate = np.mean(
            [enrolled_auth.authenticate(t).accepted for t in attacks]
        )
        assert legit_rate > attack_rate
        assert attack_rate <= 0.34

    def test_claimed_pin_defaults_to_typed_digits(
        self, enrolled_auth, study_data
    ):
        trial = study_data.trials(0, PIN, "one_handed", 8)[7]
        default = enrolled_auth.authenticate(trial)
        explicit = enrolled_auth.authenticate(trial, claimed_pin=trial.pin)
        assert default.accepted == explicit.accepted

    def test_no_pin_mode_end_to_end(self, study_data):
        auth = P2Auth(
            pin=None, options=EnrollmentOptions(num_features=FEATURES)
        )
        enroll = study_data.trials(0, "1234567890", "one_handed", 5)
        store = ThirdPartyStore(study_data, [1, 2, 3], "1234567890")
        auth.enroll(enroll, store.sample(12))
        probe = study_data.trials(0, PIN, "random", 3)
        decisions = [auth.authenticate(t) for t in probe]
        # No PIN check happened.
        assert all(d.pin_ok is None for d in decisions)
        # The keystroke factor alone still rejects another user.
        attack = study_data.trials(6, PIN, "random", 3)
        attack_rate = np.mean([auth.authenticate(t).accepted for t in attack])
        assert attack_rate <= 0.34


class TestProfiledAuthenticate:
    def test_stage_timings_attached_and_decision_unchanged(
        self, enrolled_auth, study_data
    ):
        probe = study_data.trials(0, "1628", "one_handed", 8)[7]
        plain = enrolled_auth.authenticate(probe)
        profiled = enrolled_auth.authenticate(probe, profile=True)
        assert plain.stage_timings is None
        assert profiled.stage_timings is not None
        assert [name for name, _ in profiled.stage_timings] == [
            "repair", "preprocess", "segment",
            "featurize", "classify", "decide",
        ]
        assert profiled.accepted == plain.accepted
        assert profiled.reason == plain.reason
        assert profiled.scores == plain.scores

    def test_wrong_pin_decision_carries_no_timings(
        self, enrolled_auth, study_data
    ):
        probe = study_data.trials(0, "1628", "one_handed", 8)[7]
        decision = enrolled_auth.authenticate(
            probe, claimed_pin="0000", profile=True
        )
        # Short-circuited before any stage ran.
        assert decision.stage_timings is None
        assert decision.reason == "PIN verification failed"

    def test_authenticate_many_profile_shares_batch_timings(
        self, enrolled_auth, study_data
    ):
        probes = study_data.trials(0, "1628", "one_handed", 9)[7:]
        decisions = enrolled_auth.authenticate_many(probes, profile=True)
        assert len(decisions) == 2
        assert decisions[0].stage_timings is not None
        assert decisions[0].stage_timings == decisions[1].stage_timings
