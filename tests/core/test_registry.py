"""Unit tests for the multi-user model registry."""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import (
    EnrollmentOptions,
    ModelRegistry,
    NpzDirectoryBackend,
    P2Auth,
    backend_exists,
)
from repro.data import ThirdPartyStore
from repro.errors import ConfigurationError

PIN = "1628"
FEATURES = 840


def _enrolled(study_data, user_id):
    enroll = study_data.trials(user_id, PIN, "one_handed", 5)
    store = ThirdPartyStore(
        study_data, [u for u in range(5) if u != user_id], PIN
    )
    auth = P2Auth(pin=PIN, options=EnrollmentOptions(num_features=FEATURES))
    auth.enroll(enroll, store.sample(15))
    return auth


@pytest.fixture(scope="module")
def alice(study_data):
    return _enrolled(study_data, 0)


@pytest.fixture(scope="module")
def bob(study_data):
    return _enrolled(study_data, 1)


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ModelRegistry(capacity=0)

    def test_user_id_charset_enforced(self, alice):
        registry = ModelRegistry()
        with pytest.raises(ConfigurationError):
            registry.add("no spaces allowed", alice)
        with pytest.raises(ConfigurationError):
            registry.add("", alice)

    def test_unenrolled_authenticator_rejected(self):
        registry = ModelRegistry()
        with pytest.raises(ConfigurationError):
            registry.add("alice", P2Auth(pin=PIN))

    def test_missing_user_raises_key_error(self):
        with pytest.raises(KeyError):
            ModelRegistry().get("nobody")


class TestLruBehaviour:
    def test_capacity_bound_holds(self, alice):
        registry = ModelRegistry(capacity=2)
        for name in ("a", "b", "c", "d"):
            registry.add(name, alice)
            assert len(registry) <= 2

    def test_eviction_order_is_least_recently_used(self, alice):
        registry = ModelRegistry(capacity=2)
        registry.add("a", alice)
        registry.add("b", alice)
        # Touch "a" so "b" becomes the LRU entry.
        registry.get("a")
        registry.add("c", alice)
        assert registry.cached_users() == ["a", "c"]
        with pytest.raises(KeyError):
            registry.get("b")

    def test_explicit_evict_only_touches_memory(self, alice, tmp_path):
        backend = NpzDirectoryBackend(tmp_path)
        registry = ModelRegistry(backend=backend)
        registry.add("alice", alice)
        assert registry.evict("alice")
        assert not registry.evict("alice")
        # Still loadable through the backend.
        assert "alice" in registry.list_users()
        assert registry.get("alice").enrolled

    def test_remove_forgets_backend_copy(self, alice, tmp_path):
        registry = ModelRegistry(backend=NpzDirectoryBackend(tmp_path))
        registry.add("alice", alice)
        registry.remove("alice")
        assert registry.list_users() == []
        with pytest.raises(KeyError):
            registry.get("alice")


class TestBackendRoundTrip:
    def test_evicted_user_scores_identically_after_reload(
        self, alice, study_data, tmp_path
    ):
        registry = ModelRegistry(capacity=1, backend=NpzDirectoryBackend(tmp_path))
        registry.add("alice", alice)
        probes = study_data.trials(0, PIN, "one_handed", 7)[5:]
        before = [registry.authenticate("alice", p) for p in probes]
        registry.add("filler", alice)  # evicts alice from memory
        assert registry.cached_users() == ["filler"]
        after = [registry.authenticate("alice", p) for p in probes]
        for b, a in zip(before, after):
            assert b.accepted == a.accepted
            assert b.reason == a.reason
            np.testing.assert_allclose(b.scores, a.scores, rtol=0, atol=0)

    def test_fresh_registry_sees_stored_users(self, alice, bob, tmp_path):
        backend = NpzDirectoryBackend(tmp_path)
        first = ModelRegistry(backend=backend)
        first.add("alice", alice)
        first.add("bob", bob)
        rebooted = ModelRegistry(backend=NpzDirectoryBackend(tmp_path))
        assert rebooted.list_users() == ["alice", "bob"]
        assert rebooted.cached_users() == []
        assert rebooted.get("bob").enrolled

    def test_two_users_authenticate_independently(
        self, alice, bob, study_data
    ):
        registry = ModelRegistry()
        registry.add("alice", alice)
        registry.add("bob", bob)
        alice_probe = study_data.trials(0, PIN, "one_handed", 7)[6]
        bob_probe = study_data.trials(1, PIN, "one_handed", 7)[6]
        assert registry.authenticate("alice", alice_probe).accepted
        assert registry.authenticate("bob", bob_probe).accepted
        # Cross-user probes score differently from same-user probes.
        cross = registry.authenticate("bob", alice_probe)
        own = registry.authenticate("alice", alice_probe)
        assert cross.scores != own.scores


class TestThreadSafety:
    def test_concurrent_get_add_evict(self, alice):
        registry = ModelRegistry(capacity=3)
        names = [f"user-{i}" for i in range(8)]
        for name in names[:3]:
            registry.add(name, alice)
        errors = []
        barrier = threading.Barrier(8)

        def hammer(worker):
            barrier.wait()
            try:
                for i in range(50):
                    name = names[(worker + i) % len(names)]
                    registry.add(name, alice)
                    try:
                        assert registry.get(name).enrolled
                    except KeyError:
                        pass  # concurrently evicted: allowed
                    registry.evict(names[(worker + i + 1) % len(names)])
                    assert len(registry) <= 3
                    registry.cached_users()
                    registry.list_users()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(hammer, range(8)))
        assert errors == []
        assert len(registry) <= 3


class _BlockingBackend:
    """Test backend whose ``load`` parks on a barrier.

    The barrier only releases when *both* loader threads are inside
    ``load`` at the same time — which is impossible if the registry
    still held its lock across backend I/O. A timeout (broken barrier)
    therefore means the loads serialized.
    """

    def __init__(self, auth, parties=2, timeout=10.0):
        self._auth = auth
        self._barrier = threading.Barrier(parties)
        self._timeout = timeout

    def store(self, user_id, auth):
        pass

    def load(self, user_id):
        self._barrier.wait(timeout=self._timeout)
        import copy

        return copy.copy(self._auth)

    def delete(self, user_id):
        pass

    def user_ids(self):
        return []


class TestLockFreeLoads:
    def test_concurrent_misses_load_in_parallel(self, alice):
        registry = ModelRegistry(backend=_BlockingBackend(alice))
        results, errors = {}, []

        def fetch(name):
            try:
                results[name] = registry.get(name)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=fetch, args=(name,))
            for name in ("u1", "u2")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        assert results["u1"].enrolled and results["u2"].enrolled
        assert sorted(registry.cached_users()) == ["u1", "u2"]

    def test_same_user_race_publishes_one_instance(self, alice):
        registry = ModelRegistry(backend=_BlockingBackend(alice))
        results, errors = [], []

        def fetch():
            try:
                results.append(registry.get("shared"))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=fetch) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        # Both loads completed, but exactly one instance was published
        # and every caller got it.
        assert len(results) == 2
        assert results[0] is results[1]
        assert registry.get("shared") is results[0]

    def test_loaded_user_arrives_warmed(self, alice, tmp_path):
        registry = ModelRegistry(backend=NpzDirectoryBackend(tmp_path))
        registry.add("alice", alice)
        registry.evict("alice")
        loaded = registry.get("alice")
        # The registry warmed the authenticator on load: a direct
        # warmup call finds no cold work left.
        assert loaded.warmup() is False


class TestNpzDirectoryHygiene:
    def test_user_ids_skips_invalid_stems(self, alice, tmp_path):
        backend = NpzDirectoryBackend(tmp_path)
        backend.store("alice", alice)
        # Stray archives whose stems load() would reject must not leak
        # into the listing.
        (tmp_path / "has space.npz").write_bytes(b"junk")
        (tmp_path / ("x" * 65 + ".npz")).write_bytes(b"junk")
        assert backend.user_ids() == ["alice"]

    def test_exists_is_list_consistent(self, alice, tmp_path):
        backend = NpzDirectoryBackend(tmp_path)
        backend.store("alice", alice)
        assert backend.exists("alice") and "alice" in backend
        assert not backend.exists("bob")
        assert not backend.exists("has space")  # invalid id: absent


class _CountingBackend:
    """Backend counting protocol calls; exists() is the cheap probe."""

    def __init__(self):
        self.exists_calls = 0
        self.user_ids_calls = 0

    def store(self, user_id, auth):
        pass

    def load(self, user_id):
        raise KeyError(user_id)

    def delete(self, user_id):
        pass

    def user_ids(self):
        self.user_ids_calls += 1
        return ["stored"]

    def exists(self, user_id):
        self.exists_calls += 1
        return user_id == "stored"


class _MinimalBackend:
    """Pre-exists() protocol surface: only store/load/delete/user_ids."""

    def store(self, user_id, auth):
        pass

    def load(self, user_id):
        raise KeyError(user_id)

    def delete(self, user_id):
        pass

    def user_ids(self):
        return ["stored"]


class TestMembershipProbe:
    def test_contains_uses_exists_not_directory_scan(self):
        backend = _CountingBackend()
        registry = ModelRegistry(backend=backend)
        assert "stored" in registry
        assert "absent" not in registry
        assert backend.exists_calls == 2
        assert backend.user_ids_calls == 0

    def test_backend_exists_falls_back_to_user_ids(self):
        backend = _MinimalBackend()
        assert backend_exists(backend, "stored")
        assert not backend_exists(backend, "absent")
        registry = ModelRegistry(backend=backend)
        assert "stored" in registry
        assert "absent" not in registry


class TestCacheStats:
    def test_hits_misses_evictions_counted(self, alice, tmp_path):
        registry = ModelRegistry(
            capacity=1, backend=NpzDirectoryBackend(tmp_path)
        )
        assert registry.stats == {"hits": 0, "misses": 0, "evictions": 0}
        registry.add("alice", alice)
        registry.get("alice")  # memory hit
        registry.add("bob", alice)  # evicts alice
        registry.get("bob")  # hit
        registry.get("alice")  # miss -> backend load (evicts bob)
        with pytest.raises(KeyError):
            registry.get("nobody")  # miss, nowhere to load from
        stats = registry.stats
        assert stats["hits"] == 2
        assert stats["misses"] == 2
        assert stats["evictions"] == 2

    def test_explicit_evict_not_counted(self, alice):
        registry = ModelRegistry()
        registry.add("alice", alice)
        registry.evict("alice")
        assert registry.stats["evictions"] == 0


class TestAdminSurface:
    def test_warm_users_snapshot(self, alice, bob):
        registry = ModelRegistry()
        assert registry.warm_users() == frozenset()
        registry.add("alice", alice)
        registry.add("bob", bob)
        warm = registry.warm_users()
        assert warm == frozenset({"alice", "bob"})
        registry.evict("alice")
        assert registry.warm_users() == frozenset({"bob"})
        # The snapshot is independent of later registry mutations.
        assert warm == frozenset({"alice", "bob"})

    def test_warm_users_does_not_touch_lru_order(self, alice, bob):
        registry = ModelRegistry(capacity=2)
        registry.add("alice", alice)
        registry.add("bob", bob)
        registry.warm_users()  # must not count as a use of either user
        registry.add("carol", bob)
        assert "alice" not in registry.warm_users()  # LRU, not snapshot order

    def test_describe_memory_only(self, alice):
        registry = ModelRegistry(capacity=4)
        registry.add("alice", alice)
        meta = registry.describe()
        assert meta["capacity"] == 4
        assert meta["backend"] is None
        assert meta["cached_users"] == 1
        assert meta["stats"] == {"hits": 0, "misses": 0, "evictions": 0}

    def test_describe_names_backend_kind_and_counters(self, alice, tmp_path):
        backend = NpzDirectoryBackend(tmp_path / "models")
        registry = ModelRegistry(capacity=1, backend=backend)
        registry.add("alice", alice)
        registry.get("alice")
        registry.evict("alice")
        registry.get("alice")  # miss -> backend load
        meta = registry.describe()
        assert meta["backend"] == "NpzDirectoryBackend"
        assert meta["capacity"] == 1
        assert meta["stats"]["hits"] == 1
        assert meta["stats"]["misses"] == 1
