"""Unit tests for PIN verification."""

import pytest

from repro.core import PinVerifier
from repro.errors import ConfigurationError


class TestPinVerifier:
    def test_correct_pin_accepted(self):
        verifier = PinVerifier("1628")
        assert verifier.verify("1628")

    def test_wrong_pin_rejected(self):
        verifier = PinVerifier("1628")
        assert not verifier.verify("1629")
        assert not verifier.verify("162")
        assert not verifier.verify("")

    def test_none_claim_rejected_with_pin(self):
        assert not PinVerifier("1628").verify(None)

    def test_non_digit_claim_rejected(self):
        assert not PinVerifier("1628").verify("abcd")

    def test_no_pin_mode_accepts_everything(self):
        verifier = PinVerifier(None)
        assert not verifier.has_pin
        assert verifier.verify(None)
        assert verifier.verify("0000")

    def test_has_pin(self):
        assert PinVerifier("1628").has_pin

    def test_invalid_pin_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            PinVerifier("")
        with pytest.raises(ConfigurationError):
            PinVerifier("12a4")

    def test_fixed_salt_is_deterministic(self):
        a = PinVerifier("1628", salt=b"0" * 16)
        b = PinVerifier("1628", salt=b"0" * 16)
        assert a.verify("1628") and b.verify("1628")

    def test_different_salts_still_verify(self):
        # Salts differ per instance but verification is self-consistent.
        a = PinVerifier("1628")
        b = PinVerifier("1628")
        assert a.verify("1628") and b.verify("1628")
