"""Unit tests for the packed template format (repro.core.packing).

The decision-parity contract documented in docs/performance.md is
pinned here: float64 records reproduce scores bit-identically;
float32/float16 records reproduce every *decision* of the standard
probe battery (legit / two-handed / attack / wrong-PIN) with score
drift inside the documented tolerances.
"""

import io

import numpy as np
import pytest

from repro.core import (
    EnrollmentOptions,
    P2Auth,
    build_negative_bank,
    pack_authenticator,
    save_authenticator,
    unpack_authenticator,
)
from repro.core.packing import (
    EXTRACTOR_MAGIC,
    RECORD_MAGIC,
    decode_extractor,
    record_extractor_refs,
    unpack_record,
)
from repro.data import ThirdPartyStore
from repro.errors import ConfigurationError, PersistenceError

PIN = "1628"
FEATURES = 840

#: Score drift bounds per storage dtype (documented in
#: docs/performance.md "Registry storage"); float64 must be bit-exact.
SCORE_ATOL = {"float32": 1e-6, "float16": 1e-2}

DECISION_FIELDS = (
    "accepted", "reason", "input_case", "pin_ok", "scores",
    "keys_checked", "passes", "degradation",
)


@pytest.fixture(scope="module")
def enrolled(study_data):
    enroll = study_data.trials(0, PIN, "one_handed", 5)
    store = ThirdPartyStore(study_data, [1, 2, 3, 4], PIN)
    auth = P2Auth(pin=PIN, options=EnrollmentOptions(num_features=FEATURES))
    auth.enroll(enroll, store.sample(15))
    return auth


@pytest.fixture(scope="module")
def battery(study_data):
    """The standard probe battery: (trial, claimed_pin) pairs."""
    legit = study_data.trials(0, PIN, "one_handed", 7)[5:7]
    two_handed = study_data.trials(0, PIN, "double3", 2)
    attack = study_data.emulating_trials(4, 0, PIN, 2)
    probes = [(t, None) for t in legit + two_handed + attack]
    probes.append((legit[0], "0000"))  # wrong PIN
    return probes


def _decide(auth, probes):
    return [
        auth.authenticate(trial, claimed_pin=pin) for trial, pin in probes
    ]


class TestDecisionParity:
    def test_float64_round_trip_is_bit_exact(self, enrolled, battery):
        reloaded = unpack_authenticator(
            pack_authenticator(enrolled, dtype="float64")
        )
        for ref, got in zip(_decide(enrolled, battery),
                            _decide(reloaded, battery)):
            for field in DECISION_FIELDS:
                assert getattr(ref, field) == getattr(got, field)

    @pytest.mark.parametrize("dtype", ["float32", "float16"])
    def test_quantized_decisions_match_with_bounded_drift(
        self, enrolled, battery, dtype
    ):
        reloaded = unpack_authenticator(
            pack_authenticator(enrolled, dtype=dtype)
        )
        for ref, got in zip(_decide(enrolled, battery),
                            _decide(reloaded, battery)):
            assert got.accepted == ref.accepted
            assert got.input_case == ref.input_case
            assert got.pin_ok == ref.pin_ok
            assert got.keys_checked == ref.keys_checked
            assert got.passes == ref.passes
            if dtype == "float32":
                # Reason strings embed scores at 3 decimals; float16
                # drift (~1e-3) can move that digit, float32 cannot.
                assert got.reason == ref.reason
            np.testing.assert_allclose(
                got.scores, ref.scores, rtol=0, atol=SCORE_ATOL[dtype]
            )

    def test_battery_covers_accepts_and_rejects(self, enrolled, battery):
        decisions = _decide(enrolled, battery)
        assert any(d.accepted for d in decisions)
        assert any(not d.accepted for d in decisions)


class TestFormat:
    def test_pack_is_deterministic(self, enrolled):
        first = pack_authenticator(enrolled, dtype="float32")
        second = pack_authenticator(enrolled, dtype="float32")
        assert first.record == second.record
        assert first.extractors == second.extractors

    def test_packed_record_is_smaller_than_npz(self, enrolled):
        packed = pack_authenticator(enrolled, dtype="float32")
        buf = io.BytesIO()
        save_authenticator(enrolled, buf)
        # Per-user cost comparison: the npz re-stores the extractors in
        # every archive, the packed record shares them.
        assert packed.record_nbytes < len(buf.getvalue())

    def test_float16_is_smaller_than_float32(self, enrolled):
        f32 = pack_authenticator(enrolled, dtype="float32")
        f16 = pack_authenticator(enrolled, dtype="float16")
        assert f16.record_nbytes < f32.record_nbytes

    def test_record_refs_match_shipped_extractors(self, enrolled):
        packed = pack_authenticator(enrolled, dtype="float32")
        refs = record_extractor_refs(packed.record)
        assert sorted(packed.extractors) == list(refs)

    def test_extractor_blob_round_trips(self, enrolled):
        packed = pack_authenticator(enrolled)
        fingerprint, blob = next(iter(packed.extractors.items()))
        rocket = decode_extractor(blob)
        assert rocket._fitted

    def test_unknown_dtype_rejected(self, enrolled):
        with pytest.raises(ConfigurationError):
            pack_authenticator(enrolled, dtype="bfloat16")

    def test_bad_magic_rejected(self, enrolled):
        packed = pack_authenticator(enrolled)
        with pytest.raises(PersistenceError):
            unpack_record(b"XXXX" + packed.record[4:], lambda fp: None)
        blob = next(iter(packed.extractors.values()))
        with pytest.raises(PersistenceError):
            decode_extractor(b"XXXX" + blob[4:])

    def test_record_and_extractor_magics_differ(self, enrolled):
        packed = pack_authenticator(enrolled)
        assert packed.record[:4] == RECORD_MAGIC
        for blob in packed.extractors.values():
            assert blob[:4] == EXTRACTOR_MAGIC
        # A record is not decodable as an extractor and vice versa.
        with pytest.raises(PersistenceError):
            decode_extractor(packed.record)


class TestExtractorSharing:
    def test_bank_enrolled_users_share_fingerprints(self, study_data):
        """Users enrolled against one NegativeBank dedup to one set."""
        options = EnrollmentOptions(num_features=FEATURES)
        store = ThirdPartyStore(study_data, [2, 3, 4], PIN)
        bank = build_negative_bank(store.sample(15), options=options)
        packs = []
        for user in (0, 1):
            auth = P2Auth(pin=PIN, options=options)
            auth.enroll(
                study_data.trials(user, PIN, "one_handed", 5),
                store.sample(15),
                shared_negatives=bank,
            )
            packs.append(pack_authenticator(auth))
        assert sorted(packs[0].extractors) == sorted(packs[1].extractors)
        for fingerprint, blob in packs[0].extractors.items():
            assert packs[1].extractors[fingerprint] == blob

    def test_unshared_users_do_not_collide(self, study_data, enrolled):
        other = P2Auth(
            pin=PIN, options=EnrollmentOptions(num_features=FEATURES)
        )
        other.enroll(
            study_data.trials(1, PIN, "one_handed", 5),
            ThirdPartyStore(study_data, [2, 3, 4], PIN).sample(15),
        )
        a = pack_authenticator(enrolled)
        b = pack_authenticator(other)
        # Different fitted negatives => different bias tables => no
        # accidental fingerprint collisions.
        assert not set(a.extractors) & set(b.extractors)
