"""Unit tests for PIN input case identification."""

import dataclasses

import numpy as np
import pytest

from repro.core import identify_input_case, preprocess_trial
from repro.core.pipeline import PreprocessedTrial
from repro.types import InputCase


def _with_detected(preprocessed: PreprocessedTrial, flags):
    return dataclasses.replace(preprocessed, keystroke_detected=tuple(flags))


@pytest.fixture(scope="module")
def preprocessed(one_trial, pipeline_config):
    return preprocess_trial(one_trial, pipeline_config)


class TestIdentifyInputCase:
    def test_all_detected_is_one_handed(self, preprocessed):
        pre = _with_detected(preprocessed, [True] * 4)
        assert identify_input_case(pre) is InputCase.ONE_HANDED

    def test_three_detected_is_double3(self, preprocessed):
        pre = _with_detected(preprocessed, [True, True, False, True])
        assert identify_input_case(pre) is InputCase.TWO_HANDED_3

    def test_two_detected_is_double2(self, preprocessed):
        pre = _with_detected(preprocessed, [True, False, False, True])
        assert identify_input_case(pre) is InputCase.TWO_HANDED_2

    def test_one_detected_rejected(self, preprocessed):
        pre = _with_detected(preprocessed, [False, False, True, False])
        assert identify_input_case(pre) is InputCase.REJECT

    def test_none_detected_rejected(self, preprocessed):
        pre = _with_detected(preprocessed, [False] * 4)
        assert identify_input_case(pre) is InputCase.REJECT

    def test_real_one_handed_trial(self, preprocessed):
        assert identify_input_case(preprocessed) is InputCase.ONE_HANDED

    def test_real_two_handed_trial(self, population, synthesizer, pipeline_config):
        rng = np.random.default_rng(42)
        trial = synthesizer.synthesize_trial(
            population[1], "1628", rng, one_handed=False, forced_left_count=3
        )
        pre = preprocess_trial(trial, pipeline_config)
        assert identify_input_case(pre) in (
            InputCase.TWO_HANDED_3,
            InputCase.TWO_HANDED_2,  # detector may drop one keystroke
        )
