"""Unit tests for Platt scaling."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml import PlattScaler


def _scores(n=60, gap=2.0, seed=0):
    rng = np.random.default_rng(seed)
    pos = rng.normal(gap / 2, 1.0, size=n)
    neg = rng.normal(-gap / 2, 1.0, size=n)
    scores = np.concatenate([pos, neg])
    y = np.concatenate([np.ones(n), -np.ones(n)])
    return scores, y


class TestPlattScaler:
    def test_probabilities_in_unit_interval(self):
        scores, y = _scores()
        scaler = PlattScaler().fit(scores, y)
        p = scaler.predict_proba(np.linspace(-5, 5, 50))
        assert np.all((p >= 0.0) & (p <= 1.0))

    def test_monotone_in_score(self):
        scores, y = _scores()
        scaler = PlattScaler().fit(scores, y)
        p = scaler.predict_proba(np.linspace(-5, 5, 50))
        assert np.all(np.diff(p) >= -1e-12)

    def test_high_scores_high_probability(self):
        scores, y = _scores(gap=4.0)
        scaler = PlattScaler().fit(scores, y)
        assert scaler.predict_proba(np.array([4.0]))[0] > 0.9
        assert scaler.predict_proba(np.array([-4.0]))[0] < 0.1

    def test_roughly_calibrated_midpoint(self):
        scores, y = _scores(gap=2.0, n=500)
        scaler = PlattScaler().fit(scores, y)
        # At score 0 the classes are equally likely by symmetry.
        assert abs(scaler.predict_proba(np.array([0.0]))[0] - 0.5) < 0.1

    def test_separable_scores_stay_finite(self):
        scores = np.array([-2.0, -1.5, 1.5, 2.0])
        y = np.array([-1.0, -1.0, 1.0, 1.0])
        scaler = PlattScaler().fit(scores, y)
        assert np.isfinite(scaler.a_)
        assert np.isfinite(scaler.b_)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            PlattScaler().predict_proba(np.zeros(3))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            PlattScaler(max_iter=0)
        with pytest.raises(ValueError):
            PlattScaler(l2=-1.0)

    def test_works_on_ridge_scores_end_to_end(self, study_data):
        """Calibrate the full-waveform model's scores."""
        from repro.config import PipelineConfig
        from repro.core import preprocess_trial
        from repro.core.enrollment import WaveformModel, extract_full_waveform
        from repro.data import ThirdPartyStore

        config = PipelineConfig()
        def wf(t):
            return extract_full_waveform(preprocess_trial(t, config))

        legit = [wf(t) for t in study_data.trials(0, "1628", "one_handed", 12)]
        third = [
            wf(t) for t in ThirdPartyStore(study_data, [1, 2, 3], "1628").sample(20)
        ]
        model = WaveformModel(num_features=840).fit(
            np.stack(legit[:7]), np.stack(third[:14])
        )
        cal_scores = np.concatenate(
            [
                model.decision_function(np.stack(legit[7:])),
                model.decision_function(np.stack(third[14:])),
            ]
        )
        cal_y = np.concatenate([np.ones(5), -np.ones(6)])
        scaler = PlattScaler().fit(cal_scores, cal_y)
        p_legit = scaler.predict_proba(
            model.decision_function(np.stack(legit[7:]))
        )
        p_third = scaler.predict_proba(
            model.decision_function(np.stack(third[14:]))
        )
        assert p_legit.mean() > p_third.mean()
