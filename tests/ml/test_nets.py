"""Unit tests for the ResNet-1D and RNN-FNN classifiers.

Both are numpy implementations with manual backprop, so beyond the
learn-a-separable-task checks we verify the conv gradients numerically.
"""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml import ResNet1DClassifier, RNNFNNClassifier
from repro.ml.resnet import (
    _conv_backward_input,
    _conv_backward_weights,
    _conv_forward,
    _downsample,
)


def _task(n=20, length=120, seed=0):
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 6.28, length)
    pos = np.array(
        [np.sin(2 * t + rng.uniform(0, 6)) + 0.2 * rng.normal(size=length)
         for _ in range(n)]
    )
    neg = np.array(
        [np.sin(4 * t + rng.uniform(0, 6)) + 0.2 * rng.normal(size=length)
         for _ in range(n)]
    )
    x = np.vstack([pos, neg])[:, np.newaxis, :]
    y = np.concatenate([np.ones(n), -np.ones(n)])
    return x, y


class TestConvPrimitives:
    def test_forward_matches_manual(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 10))
        w = rng.normal(size=(4, 3, 5))
        out = _conv_forward(x, w)
        assert out.shape == (2, 4, 10)
        # Check one output element by hand (same padding, pad=2).
        xp = np.pad(x, ((0, 0), (0, 0), (2, 2)))
        expected = sum(
            xp[0, c, 3 + k] * w[1, c, k] for c in range(3) for k in range(5)
        )
        assert out[0, 1, 3] == pytest.approx(expected)

    def test_weight_gradient_numerically(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 2, 12))
        w = rng.normal(size=(3, 2, 5))

        def loss(weights):
            return 0.5 * np.sum(_conv_forward(x, weights) ** 2)

        dz = _conv_forward(x, w)
        grad = _conv_backward_weights(dz, x, 5)
        eps = 1e-6
        for index in [(0, 0, 0), (1, 1, 2), (2, 0, 4)]:
            w_plus = w.copy()
            w_plus[index] += eps
            w_minus = w.copy()
            w_minus[index] -= eps
            numeric = (loss(w_plus) - loss(w_minus)) / (2 * eps)
            assert grad[index] == pytest.approx(numeric, rel=1e-4)

    def test_input_gradient_numerically(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 2, 10))
        w = rng.normal(size=(3, 2, 5))

        def loss(inputs):
            return 0.5 * np.sum(_conv_forward(inputs, w) ** 2)

        dz = _conv_forward(x, w)
        grad = _conv_backward_input(dz, w)
        eps = 1e-6
        for index in [(0, 0, 0), (0, 1, 5), (0, 0, 9)]:
            x_plus = x.copy()
            x_plus[index] += eps
            x_minus = x.copy()
            x_minus[index] -= eps
            numeric = (loss(x_plus) - loss(x_minus)) / (2 * eps)
            assert grad[index] == pytest.approx(numeric, rel=1e-4)

    def test_downsample(self):
        x = np.arange(12.0).reshape(1, 1, 12)
        out = _downsample(x, 6)
        assert out.shape == (1, 1, 6)
        assert out[0, 0, 0] == pytest.approx(0.5)

    def test_downsample_noop_when_short(self):
        x = np.zeros((1, 1, 10))
        assert _downsample(x, 20).shape == (1, 1, 10)


class TestResNet:
    def test_learns_separable_task(self):
        x, y = _task(seed=0)
        xt, yt = _task(seed=1)
        clf = ResNet1DClassifier(epochs=60, seed=0).fit(x, y)
        assert np.mean(clf.predict(xt) == yt) >= 0.8

    def test_decision_shape(self):
        x, y = _task(n=8)
        clf = ResNet1DClassifier(epochs=5).fit(x, y)
        assert clf.decision_function(x).shape == (16,)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            ResNet1DClassifier().predict(np.zeros((1, 1, 50)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            ResNet1DClassifier(filters=0)
        with pytest.raises(ValueError):
            ResNet1DClassifier(epochs=0)

    def test_deterministic_given_seed(self):
        x, y = _task(n=6)
        a = ResNet1DClassifier(epochs=5, seed=3).fit(x, y).decision_function(x)
        b = ResNet1DClassifier(epochs=5, seed=3).fit(x, y).decision_function(x)
        assert np.allclose(a, b)


class TestRNNFNN:
    def test_learns_separable_task(self):
        x, y = _task(seed=0)
        xt, yt = _task(seed=1)
        clf = RNNFNNClassifier(epochs=100, seed=0).fit(x, y)
        assert np.mean(clf.predict(xt) == yt) >= 0.75

    def test_decision_shape(self):
        x, y = _task(n=8)
        clf = RNNFNNClassifier(epochs=5).fit(x, y)
        assert clf.decision_function(x).shape == (16,)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            RNNFNNClassifier().predict(np.zeros((1, 1, 50)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            RNNFNNClassifier(hidden=0)
        with pytest.raises(ValueError):
            RNNFNNClassifier(max_steps=1)
