"""Unit tests for the ridge classifier with LOO-CV."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml import RidgeClassifier


def _separable(n_per_class=20, n_features=10, gap=4.0, seed=0):
    rng = np.random.default_rng(seed)
    pos = rng.normal(size=(n_per_class, n_features)) + gap / 2
    neg = rng.normal(size=(n_per_class, n_features)) - gap / 2
    x = np.vstack([pos, neg])
    y = np.concatenate([np.ones(n_per_class), -np.ones(n_per_class)])
    return x, y


class TestFit:
    def test_separable_data_perfect_train_accuracy(self):
        x, y = _separable()
        clf = RidgeClassifier().fit(x, y)
        assert np.all(clf.predict(x) == y)

    def test_generalizes(self):
        x, y = _separable(seed=0)
        xt, yt = _separable(seed=1)
        clf = RidgeClassifier().fit(x, y)
        assert np.mean(clf.predict(xt) == yt) > 0.95

    def test_matches_closed_form_solution(self):
        """Coefficients must equal the direct normal-equation solution."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(30, 8))
        y = np.sign(rng.normal(size=30))
        y[y == 0] = 1.0
        alpha = 10.0
        clf = RidgeClassifier(alphas=[alpha]).fit(x, y)
        xc = x - x.mean(axis=0)
        yc = y - y.mean()
        expected = np.linalg.solve(
            xc.T @ xc + alpha * np.eye(8), xc.T @ yc
        )
        assert np.allclose(clf.coef_, expected, atol=1e-8)
        assert clf.alpha_ == alpha

    def test_loo_prefers_strong_regularization_on_noise(self):
        """Pure-noise labels should drive alpha to the top of the grid.

        This holds in the classical n > f regime (in the
        over-parameterized f >> n regime minimum-norm interpolation can
        legitimately achieve low LOO error, so no assertion is made
        there).
        """
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 5))
        y = np.sign(rng.normal(size=100))
        y[y == 0] = 1.0
        clf = RidgeClassifier(alphas=[1e-2, 1e6]).fit(x, y)
        assert clf.alpha_ == 1e6

    def test_loo_prefers_weak_regularization_on_clean_signal(self):
        x, y = _separable(gap=10.0)
        clf = RidgeClassifier(alphas=[1e-2, 1e6]).fit(x, y)
        assert clf.alpha_ == 1e-2

    def test_more_features_than_samples(self):
        x, y = _separable(n_per_class=10, n_features=500)
        clf = RidgeClassifier().fit(x, y)
        assert np.all(clf.predict(x) == y)

    def test_decision_function_sign_matches_predict(self):
        x, y = _separable()
        clf = RidgeClassifier().fit(x, y)
        scores = clf.decision_function(x)
        assert np.all((scores > 0) == (clf.predict(x) > 0))


class TestSampleWeight:
    def test_balanced_weights_recenter_imbalanced_fit(self):
        """With 5 positives vs 100 negatives, balanced weights must
        move the boundary toward the negative mass."""
        rng = np.random.default_rng(0)
        pos = rng.normal(size=(5, 10)) + 1.0
        neg = rng.normal(size=(100, 10)) - 1.0
        x = np.vstack([pos, neg])
        y = np.concatenate([np.ones(5), -np.ones(100)])
        n = len(y)
        weights = np.where(y > 0, n / (2 * 5), n / (2 * 100))

        plain = RidgeClassifier(alphas=[1.0]).fit(x, y)
        balanced = RidgeClassifier(alphas=[1.0]).fit(x, y, sample_weight=weights)

        fresh_pos = rng.normal(size=(50, 10)) + 1.0
        assert (
            balanced.decision_function(fresh_pos).mean()
            > plain.decision_function(fresh_pos).mean()
        )

    def test_uniform_weights_match_unweighted(self):
        x, y = _separable()
        a = RidgeClassifier(alphas=[1.0]).fit(x, y)
        b = RidgeClassifier(alphas=[1.0]).fit(x, y, sample_weight=np.ones(len(y)))
        assert np.allclose(a.coef_, b.coef_)
        assert a.intercept_ == pytest.approx(b.intercept_)

    def test_invalid_weights_rejected(self):
        x, y = _separable()
        with pytest.raises(ValueError):
            RidgeClassifier().fit(x, y, sample_weight=np.ones(3))
        with pytest.raises(ValueError):
            RidgeClassifier().fit(x, y, sample_weight=-np.ones(len(y)))


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            RidgeClassifier().predict(np.zeros((2, 3)))

    def test_bad_labels_rejected(self):
        x = np.zeros((4, 2))
        with pytest.raises(ValueError):
            RidgeClassifier().fit(x, np.array([0, 1, 2, 3]))

    def test_single_class_rejected(self):
        x = np.zeros((4, 2))
        with pytest.raises(ValueError):
            RidgeClassifier().fit(x, np.ones(4))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RidgeClassifier().fit(np.zeros((4, 2)), np.ones(3))

    def test_invalid_alphas(self):
        with pytest.raises(ValueError):
            RidgeClassifier(alphas=[])
        with pytest.raises(ValueError):
            RidgeClassifier(alphas=[-1.0])
