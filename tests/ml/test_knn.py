"""Unit tests for the k-NN classifier."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml import KNNClassifier


class TestKNN:
    def test_nearest_neighbour_classification(self):
        x = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
        y = np.array([1.0, 1.0, -1.0, -1.0])
        clf = KNNClassifier(k=1).fit(x, y)
        assert clf.predict(np.array([[0.05, 0.0]]))[0] == 1.0
        assert clf.predict(np.array([[5.05, 5.0]]))[0] == -1.0

    def test_decision_is_mean_neighbour_label(self):
        x = np.array([[0.0], [1.0], [2.0], [10.0]])
        y = np.array([1.0, 1.0, -1.0, -1.0])
        clf = KNNClassifier(k=3).fit(x, y)
        # Neighbours of 0.5 within k=3: 0, 1, 2 -> labels 1, 1, -1.
        assert clf.decision_function(np.array([[0.5]]))[0] == pytest.approx(1 / 3)

    def test_k_larger_than_train_set_clipped(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([1.0, -1.0])
        clf = KNNClassifier(k=10).fit(x, y)
        assert clf.decision_function(np.array([[0.0]]))[0] == pytest.approx(0.0)

    def test_1d_query_promoted(self):
        x = np.array([[0.0, 0.0], [1.0, 1.0]])
        y = np.array([1.0, -1.0])
        clf = KNNClassifier(k=1).fit(x, y)
        assert clf.predict(np.array([0.1, 0.1]))[0] == 1.0

    def test_scores_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(30, 4))
        y = np.sign(rng.normal(size=30))
        y[y == 0] = 1.0
        clf = KNNClassifier(k=5).fit(x, y)
        scores = clf.decision_function(rng.normal(size=(10, 4)))
        assert np.all((scores >= -1.0) & (scores <= 1.0))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNNClassifier(k=0)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            KNNClassifier().predict(np.zeros((1, 2)))
