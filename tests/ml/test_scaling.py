"""Unit tests for feature standardization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NotFittedError
from repro.ml import StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(3.0, 2.0, size=(100, 5))
        out = StandardScaler().fit_transform(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_maps_to_zero(self):
        x = np.ones((10, 3))
        out = StandardScaler().fit_transform(x)
        assert np.allclose(out, 0.0)

    def test_transform_uses_training_statistics(self):
        train = np.array([[0.0], [2.0]])
        scaler = StandardScaler().fit(train)
        out = scaler.transform(np.array([[4.0]]))
        assert out[0, 0] == pytest.approx(3.0)

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))

    @given(
        st.lists(
            st.lists(
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=3,
                max_size=3,
            ),
            min_size=2,
            max_size=30,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip_preserves_order(self, rows):
        """Standardization is monotone per column (up to float ties)."""
        x = np.asarray(rows)
        out = StandardScaler().fit_transform(x)
        for col in range(x.shape[1]):
            order = np.argsort(x[:, col], kind="stable")
            assert np.all(np.diff(out[order, col]) >= -1e-9)
