"""Unit tests for the command-line interface."""

import pytest

from repro import __version__
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment", "fig9"])
        assert args.id == "fig9"
        assert args.scale == "smoke"
        assert args.jobs is None
        assert args.seed is None

    def test_simulate_flags(self):
        args = build_parser().parse_args(
            ["simulate", "--user", "2", "--pin", "3570", "--two-handed"]
        )
        assert args.user == 2
        assert args.pin == "3570"
        assert args.two_handed

    @pytest.mark.parametrize(
        "command",
        [
            ["list"],
            ["experiment", "fig9"],
            ["robustness"],
            ["demo"],
            ["simulate"],
            ["serve"],
        ],
    )
    def test_every_subcommand_accepts_jobs_and_seed(self, command):
        args = build_parser().parse_args(command + ["--jobs", "2", "--seed", "9"])
        assert args.jobs == 2
        assert args.seed == 9

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_seed_defaults_preserved(self):
        assert build_parser().parse_args(["demo"]).seed == 7
        assert build_parser().parse_args(["simulate"]).seed == 0

    def test_serve_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "--port", "9000", "--synthetic", "3",
                "--features", "840", "--workers", "2", "--stripes", "8",
                "--sessions", "16", "--capacity", "4",
            ]
        )
        assert args.port == 9000 and args.synthetic == 3
        assert args.capacity == 4 and args.stripes == 8
        assert args.pin == "1628" and args.host == "127.0.0.1"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "tab1" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_fig9(self, capsys):
        assert main(["experiment", "fig9", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 9" in out
        assert "inter/intra ratio" in out

    def test_simulate_to_file(self, tmp_path, capsys):
        path = tmp_path / "trial.csv"
        assert main(["simulate", "--out", str(path), "--pin", "1628"]) == 0
        lines = path.read_text().splitlines()
        assert lines[0].startswith("time,")
        assert len(lines) > 100
        err = capsys.readouterr().err
        assert "pin=1628" in err
        assert err.count("# key") == 4

    def test_simulate_stdout(self, capsys):
        assert main(["simulate"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("time,")

    def test_robustness_unknown_fault(self, capsys):
        assert main(["robustness", "--faults", "bitrot"]) == 2
        assert "unknown fault" in capsys.readouterr().err

    def test_experiment_seed_override_changes_population(self, capsys):
        assert main(["experiment", "fig9", "--seed", "11"]) == 0
        seeded = capsys.readouterr().out
        assert main(["experiment", "fig9"]) == 0
        default = capsys.readouterr().out
        assert "Fig. 9" in seeded
        assert seeded != default

    def test_robustness_markdown_table(self, capsys):
        code = main(
            [
                "robustness",
                "--faults",
                "gain_drift",
                "--intensities",
                "0,1",
                "--features",
                "840",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "| fault | intensity |" in out
        assert "gain_drift" in out
