"""Unit and property tests for the MiniRocket implementation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, NotFittedError, SignalError
from repro.features import MiniRocket
from repro.features.minirocket import (
    KERNEL_INDICES,
    KERNEL_LENGTH,
    NUM_KERNELS,
    _fit_dilations,
    _golden_quantiles,
    _shifted_stack,
)


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(0)
    t = np.linspace(0, 6.28, 200)
    return np.array(
        [np.sin((1 + 0.2 * i) * t) + 0.1 * rng.normal(size=t.size) for i in range(12)]
    )


class TestKernelDesign:
    def test_exactly_84_kernels(self):
        assert NUM_KERNELS == 84

    def test_kernels_are_3_of_9_combinations(self):
        assert len(set(KERNEL_INDICES)) == 84
        for idx in KERNEL_INDICES:
            assert len(idx) == 3
            assert all(0 <= i < KERNEL_LENGTH for i in idx)

    def test_kernel_weights_sum_to_zero(self):
        # Three +2 weights and six -1 weights: 3*2 + 6*(-1) = 0.
        assert 3 * 2 + (KERNEL_LENGTH - 3) * (-1) == 0


class TestHelpers:
    def test_golden_quantiles_in_unit_interval(self):
        q = _golden_quantiles(500)
        assert np.all((q >= 0) & (q < 1))
        # Low discrepancy: reasonably uniform coverage.
        hist, _ = np.histogram(q, bins=10, range=(0, 1))
        assert hist.min() >= 30

    def test_fit_dilations_budget(self):
        dilations, counts = _fit_dilations(200, 840, 32)
        assert np.all(dilations >= 1)
        assert np.all(np.diff(dilations) > 0)
        assert int(counts.sum()) == 840 // 84

    def test_dilations_respect_input_length(self):
        dilations, _counts = _fit_dilations(100, 9996, 32)
        assert dilations.max() * (KERNEL_LENGTH - 1) <= 99

    def test_shifted_stack_alignment(self):
        x = np.arange(10.0)[np.newaxis, :]
        stack = _shifted_stack(x, dilation=1)
        assert stack.shape == (9, 1, 10)
        # Center row is the signal itself.
        assert np.array_equal(stack[4, 0], x[0])
        # Row 5 is x shifted left by 1, zero padded at the end.
        assert np.array_equal(stack[5, 0][:-1], x[0][1:])
        assert stack[5, 0][-1] == 0.0
        # Row 3 is x shifted right by 1, zero padded at the start.
        assert np.array_equal(stack[3, 0][1:], x[0][:-1])
        assert stack[3, 0][0] == 0.0


class TestTransform:
    def test_feature_count_and_range(self, series):
        rocket = MiniRocket(num_features=840, seed=0)
        features = rocket.fit_transform(series)
        assert features.shape == (12, rocket.n_features_out)
        assert rocket.n_features_out >= 840 - NUM_KERNELS
        assert np.all((features >= 0.0) & (features <= 1.0))

    def test_deterministic(self, series):
        a = MiniRocket(num_features=420, seed=3).fit_transform(series)
        b = MiniRocket(num_features=420, seed=3).fit_transform(series)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, series):
        a = MiniRocket(num_features=420, seed=1).fit_transform(series)
        b = MiniRocket(num_features=420, seed=2).fit_transform(series)
        assert not np.array_equal(a, b)

    def test_different_signals_different_features(self, series):
        rocket = MiniRocket(num_features=420, seed=0).fit(series)
        features = rocket.transform(series)
        assert not np.allclose(features[0], features[-1])

    def test_multichannel_splits_budget(self, series):
        multi = np.stack([series, series * 0.5], axis=1)  # (n, 2, len)
        rocket = MiniRocket(num_features=840, seed=0).fit(multi)
        # Budget split over 2 channels, each rounded to a multiple of 84.
        assert rocket.n_features_out % (2 * NUM_KERNELS) == 0

    def test_transform_checks_channels(self, series):
        rocket = MiniRocket(num_features=420).fit(series)
        multi = np.stack([series, series], axis=1)
        with pytest.raises(SignalError):
            rocket.transform(multi)

    def test_transform_checks_length(self, series):
        rocket = MiniRocket(num_features=420).fit(series)
        with pytest.raises(SignalError):
            rocket.transform(series[:, :100])

    def test_transform_before_fit_rejected(self, series):
        with pytest.raises(NotFittedError):
            MiniRocket().transform(series)
        with pytest.raises(NotFittedError):
            _ = MiniRocket().n_features_out

    def test_too_few_features_rejected(self):
        with pytest.raises(ConfigurationError):
            MiniRocket(num_features=50)

    def test_too_short_series_rejected(self):
        with pytest.raises(SignalError):
            MiniRocket(num_features=420).fit(np.zeros((3, 5)))

    def test_empty_input_rejected(self):
        with pytest.raises(SignalError):
            MiniRocket(num_features=420).fit(np.zeros((0, 100)))

    def test_offset_invariance_of_valid_pooled_features(self, series):
        """Zero-sum kernels cancel constant offsets exactly wherever the
        PPV pools only the unpadded convolution region."""
        rocket = MiniRocket(num_features=420, seed=0).fit(series)
        mask = rocket.valid_pooling_mask
        assert mask.shape == (rocket.n_features_out,)
        assert mask.any() and (~mask).any()
        base = rocket.transform(series)
        shifted = rocket.transform(series + 100.0)
        assert np.allclose(base[:, mask], shifted[:, mask])

    def test_separates_frequency_classes(self, series):
        """Features must linearly separate an easy two-class problem."""
        rng = np.random.default_rng(1)
        t = np.linspace(0, 6.28, 200)
        a = np.array([np.sin(2 * t + rng.uniform(0, 6)) for _ in range(15)])
        b = np.array([np.sin(3 * t + rng.uniform(0, 6)) for _ in range(15)])
        x = np.vstack([a, b])
        rocket = MiniRocket(num_features=840, seed=0)
        f = rocket.fit_transform(x)
        # Class means in feature space must be further apart than the
        # average intra-class spread.
        mu_a, mu_b = f[:15].mean(axis=0), f[15:].mean(axis=0)
        gap = np.linalg.norm(mu_a - mu_b)
        spread = 0.5 * (
            np.mean(np.linalg.norm(f[:15] - mu_a, axis=1))
            + np.mean(np.linalg.norm(f[15:] - mu_b, axis=1))
        )
        assert gap > 0.5 * spread

    @given(st.integers(min_value=84, max_value=3000))
    @settings(max_examples=10, deadline=None)
    def test_realized_budget_close_to_requested(self, budget):
        x = np.random.default_rng(0).normal(size=(3, 64))
        rocket = MiniRocket(num_features=budget, seed=0).fit(x)
        realized = rocket.n_features_out
        assert realized >= min(budget, NUM_KERNELS)
        assert realized <= budget + NUM_KERNELS * 32
