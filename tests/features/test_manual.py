"""Unit tests for the manual feature extractor."""

import numpy as np
import pytest

from repro.errors import NotFittedError, SignalError
from repro.features import ManualFeatureExtractor, manual_feature_names
from repro.features.manual import _STAT_NAMES


@pytest.fixture(scope="module")
def waveforms():
    rng = np.random.default_rng(0)
    t = np.linspace(0, 6.28, 120)
    return np.stack(
        [
            np.stack([np.sin(2 * t) + 0.1 * rng.normal(size=t.size) for _ in range(2)])
            for _ in range(6)
        ]
    )  # (6, 2, 120)


class TestFeatureNames:
    def test_count(self):
        names = manual_feature_names(4)
        assert len(names) == 4 * len(_STAT_NAMES)

    def test_channel_prefixes(self):
        names = manual_feature_names(2)
        assert names[0].startswith("ch0_")
        assert names[-1].startswith("ch1_")


class TestExtractor:
    def test_transform_shape(self, waveforms):
        extractor = ManualFeatureExtractor().fit(waveforms)
        features = extractor.transform(waveforms)
        assert features.shape == (6, 2 * len(_STAT_NAMES))

    def test_dtw_column_small_for_enrollment_data(self, waveforms):
        extractor = ManualFeatureExtractor().fit(waveforms)
        features = extractor.transform(waveforms)
        dtw_cols = features[:, len(_STAT_NAMES) - 1 :: len(_STAT_NAMES)]
        # Distances to the medoid template of the same data are small.
        assert np.mean(dtw_cols) < 0.2

    def test_transform_before_fit_rejected(self, waveforms):
        with pytest.raises(NotFittedError):
            ManualFeatureExtractor().transform(waveforms)

    def test_channel_mismatch_rejected(self, waveforms):
        extractor = ManualFeatureExtractor().fit(waveforms)
        with pytest.raises(SignalError):
            extractor.transform(waveforms[:, :1, :])

    def test_single_enrollment_sample(self):
        x = np.random.default_rng(0).normal(size=(1, 2, 50))
        extractor = ManualFeatureExtractor().fit(x)
        assert extractor.transform(x).shape[0] == 1

    def test_template_distances_discriminate(self):
        rng = np.random.default_rng(1)
        t = np.linspace(0, 6.28, 100)
        own = np.stack(
            [np.stack([np.sin(2 * t) + 0.05 * rng.normal(size=t.size)]) for _ in range(5)]
        )
        other = np.stack(
            [np.stack([np.sin(3.2 * t) + 0.05 * rng.normal(size=t.size)]) for _ in range(5)]
        )
        extractor = ManualFeatureExtractor().fit(own)
        d_own = extractor.template_distances(own)
        d_other = extractor.template_distances(other)
        assert d_other.mean() > 3 * d_own.mean()

    def test_invalid_stride(self):
        with pytest.raises(SignalError):
            ManualFeatureExtractor(dtw_stride=0)

    def test_empty_input_rejected(self):
        with pytest.raises(SignalError):
            ManualFeatureExtractor().fit(np.zeros((0, 2, 50)))

    def test_stride_reduces_cost_not_shape(self, waveforms):
        fast = ManualFeatureExtractor(dtw_stride=4).fit(waveforms)
        features = fast.transform(waveforms)
        assert features.shape == (6, 2 * len(_STAT_NAMES))
