"""Tier-1-safe performance smoke test for the MiniRocket engines.

Uses the reference-loop budget recorded in ``BENCH_minirocket.json``
(committed by ``scripts/bench_transform.py``) as a machine-independent
yardstick: the production transform path must finish the same smoke
case well inside that budget, re-measured locally, so a regression that
reintroduces per-kernel Python looping fails loudly while slow CI
machines do not. Skips when the benchmark file is missing.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.features.minirocket import MiniRocket

_BENCH = Path(__file__).resolve().parents[2] / "BENCH_minirocket.json"


@pytest.mark.skipif(not _BENCH.exists(), reason="BENCH_minirocket.json missing")
def test_default_transform_beats_reference_budget():
    report = json.loads(_BENCH.read_text())
    case = next(c for c in report["cases"] if c["case"] == "smoke-1ch")

    rng = np.random.default_rng(42)
    x = rng.normal(size=(case["n_instances"], case["n_channels"], case["length"]))

    rocket = MiniRocket(num_features=840, seed=0).fit(x)
    rocket.transform(x)  # warm up (possible one-time C compile)

    # Budget: the *local* reference loop, so slow machines self-scale.
    start = time.perf_counter()
    rocket._transform_reference(x)
    reference_s = time.perf_counter() - start

    start = time.perf_counter()
    rocket.transform(x)
    default_s = time.perf_counter() - start

    # The recorded run showed the default path 5x+ faster than the
    # loop; 3x of the reference budget leaves huge headroom for timer
    # noise while still catching a fallback to per-kernel looping.
    assert default_s <= 3.0 * max(reference_s, case["transform"]["reference"]["best_s"])
