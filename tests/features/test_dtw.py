"""Unit and property tests for banded DTW."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SignalError
from repro.features import dtw_distance


class TestDTW:
    def test_identical_sequences_zero(self):
        x = np.sin(np.linspace(0, 6, 100))
        assert dtw_distance(x, x) == pytest.approx(0.0)

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=50), rng.normal(size=50)
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_tolerates_small_time_shift(self):
        """DTW must forgive a shift that Euclidean distance punishes."""
        t = np.linspace(0, 6.28, 200)
        a = np.sin(t)
        b = np.sin(t + 0.2)
        dtw = dtw_distance(a, b, band_fraction=0.2)
        euclid = float(np.mean((a - b) ** 2))
        assert dtw < 0.3 * euclid

    def test_different_shapes_cost_more(self):
        t = np.linspace(0, 6.28, 100)
        sin_cos = dtw_distance(np.sin(t), np.cos(t))
        sin_shift = dtw_distance(np.sin(t), np.sin(t + 0.1))
        assert sin_cos > 5 * sin_shift

    def test_unequal_lengths(self):
        a = np.sin(np.linspace(0, 6.28, 100))
        b = np.sin(np.linspace(0, 6.28, 80))
        d = dtw_distance(a, b, band_fraction=0.1)
        assert np.isfinite(d)
        assert d < 0.05

    def test_wider_band_never_increases_cost(self):
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=60), rng.normal(size=60)
        narrow = dtw_distance(a, b, band_fraction=0.05)
        wide = dtw_distance(a, b, band_fraction=1.0)
        assert wide <= narrow + 1e-12

    def test_empty_rejected(self):
        with pytest.raises(SignalError):
            dtw_distance(np.array([]), np.zeros(5))

    def test_2d_rejected(self):
        with pytest.raises(SignalError):
            dtw_distance(np.zeros((2, 5)), np.zeros(5))

    def test_invalid_band(self):
        with pytest.raises(ConfigurationError):
            dtw_distance(np.zeros(5), np.zeros(5), band_fraction=0.0)

    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_non_negative_and_symmetric(self, xs, ys):
        a, b = np.asarray(xs), np.asarray(ys)
        d = dtw_distance(a, b)
        assert d >= 0.0
        assert d == pytest.approx(dtw_distance(b, a))

    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=2,
            max_size=30,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_self_distance_zero(self, xs):
        a = np.asarray(xs)
        assert dtw_distance(a, a) == pytest.approx(0.0)
