"""Bit-exact parity between the MiniRocket engines.

The vectorized NumPy engine and the compiled C kernel must reproduce
the original per-kernel reference loop *exactly* — every assertion here
uses ``atol=0, rtol=0`` (or ``np.array_equal``). The engines are
constructed to preserve the reference's floating-point evaluation
order, so this is equality by design, not by tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.features import minirocket as mr
from repro.features.minirocket import (
    KERNEL_INDICES,
    NUM_KERNELS,
    MiniRocket,
    _golden_quantiles,
)

ENGINES = ["vectorized"] + (["c"] if mr._ckernel.available() else [])


def _data(n, channels, length, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, channels, length))
    return x + np.sin(np.linspace(0.0, 2.5, length))


def _pair(engine, **kwargs):
    """A fast-engine instance and an identically-seeded twin."""
    return MiniRocket(engine=engine, **kwargs), MiniRocket(**kwargs)


@pytest.mark.parametrize("engine", ENGINES)
class TestEngineParity:
    def test_univariate(self, engine):
        x = _data(12, 1, 90)
        fast, ref = _pair(engine, num_features=840)
        got = fast.fit(x).transform(x)
        expected = ref.fit(x)._transform_reference(x)
        np.testing.assert_allclose(got, expected, rtol=0, atol=0)

    def test_multivariate(self, engine):
        x = _data(10, 4, 90, seed=3)
        fast, ref = _pair(engine, num_features=1996)
        got = fast.fit(x).transform(x)
        expected = ref.fit(x)._transform_reference(x)
        np.testing.assert_allclose(got, expected, rtol=0, atol=0)

    @pytest.mark.parametrize("length", [17, 33, 91, 127])
    def test_odd_lengths(self, engine, length):
        x = _data(6, 2, length, seed=length)
        fast, ref = _pair(engine, num_features=504)
        got = fast.fit(x).transform(x)
        expected = ref.fit(x)._transform_reference(x)
        np.testing.assert_allclose(got, expected, rtol=0, atol=0)

    def test_single_dilation_per_kernel(self, engine):
        x = _data(5, 1, 60, seed=9)
        fast, ref = _pair(engine, num_features=420, max_dilations_per_kernel=1)
        got = fast.fit(x).transform(x)
        expected = ref.fit(x)._transform_reference(x)
        np.testing.assert_allclose(got, expected, rtol=0, atol=0)

    def test_batch_size_invariance(self, engine):
        """Instance batching is an implementation detail: any chunking
        must give the same matrix."""
        x = _data(11, 2, 90, seed=5)
        outputs = []
        for batch_size in (1, 7, 256):
            rocket = MiniRocket(
                num_features=840, batch_size=batch_size, engine=engine
            )
            outputs.append(rocket.fit(x).transform(x))
        np.testing.assert_allclose(outputs[0], outputs[1], rtol=0, atol=0)
        np.testing.assert_allclose(outputs[0], outputs[2], rtol=0, atol=0)

    @settings(max_examples=12, deadline=None, derandomize=True)
    @given(
        n=st.integers(min_value=1, max_value=6),
        channels=st.integers(min_value=1, max_value=3),
        length=st.integers(min_value=12, max_value=64),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_shapes(self, engine, n, channels, length, seed):
        x = _data(n, channels, length, seed=seed)
        fast, ref = _pair(engine, num_features=336)
        got = fast.fit(x).transform(x)
        expected = ref.fit(x)._transform_reference(x)
        np.testing.assert_allclose(got, expected, rtol=0, atol=0)


class TestFitParity:
    def test_biases_match_per_kernel_quantile_loop(self):
        """The batched-quantile fit must reproduce the original
        per-kernel ``np.quantile`` calls bit-for-bit."""
        x = _data(8, 2, 90, seed=7)
        rocket = MiniRocket(num_features=840, seed=0).fit(x)

        # Reimplementation of the original fit's bias computation,
        # consuming the RNG in the same (channel-outer, dilation-inner)
        # order.
        rng = np.random.default_rng(0)
        n, channels, length = x.shape
        for ch in range(channels):
            for d_idx, dilation in enumerate(rocket._dilations):
                n_feat = int(rocket._features_per_dilation[d_idx])
                example = x[int(rng.integers(0, n)), ch]
                stack = mr._shifted_stack(example[np.newaxis, :], int(dilation))[
                    :, 0, :
                ]
                quantiles = _golden_quantiles(NUM_KERNELS * n_feat).reshape(
                    NUM_KERNELS, n_feat
                )
                expected = np.empty((NUM_KERNELS, n_feat))
                for k, indices in enumerate(KERNEL_INDICES):
                    conv = -stack.sum(axis=0) + 3.0 * stack[list(indices)].sum(
                        axis=0
                    )
                    expected[k] = np.quantile(conv, quantiles[k])
                np.testing.assert_allclose(
                    rocket._biases[ch][d_idx], expected, rtol=0, atol=0
                )


class TestAs3d:
    def test_no_copy_for_contiguous_float64(self):
        x = np.zeros((4, 2, 30))
        assert np.shares_memory(MiniRocket._as_3d(x), x)

    def test_2d_view_not_copy(self):
        x = np.zeros((4, 30))
        out = MiniRocket._as_3d(x)
        assert out.shape == (4, 1, 30)
        assert np.shares_memory(out, x)

    def test_non_float64_is_converted(self):
        x = np.zeros((4, 2, 30), dtype=np.float32)
        out = MiniRocket._as_3d(x)
        assert out.dtype == np.float64
        assert not np.shares_memory(out, x)

    def test_non_contiguous_is_copied_contiguous(self):
        x = np.zeros((4, 2, 60))[:, :, ::2]
        out = MiniRocket._as_3d(x)
        assert out.flags.c_contiguous


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            MiniRocket(engine="fortran")

    def test_env_var_selects_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_MINIROCKET_ENGINE", "reference")
        assert mr._resolve_engine(None) == "reference"
        monkeypatch.setenv("REPRO_MINIROCKET_ENGINE", "vectorized")
        assert mr._resolve_engine(None) == "vectorized"

    def test_auto_resolves_to_concrete_engine(self):
        assert mr._resolve_engine("auto") in ("c", "vectorized")

    def test_reference_engine_transform(self):
        x = _data(4, 1, 50)
        rocket = MiniRocket(num_features=336, engine="reference")
        out = rocket.fit(x).transform(x)
        expected = rocket._transform_reference(x)
        np.testing.assert_allclose(out, expected, rtol=0, atol=0)
