"""Unit tests for optical channel mixing."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.physio.noise import sample_noise_params
from repro.sensing.channels import ChannelMixer, SourceSignals
from repro.types import ChannelInfo, Wavelength


@pytest.fixture()
def sources(rng):
    n = 400
    return SourceSignals(
        cardiac=rng.normal(size=n),
        mechanical=rng.normal(size=n),
        vascular=rng.normal(size=n),
        fs=100.0,
    )


@pytest.fixture()
def mixer():
    return ChannelMixer(SimulationConfig())


@pytest.fixture()
def coupling():
    return np.ones((2, 3))


class TestSourceSignals:
    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            SourceSignals(
                cardiac=np.zeros(10),
                mechanical=np.zeros(11),
                vascular=np.zeros(10),
                fs=100.0,
            )

    def test_stack_order(self, sources):
        stacked = sources.stack()
        assert stacked.shape == (3, sources.n_samples)
        assert np.array_equal(stacked[0], sources.cardiac)
        assert np.array_equal(stacked[2], sources.vascular)


class TestMixingMatrix:
    def test_shape(self, mixer, coupling):
        assert mixer.mixing_matrix(coupling).shape == (4, 3)

    def test_infrared_sees_more_cardiac_than_red(self, mixer, coupling):
        matrix = mixer.mixing_matrix(coupling)
        by_channel = dict(zip(mixer.channels, matrix))
        for site in (0, 1):
            ir = by_channel[ChannelInfo(site, Wavelength.INFRARED)]
            red = by_channel[ChannelInfo(site, Wavelength.RED)]
            assert ir[0] > red[0]

    def test_red_overweights_vascular_relative_to_mechanical(
        self, mixer, coupling
    ):
        matrix = mixer.mixing_matrix(coupling)
        by_channel = dict(zip(mixer.channels, matrix))
        red = by_channel[ChannelInfo(0, Wavelength.RED)]
        ir = by_channel[ChannelInfo(0, Wavelength.INFRARED)]
        assert red[2] / red[1] > ir[2] / ir[1]

    def test_site_coupling_scales_rows(self, mixer):
        coupling = np.ones((2, 3))
        coupling[1] *= 2.0
        matrix = mixer.mixing_matrix(coupling)
        site0_rows = [i for i, c in enumerate(mixer.channels) if c.sensor_site == 0]
        site1_rows = [i for i, c in enumerate(mixer.channels) if c.sensor_site == 1]
        assert np.allclose(matrix[site1_rows], 2.0 * matrix[site0_rows])

    def test_bad_coupling_shape_rejected(self, mixer):
        with pytest.raises(ConfigurationError):
            mixer.mixing_matrix(np.ones((3, 2)))

    def test_empty_channels_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelMixer(SimulationConfig(), channels=())


class TestMix:
    def test_output_shape(self, mixer, sources, coupling, rng):
        noise = sample_noise_params(rng, SimulationConfig())
        out = mixer.mix(sources, coupling, noise, rng)
        assert out.shape == (4, sources.n_samples)

    def test_red_channels_are_noisier(self, rng):
        """red_noise_factor must surface as extra wideband noise."""
        config = SimulationConfig()
        mixer = ChannelMixer(config)
        n = 5000
        silent = SourceSignals(
            cardiac=np.zeros(n),
            mechanical=np.zeros(n),
            vascular=np.zeros(n),
            fs=100.0,
        )
        noise = sample_noise_params(rng, config)
        red_levels, ir_levels = [], []
        for seed in range(5):
            out = mixer.mix(
                silent, np.ones((2, 3)), noise, np.random.default_rng(seed)
            )
            for row, info in zip(out, mixer.channels):
                # Compare wideband content via first differences, which
                # suppresses the shared baseline wander.
                level = np.std(np.diff(row))
                if info.wavelength is Wavelength.RED:
                    red_levels.append(level)
                else:
                    ir_levels.append(level)
        assert np.mean(red_levels) > 1.2 * np.mean(ir_levels)
