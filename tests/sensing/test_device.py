"""Unit tests for the wearable prototype facade."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.physio.noise import sample_noise_params
from repro.sensing.channels import SourceSignals
from repro.sensing.device import WearablePrototype
from repro.types import PROTOTYPE_CHANNELS


@pytest.fixture()
def device():
    return WearablePrototype(SimulationConfig())


class TestCapture:
    def test_recording_structure(self, device, rng):
        n = 300
        sources = SourceSignals(
            cardiac=rng.normal(size=n),
            mechanical=np.zeros(n),
            vascular=np.zeros(n),
            fs=100.0,
        )
        noise = sample_noise_params(rng, device.config)
        rec = device.capture(sources, np.ones((2, 3)), noise, rng)
        assert rec.n_channels == 4
        assert rec.n_samples == n
        assert rec.fs == 100.0
        assert rec.channels == PROTOTYPE_CHANNELS

    def test_samples_are_quantized(self, device, rng):
        n = 200
        sources = SourceSignals(
            cardiac=rng.normal(size=n),
            mechanical=np.zeros(n),
            vascular=np.zeros(n),
            fs=100.0,
        )
        noise = sample_noise_params(rng, device.config)
        rec = device.capture(sources, np.ones((2, 3)), noise, rng)
        step = device.config.adc_full_scale / 2 ** (device.config.adc_bits - 1)
        ratio = rec.samples / step
        assert np.allclose(ratio, np.round(ratio))


class TestReportTimes:
    def test_jitter_from_config(self, device, rng):
        times = np.linspace(1, 5, 20)
        out = device.report_times(times, rng)
        assert np.all(np.abs(out - times) <= device.config.timestamp_jitter)
