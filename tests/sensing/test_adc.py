"""Unit tests for ADC quantization."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.sensing.adc import quantize


class TestQuantize:
    def test_values_land_on_grid(self):
        out = quantize(np.array([0.1234, -3.5]), bits=8, full_scale=4.0)
        step = 4.0 / 2 ** 7
        assert np.allclose(np.round(out / step), out / step)

    def test_clipping(self):
        out = quantize(np.array([100.0, -100.0]), bits=8, full_scale=4.0)
        assert out[0] <= 4.0
        assert out[1] >= -4.0

    def test_high_resolution_nearly_identity(self):
        x = np.linspace(-1, 1, 101)
        out = quantize(x, bits=18, full_scale=24.0)
        assert np.max(np.abs(out - x)) < 1e-3

    def test_idempotent(self):
        x = np.random.default_rng(0).normal(size=100)
        once = quantize(x, bits=10, full_scale=8.0)
        twice = quantize(once, bits=10, full_scale=8.0)
        assert np.array_equal(once, twice)

    def test_preserves_shape(self):
        x = np.zeros((4, 7))
        assert quantize(x).shape == (4, 7)

    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            quantize(np.zeros(3), bits=1)

    def test_invalid_full_scale(self):
        with pytest.raises(ConfigurationError):
            quantize(np.zeros(3), full_scale=0.0)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
        st.integers(min_value=2, max_value=20),
    )
    def test_error_bounded_by_step(self, values, bits):
        """Quantization error never exceeds one step (inside range)."""
        full_scale = 16.0
        x = np.clip(np.asarray(values), -full_scale, full_scale - 1e-9)
        out = quantize(x, bits=bits, full_scale=full_scale)
        step = full_scale / 2 ** (bits - 1)
        assert np.all(np.abs(out - x) <= step + 1e-12)
