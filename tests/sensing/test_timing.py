"""Unit tests for the keystroke timestamp channel."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.sensing.timing import report_keystroke_times


class TestReportTimes:
    def test_zero_jitter_is_identity(self, rng):
        times = [1.0, 2.2, 3.1]
        out = report_keystroke_times(times, 0.0, rng)
        assert np.allclose(out, times)

    def test_offsets_bounded(self, rng):
        times = np.linspace(1, 10, 50)
        out = report_keystroke_times(times, 0.12, rng)
        assert np.all(np.abs(out - times) <= 0.12)

    def test_negative_jitter_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            report_keystroke_times([1.0], -0.1, rng)

    def test_length_preserved(self, rng):
        assert report_keystroke_times([1.0, 2.0], 0.1, rng).shape == (2,)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_property_bounded_jitter(self, times, jitter):
        rng = np.random.default_rng(0)
        out = report_keystroke_times(times, jitter, rng)
        assert np.all(np.abs(out - np.asarray(times)) <= jitter + 1e-12)
