"""Unit tests for the cross-device transfer transform."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import fault_rng
from repro.sensing import DEVICE_PROFILES, CrossDeviceTransform, DeviceProfile


class TestDeviceProfiles:
    def test_registry_devices(self):
        assert set(DEVICE_PROFILES) == {"watch_b", "band_c"}

    def test_profiles_are_four_channel(self):
        for profile in DEVICE_PROFILES.values():
            matrix = np.asarray(profile.channel_mix)
            assert matrix.shape == (4, 4)
            assert len(profile.gains) == 4
            assert len(profile.offsets) == 4

    def test_non_square_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceProfile(
                name="bad",
                channel_mix=((1.0, 0.0),),
                fs=50.0,
                gains=(1.0, 1.0),
                offsets=(0.0, 0.0),
            )

    def test_mismatched_gains_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceProfile(
                name="bad",
                channel_mix=((1.0, 0.0), (0.0, 1.0)),
                fs=50.0,
                gains=(1.0,),
                offsets=(0.0, 0.0),
            )

    def test_non_positive_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceProfile(
                name="bad",
                channel_mix=((1.0,),),
                fs=0.0,
                gains=(1.0,),
                offsets=(0.0,),
            )


class TestCrossDeviceTransform:
    def test_unknown_device_rejected(self):
        with pytest.raises(ConfigurationError):
            CrossDeviceTransform(intensity=0.5, device="toaster")

    def test_intensity_zero_is_same_object(self, one_trial):
        transform = CrossDeviceTransform(intensity=0.0)
        assert transform.apply(one_trial, fault_rng(0, "xd")) is one_trial

    @pytest.mark.parametrize("device", sorted(DEVICE_PROFILES))
    def test_metadata_contract_preserved(self, device, one_trial):
        """The probe keeps the pipeline's container: channel count,
        sampling rate, and sample count are untouched — only the
        information content changes."""
        transform = CrossDeviceTransform(intensity=1.0, device=device)
        out = transform.apply(one_trial, fault_rng(0, "xd", device))
        assert out is not one_trial
        assert out.recording.fs == one_trial.recording.fs
        assert out.recording.n_channels == one_trial.recording.n_channels
        assert out.recording.n_samples == one_trial.recording.n_samples
        assert out.recording.channels == one_trial.recording.channels
        assert out.events == one_trial.events
        assert not np.array_equal(
            out.recording.samples, one_trial.recording.samples
        )

    def test_deterministic_under_seeded_rng(self, one_trial):
        transform = CrossDeviceTransform(intensity=0.6, device="band_c")
        a = transform.apply(one_trial, fault_rng(4, "xd"))
        b = transform.apply(one_trial, fault_rng(4, "xd"))
        assert np.array_equal(a.recording.samples, b.recording.samples)

    def test_band_c_loses_more_than_watch_b(self, one_trial):
        """The 25 Hz budget band destroys more signal than the 64 Hz
        watch: its round trip removes everything above 12.5 Hz."""

        def distortion(device):
            out = CrossDeviceTransform(intensity=1.0, device=device).apply(
                one_trial, fault_rng(0, device)
            )
            return float(
                np.abs(out.recording.samples - one_trial.recording.samples).mean()
            )

        assert distortion("band_c") > distortion("watch_b")

    def test_intensity_interpolates(self, one_trial):
        def distortion(intensity):
            out = CrossDeviceTransform(
                intensity=intensity, device="watch_b"
            ).apply(one_trial, fault_rng(0, "interp"))
            return float(
                np.abs(out.recording.samples - one_trial.recording.samples).mean()
            )

        assert distortion(0.25) < distortion(1.0)
