"""Unit tests for the daily-wear scenario transforms."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    SCENARIO_TYPES,
    MotionStateScenario,
    fault_rng,
    make_scenario,
)


def _trials_equal(a, b):
    """Bit-exact trial comparison (NaN-aware on the samples)."""
    return (
        np.array_equal(a.recording.samples, b.recording.samples, equal_nan=True)
        and a.recording.fs == b.recording.fs
        and a.events == b.events
        and a.pin == b.pin
    )


class TestRegistry:
    def test_expected_scenarios_registered(self):
        assert set(SCENARIO_TYPES) == {
            "resting",
            "typing_while_walking",
            "commute",
            "cross_device",
        }

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scenario("skydiving", 0.5)


class TestNoOpAtZero:
    @pytest.mark.parametrize("name", sorted(SCENARIO_TYPES))
    def test_intensity_zero_returns_same_object(self, name, one_trial):
        scenario = make_scenario(name, 0.0)
        assert scenario.apply(one_trial, fault_rng(0, name)) is one_trial


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(SCENARIO_TYPES))
    def test_same_seed_same_output(self, name, one_trial):
        a = make_scenario(name, 0.7).apply(one_trial, fault_rng(3, name))
        b = make_scenario(name, 0.7).apply(one_trial, fault_rng(3, name))
        assert _trials_equal(a, b)

    def test_different_seed_differs(self, one_trial):
        scenario = make_scenario("typing_while_walking", 0.8)
        a = scenario.apply(one_trial, fault_rng(1, "tw"))
        b = scenario.apply(one_trial, fault_rng(2, "tw"))
        assert not _trials_equal(a, b)


class TestSemantics:
    @pytest.mark.parametrize("name", sorted(SCENARIO_TYPES))
    def test_full_intensity_changes_samples_not_container(
        self, name, one_trial
    ):
        out = make_scenario(name, 1.0).apply(one_trial, fault_rng(0, name))
        assert out is not one_trial
        assert out.recording.fs == one_trial.recording.fs
        assert out.recording.samples.shape == one_trial.recording.samples.shape
        assert not np.array_equal(
            out.recording.samples, one_trial.recording.samples, equal_nan=True
        )

    def test_burst_cadence_scales_with_duration(self, one_trial):
        """A sustained motion state pollutes more of a longer entry: the
        walking scenario at full intensity perturbs most of the trial,
        unlike a fixed two-burst transient."""
        scenario = make_scenario("typing_while_walking", 1.0)
        out = scenario.apply(one_trial, fault_rng(5, "cadence"))
        changed = np.any(
            out.recording.samples != one_trial.recording.samples, axis=0
        )
        assert changed.mean() > 0.5

    def test_commute_drops_samples(self, one_trial):
        out = make_scenario("commute", 1.0).apply(
            one_trial, fault_rng(0, "commute")
        )
        assert np.isnan(out.recording.samples).any()

    def test_resting_is_gentle(self, one_trial):
        """The near-clean control perturbs far less than walking."""
        rest = make_scenario("resting", 1.0).apply(
            one_trial, fault_rng(0, "r")
        )
        walk = make_scenario("typing_while_walking", 1.0).apply(
            one_trial, fault_rng(0, "w")
        )
        delta = lambda t: float(  # noqa: E731
            np.nanmean(np.abs(t.recording.samples - one_trial.recording.samples))
        )
        assert delta(rest) < delta(walk)


class TestValidation:
    def test_intensity_out_of_range(self):
        with pytest.raises(ConfigurationError):
            MotionStateScenario(intensity=1.5)

    def test_negative_cadence_rejected(self):
        with pytest.raises(ConfigurationError):
            MotionStateScenario(intensity=0.5, bursts_per_second=-1.0)

    def test_gain_fraction_bounded(self):
        with pytest.raises(ConfigurationError):
            MotionStateScenario(intensity=0.5, gain_fraction=1.5)

    def test_dropout_fraction_bounded(self):
        with pytest.raises(ConfigurationError):
            MotionStateScenario(intensity=0.5, dropout_fraction=-0.1)
