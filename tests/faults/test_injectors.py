"""Unit tests for the fault-injection subsystem."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FAULT_SEED_ENV,
    FAULT_TYPES,
    ChannelDropout,
    ClockDrift,
    FaultChain,
    GainDrift,
    SampleDropout,
    SensorDisconnect,
    TimestampDuplication,
    fault_rng,
    make_fault,
    resolve_fault_seed,
    stable_fault_seed,
)


def _trials_equal(a, b):
    """Bit-exact trial comparison (NaN-aware on the samples)."""
    return (
        np.array_equal(a.recording.samples, b.recording.samples, equal_nan=True)
        and a.recording.fs == b.recording.fs
        and a.events == b.events
        and a.pin == b.pin
    )


class TestSeeding:
    def test_resolve_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(FAULT_SEED_ENV, "99")
        assert resolve_fault_seed(3) == 3

    def test_resolve_env_fallback(self, monkeypatch):
        monkeypatch.setenv(FAULT_SEED_ENV, "42")
        assert resolve_fault_seed() == 42

    def test_resolve_default_zero(self, monkeypatch):
        monkeypatch.delenv(FAULT_SEED_ENV, raising=False)
        assert resolve_fault_seed() == 0

    def test_resolve_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            resolve_fault_seed(-1)

    def test_resolve_rejects_garbage_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_SEED_ENV, "not-a-seed")
        with pytest.raises(ConfigurationError):
            resolve_fault_seed()

    def test_stable_seed_is_content_keyed(self):
        assert stable_fault_seed(1, "a", 0.5) == stable_fault_seed(1, "a", 0.5)
        assert stable_fault_seed(1, "a", 0.5) != stable_fault_seed(1, "b", 0.5)

    def test_fault_rng_reproduces(self):
        a = fault_rng(7, "sample_dropout", 0.5).random(4)
        b = fault_rng(7, "sample_dropout", 0.5).random(4)
        assert np.array_equal(a, b)


class TestNoOpAtZero:
    @pytest.mark.parametrize("name", sorted(FAULT_TYPES))
    def test_intensity_zero_returns_same_object(self, name, one_trial):
        fault = make_fault(name, 0.0)
        out = fault.apply(one_trial, fault_rng(0, name))
        assert out is one_trial

    def test_zero_chain_is_identity(self, one_trial):
        chain = FaultChain(
            faults=tuple(make_fault(name, 0.0) for name in sorted(FAULT_TYPES))
        )
        assert chain.apply(one_trial, fault_rng(0, "chain")) is one_trial


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(FAULT_TYPES))
    def test_same_seed_same_output(self, name, one_trial):
        fault = make_fault(name, 0.7)
        a = fault.apply(one_trial, fault_rng(3, name, 0.7))
        b = fault.apply(one_trial, fault_rng(3, name, 0.7))
        assert _trials_equal(a, b)

    def test_different_seed_differs(self, one_trial):
        fault = SampleDropout(intensity=0.8)
        a = fault.apply(one_trial, fault_rng(1, "sd"))
        b = fault.apply(one_trial, fault_rng(2, "sd"))
        assert not _trials_equal(a, b)


class TestValidation:
    def test_intensity_out_of_range(self):
        with pytest.raises(ConfigurationError):
            SampleDropout(intensity=1.5)
        with pytest.raises(ConfigurationError):
            ChannelDropout(intensity=-0.1)

    def test_unknown_fault_name(self):
        with pytest.raises(ConfigurationError):
            make_fault("cosmic_rays", 0.5)

    def test_bad_dropout_fill(self):
        with pytest.raises(ConfigurationError):
            SampleDropout(intensity=0.5, fill="zero")

    def test_registry_covers_all_injectors(self):
        assert sorted(FAULT_TYPES) == [
            "channel_dropout",
            "clock_drift",
            "gain_drift",
            "motion_burst",
            "sample_dropout",
            "sensor_disconnect",
            "timestamp_duplication",
        ]


class TestFaultSemantics:
    def test_sample_dropout_marks_nan_on_all_channels(self, one_trial):
        fault = SampleDropout(intensity=1.0)
        out = fault.apply(one_trial, fault_rng(0, "sd"))
        missing = ~np.isfinite(out.recording.samples)
        # A BLE frame carries all channels: the mask is shared.
        assert missing.any()
        assert np.array_equal(missing[0], missing[1])
        fraction = float(np.mean(missing[0]))
        assert fraction <= fault.max_drop_fraction + 0.05

    def test_sample_dropout_hold_keeps_finite(self, one_trial):
        fault = SampleDropout(intensity=1.0, fill="hold")
        out = fault.apply(one_trial, fault_rng(0, "sd"))
        assert np.all(np.isfinite(out.recording.samples))
        assert not np.array_equal(
            out.recording.samples, one_trial.recording.samples
        )

    def test_clock_drift_moves_reported_not_true_times(self, one_trial):
        fault = ClockDrift(intensity=1.0)
        out = fault.apply(one_trial, fault_rng(0, "cd"))
        for before, after in zip(one_trial.events, out.events):
            assert after.true_time == before.true_time
            assert after.reported_time != before.reported_time
        # Monotone drift preserves press order.
        reported = [e.reported_time for e in out.events]
        assert reported == sorted(reported)

    def test_timestamp_duplication_copies_predecessor(self, one_trial):
        fault = TimestampDuplication(intensity=1.0)
        out = fault.apply(one_trial, fault_rng(0, "td"))
        reported = [e.reported_time for e in out.events]
        # Probability 1: every event inherits the first one's stamp.
        assert len(set(reported)) == 1
        assert reported[0] == one_trial.events[0].reported_time

    def test_channel_dropout_kills_one_channel(self, one_trial):
        fault = ChannelDropout(intensity=1.0)
        out = fault.apply(one_trial, fault_rng(0, "chd"))
        dead = [
            i
            for i in range(out.recording.n_channels)
            if np.all(np.isnan(out.recording.samples[i]))
        ]
        assert len(dead) == 1

    def test_sensor_disconnect_truncates_but_keeps_events(self, one_trial):
        fault = SensorDisconnect(intensity=1.0)
        out = fault.apply(one_trial, fault_rng(0, "dc"))
        assert out.recording.n_samples < one_trial.recording.n_samples
        assert out.events == one_trial.events

    def test_gain_drift_ramps_from_unity(self, one_trial):
        fault = GainDrift(intensity=1.0)
        out = fault.apply(one_trial, fault_rng(0, "gd"))
        # The ramp starts at gain 1.0: first sample is untouched.
        assert np.allclose(
            out.recording.samples[:, 0], one_trial.recording.samples[:, 0]
        )
        assert not np.allclose(
            out.recording.samples[:, -1], one_trial.recording.samples[:, -1]
        )

    def test_motion_burst_preserves_shape_and_finiteness(self, one_trial):
        fault = make_fault("motion_burst", 1.0)
        out = fault.apply(one_trial, fault_rng(0, "mb"))
        assert out.recording.samples.shape == one_trial.recording.samples.shape
        assert np.all(np.isfinite(out.recording.samples))
        assert not np.array_equal(
            out.recording.samples, one_trial.recording.samples
        )

    def test_chain_composes_in_order(self, one_trial):
        chain = FaultChain(
            faults=(GainDrift(intensity=0.5), SensorDisconnect(intensity=1.0))
        )
        out = chain.apply(one_trial, fault_rng(0, "chain"))
        assert out.recording.n_samples < one_trial.recording.n_samples
