"""Fixture-driven self-tests for the ``tools.reprolint`` linter.

Each rule must (a) fire on its seeded-bad fixture with the exact rule id
and line number and (b) stay silent on the shared ``clean.py`` fixture of
near-miss patterns.  Suppression comments, allowlists, CLI behaviour, and
the repo-wide clean-run acceptance criterion are covered as well.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from tools.reprolint import ALL_RULES, lint_file, lint_paths, lint_source
from tools.reprolint.cli import main
from tools.reprolint.engine import (
    DEFAULT_ALLOWLIST,
    PARSE_ERROR_ID,
    Suppressions,
    iter_python_files,
)
from tools.reprolint.rules import RULES_BY_ID

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def findings_for(name):
    """(rule_id, line) pairs for a fixture, bypassing path allowlists."""
    result = lint_file(FIXTURES / name, allowlist={})
    return [(f.rule_id, f.line) for f in result.findings]


class TestRuleFixtures:
    def test_rl001_falsy_default(self):
        assert findings_for("bad_rl001.py") == [
            ("RL001", 5),
            ("RL001", 10),
            ("RL001", 15),
            ("RL001", 20),
        ]

    def test_rl002_unseeded_random(self):
        assert findings_for("bad_rl002.py") == [
            ("RL002", 10),
            ("RL002", 14),
            ("RL002", 18),
            ("RL002", 22),
            ("RL002", 26),
            ("RL002", 30),
        ]

    def test_rl003_array_truthiness(self):
        assert findings_for("bad_rl003.py") == [
            ("RL003", 7),
            ("RL003", 10),
            ("RL003", 12),
            ("RL003", 17),
        ]

    def test_rl004_mutable_default(self):
        assert findings_for("bad_rl004.py") == [
            ("RL004", 4),
            ("RL004", 9),
            ("RL004", 13),
            ("RL004", 13),
        ]

    def test_rl005_float_equality(self):
        assert findings_for("bad_rl005.py") == [
            ("RL005", 5),
            ("RL005", 9),
            ("RL005", 13),
        ]

    def test_rl006_silent_except(self):
        assert findings_for("bad_rl006.py") == [
            ("RL006", 7),
            ("RL006", 14),
            ("RL006", 22),
        ]

    def test_rl007_enrollment_internals(self):
        assert findings_for("bad_rl007.py") == [
            ("RL007", 3),
            ("RL007", 4),
            ("RL007", 5),
            ("RL007", 6),
            ("RL007", 7),
            ("RL007", 7),
            ("RL007", 8),
            ("RL007", 9),
            ("RL007", 10),
        ]

    def test_rl007_silent_inside_core(self):
        source = "from repro.core.models import WaveformModel\n"
        result = lint_source(source, path="src/repro/core/enrollment.py")
        assert result.findings == []

    def test_rl008_ckernel_internals(self):
        assert findings_for("bad_rl008.py") == [
            ("RL008", 3),
            ("RL008", 4),
            ("RL008", 5),
            ("RL008", 6),
            ("RL008", 10),
            ("RL008", 22),
        ]

    def test_rl008_silent_inside_features(self):
        source = "from repro.features import _ckernel\n"
        result = lint_source(source, path="src/repro/features/minirocket.py")
        assert result.findings == []

    def test_rl008_warm_functions_exempt(self):
        source = (
            "def warmup_models():\n"
            "    from repro.features import _ckernel\n"
            "    return _ckernel.available()\n"
        )
        result = lint_source(source, path="src/repro/core/registry.py")
        assert result.findings == []

    def test_rl008_allowlisted_in_tests(self):
        source = "from repro.features import _ckernel\n"
        assert lint_source(
            source, path="tests/features/test_minirocket_parity.py"
        ).findings == []
        assert [
            f.rule_id
            for f in lint_source(source, path="scripts/run_eval.py").findings
        ] == ["RL008"]

    def test_clean_fixture_is_silent(self):
        assert findings_for("clean.py") == []

    def test_every_rule_has_a_firing_fixture(self):
        """The fixture suite exercises each registered rule at least once."""
        fired = set()
        for fixture in sorted(FIXTURES.glob("bad_*.py")):
            result = lint_file(fixture, allowlist={})
            fired.update(f.rule_id for f in result.findings)
        assert fired == set(RULES_BY_ID)


class TestSuppressions:
    def test_suppressed_fixture_only_mismatched_rule_fires(self):
        # Every suppression in the fixture is honoured; the deliberately
        # wrong rule id on the last function does not mask RL004.
        assert findings_for("suppressed.py") == [("RL004", 28)]

    def test_suppressed_count_reported(self):
        result = lint_file(FIXTURES / "suppressed.py", allowlist={})
        assert result.suppressed == 5

    def test_disable_parses_with_and_without_justification(self):
        sup = Suppressions(
            [
                "x = 1  # reprolint: disable=RL001",
                "y = 2  # reprolint: disable=RL001, RL005 -- because",
                "# reprolint: disable-next=all",
                "z = 3",
            ]
        )
        from tools.reprolint.engine import Finding

        assert sup.is_suppressed(Finding("f", 1, 0, "RL001", ""))
        assert not sup.is_suppressed(Finding("f", 1, 0, "RL005", ""))
        assert sup.is_suppressed(Finding("f", 2, 0, "RL005", ""))
        assert sup.is_suppressed(Finding("f", 4, 0, "RL003", ""))
        assert not sup.is_suppressed(Finding("f", 3, 0, "RL003", ""))


class TestAllowlist:
    SOURCE = "def f(score):\n    return score == 0.5\n"

    def test_default_allowlist_quiets_rl005_in_tests(self):
        result = lint_source(self.SOURCE, path="tests/eval/test_metrics.py")
        assert result.findings == []

    def test_same_source_fires_in_src(self):
        result = lint_source(self.SOURCE, path="src/repro/eval/metrics.py")
        assert [f.rule_id for f in result.findings] == ["RL005"]

    def test_allowlist_patterns_cover_nested_paths(self):
        result = lint_source(
            self.SOURCE, path="/abs/checkout/tests/eval/test_metrics.py"
        )
        assert result.findings == []
        assert "RL005" in DEFAULT_ALLOWLIST


class TestEngine:
    def test_parse_error_is_a_finding(self):
        result = lint_source("def broken(:\n", path="x.py")
        assert result.exit_code == 1
        assert [f.rule_id for f in result.findings] == [PARSE_ERROR_ID]

    def test_discovery_skips_fixture_and_cache_dirs(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "fixtures").mkdir()
        (tmp_path / "pkg" / "fixtures" / "bad.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "c.py").write_text("x = 1\n")
        found = iter_python_files([tmp_path])
        assert [p.name for p in found] == ["ok.py"]

    def test_explicit_file_bypasses_discovery_filters(self):
        result = lint_paths([FIXTURES / "bad_rl004.py"], allowlist={})
        assert result.files_checked == 1
        assert result.findings

    def test_findings_sorted_and_rendered(self):
        result = lint_file(FIXTURES / "bad_rl001.py", allowlist={})
        rendered = result.findings[0].render()
        assert rendered.startswith(str(FIXTURES / "bad_rl001.py"))
        assert ":5:" in rendered and "RL001" in rendered
        assert result.findings == sorted(result.findings)


class TestCli:
    def test_exit_zero_on_clean_file(self, capsys):
        code = main([str(FIXTURES / "clean.py")])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 finding(s)" in out

    def test_exit_one_with_text_findings(self, capsys):
        code = main([str(FIXTURES / "bad_rl004.py")])
        out = capsys.readouterr().out
        assert code == 1
        assert "RL004" in out and "bad_rl004.py" in out

    def test_json_format(self, capsys):
        code = main(["--format", "json", str(FIXTURES / "bad_rl005.py")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["exit_code"] == 1
        assert payload["files_checked"] == 1
        assert {f["rule"] for f in payload["findings"]} == {"RL005"}
        assert {"path", "line", "col", "rule", "message"} <= set(
            payload["findings"][0]
        )

    def test_select_restricts_rules(self, capsys):
        code = main(["--select", "RL001", str(FIXTURES / "bad_rl004.py")])
        assert code == 0
        code = main(["--select", "RL004", str(FIXTURES / "bad_rl004.py")])
        assert code == 1
        capsys.readouterr()

    def test_ignore_drops_rules(self, capsys):
        code = main(["--ignore", "RL004", str(FIXTURES / "bad_rl004.py")])
        assert code == 0
        capsys.readouterr()

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["--select", "RL999", str(FIXTURES / "clean.py")])

    def test_missing_path_is_usage_error(self, capsys):
        code = main([str(FIXTURES / "does_not_exist.py")])
        captured = capsys.readouterr()
        assert code == 2
        assert "no such file" in captured.err

    def test_list_rules(self, capsys):
        code = main(["--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for rule in ALL_RULES:
            assert rule.rule_id in out


class TestRepoIsClean:
    def test_acceptance_command_exits_zero(self):
        """`python -m tools.reprolint src tests scripts` exits 0."""
        code = main(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests"), str(REPO_ROOT / "scripts")]
        )
        assert code == 0

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "--list-rules"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "RL001" in proc.stdout
