"""Fixture-driven self-tests for the ``tools.reprolint`` linter.

Each rule must (a) fire on its seeded-bad fixture with the exact rule id
and line number and (b) stay silent on the shared ``clean.py`` fixture of
near-miss patterns.  Suppression comments, allowlists, CLI behaviour, and
the repo-wide clean-run acceptance criterion are covered as well.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from tools.reprolint import ALL_RULES, lint_file, lint_paths, lint_source
from tools.reprolint.cli import main
from tools.reprolint.engine import (
    DEFAULT_ALLOWLIST,
    PARSE_ERROR_ID,
    Suppressions,
    iter_python_files,
)
from tools.reprolint.rules import RULES_BY_ID

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def findings_for(name):
    """(rule_id, line) pairs for a fixture, bypassing path allowlists."""
    result = lint_file(FIXTURES / name, allowlist={})
    return [(f.rule_id, f.line) for f in result.findings]


class TestRuleFixtures:
    def test_rl001_falsy_default(self):
        assert findings_for("bad_rl001.py") == [
            ("RL001", 5),
            ("RL001", 10),
            ("RL001", 15),
            ("RL001", 20),
        ]

    def test_rl002_unseeded_random(self):
        assert findings_for("bad_rl002.py") == [
            ("RL002", 10),
            ("RL002", 14),
            ("RL002", 18),
            ("RL002", 22),
            ("RL002", 26),
            ("RL002", 30),
        ]

    def test_rl003_array_truthiness(self):
        assert findings_for("bad_rl003.py") == [
            ("RL003", 7),
            ("RL003", 10),
            ("RL003", 12),
            ("RL003", 17),
        ]

    def test_rl004_mutable_default(self):
        assert findings_for("bad_rl004.py") == [
            ("RL004", 4),
            ("RL004", 9),
            ("RL004", 13),
            ("RL004", 13),
        ]

    def test_rl005_float_equality(self):
        assert findings_for("bad_rl005.py") == [
            ("RL005", 5),
            ("RL005", 9),
            ("RL005", 13),
        ]

    def test_rl006_silent_except(self):
        assert findings_for("bad_rl006.py") == [
            ("RL006", 7),
            ("RL006", 14),
            ("RL006", 22),
        ]

    def test_rl007_enrollment_internals(self):
        assert findings_for("bad_rl007.py") == [
            ("RL007", 3),
            ("RL007", 4),
            ("RL007", 5),
            ("RL007", 6),
            ("RL007", 7),
            ("RL007", 7),
            ("RL007", 8),
            ("RL007", 9),
            ("RL007", 10),
        ]

    def test_rl007_silent_inside_core(self):
        source = "from repro.core.models import WaveformModel\n"
        result = lint_source(source, path="src/repro/core/enrollment.py")
        assert result.findings == []

    def test_rl008_ckernel_internals(self):
        assert findings_for("bad_rl008.py") == [
            ("RL008", 3),
            ("RL008", 4),
            ("RL008", 5),
            ("RL008", 6),
            ("RL008", 10),
            ("RL008", 22),
        ]

    def test_rl008_silent_inside_features(self):
        source = "from repro.features import _ckernel\n"
        result = lint_source(source, path="src/repro/features/minirocket.py")
        assert result.findings == []

    def test_rl008_warm_functions_exempt(self):
        source = (
            "def warmup_models():\n"
            "    from repro.features import _ckernel\n"
            "    return _ckernel.available()\n"
        )
        result = lint_source(source, path="src/repro/core/registry.py")
        assert result.findings == []

    def test_rl008_allowlisted_in_tests(self):
        source = "from repro.features import _ckernel\n"
        assert lint_source(
            source, path="tests/features/test_minirocket_parity.py"
        ).findings == []
        assert [
            f.rule_id
            for f in lint_source(source, path="scripts/run_eval.py").findings
        ] == ["RL008"]

    def test_rl009_undeclared_mutable_state(self):
        assert findings_for("bad_rl009.py") == [
            ("RL009", 7),
            ("RL009", 8),
            ("RL009", 9),
            ("RL009", 10),
            ("RL009", 11),
            ("RL009", 12),
            ("RL009", 21),  # invalid annotation kind
        ]

    def test_rl010_lock_discipline(self):
        assert findings_for("bad_rl010.py") == [
            ("RL010", 10),  # unlocked module-binding read
            ("RL010", 24),  # unlocked attribute read
        ]

    def test_rl011_thread_hostile_escape(self):
        assert findings_for("bad_rl011.py") == [
            ("RL011", 12),  # module global
            ("RL011", 17),  # global-declared store
            ("RL011", 22),  # subscript into a shared container
            ("RL011", 27),  # executor submission
        ]

    def test_rl011_sees_hostile_classes_from_other_files(self):
        # The project index carries thread-hostile declarations across
        # modules: _Scratch is declared hostile in repro.core.hotpath,
        # and an escape in a *different* file must still fire.
        from tools.reprolint.concurrency import build_project_index
        from tools.reprolint import lint_source

        source = (
            "def leak(registry, make_scratch):\n"
            "    registry['x'] = _Scratch((4, 100), 840)\n"
        )
        index = build_project_index(
            iter_python_files([REPO_ROOT / "src" / "repro" / "core"])
        )
        assert "_Scratch" in index.thread_hostile_classes
        result = lint_source(source, path="src/repro/other.py", project=index)
        assert [f.rule_id for f in result.findings] == ["RL011"]
        # Without the index the same source is silent: the class is
        # declared elsewhere.
        assert lint_source(source, path="src/repro/other.py").findings == []

    def test_rl012_blocking_while_locked(self):
        assert findings_for("bad_rl012.py") == [
            ("RL012", 10),  # file I/O
            ("RL012", 15),  # compile
            ("RL012", 25),  # warmup
        ]

    def test_clean_fixture_is_silent(self):
        assert findings_for("clean.py") == []

    def test_every_rule_has_a_firing_fixture(self):
        """The fixture suite exercises each registered rule at least once."""
        fired = set()
        for fixture in sorted(FIXTURES.glob("bad_*.py")):
            result = lint_file(fixture, allowlist={})
            fired.update(f.rule_id for f in result.findings)
        assert fired == set(RULES_BY_ID)


class TestSuppressions:
    def test_suppressed_fixture_only_mismatched_rule_fires(self):
        # Every suppression in the fixture is honoured; the deliberately
        # wrong rule id on the last function does not mask RL004.
        assert findings_for("suppressed.py") == [("RL004", 28)]

    def test_suppressed_count_reported(self):
        result = lint_file(FIXTURES / "suppressed.py", allowlist={})
        assert result.suppressed == 5

    def test_suppressed_concurrency_fixture_is_silent(self):
        assert findings_for("suppressed_concurrency.py") == []

    def test_suppressed_concurrency_count(self):
        result = lint_file(
            FIXTURES / "suppressed_concurrency.py", allowlist={}
        )
        assert result.suppressed == 4

    def test_suppression_records_capture_reasons(self):
        from tools.reprolint.engine import collect_suppressions

        records = collect_suppressions(
            [FIXTURES / "suppressed_concurrency.py"]
        )
        assert [(r.line, r.rules) for r in records] == [
            (11, ("RL009",)),
            (21, ("RL010",)),
            (31, ("RL012",)),
            (36, ("RL011",)),
        ]
        assert records[0].reason.startswith("benign lazy memo")
        assert all(r.reason for r in records)

    def test_disable_parses_with_and_without_justification(self):
        sup = Suppressions(
            [
                "x = 1  # reprolint: disable=RL001",
                "y = 2  # reprolint: disable=RL001, RL005 -- because",
                "# reprolint: disable-next=all",
                "z = 3",
            ]
        )
        from tools.reprolint.engine import Finding

        assert sup.is_suppressed(Finding("f", 1, 0, "RL001", ""))
        assert not sup.is_suppressed(Finding("f", 1, 0, "RL005", ""))
        assert sup.is_suppressed(Finding("f", 2, 0, "RL005", ""))
        assert sup.is_suppressed(Finding("f", 4, 0, "RL003", ""))
        assert not sup.is_suppressed(Finding("f", 3, 0, "RL003", ""))


class TestAllowlist:
    SOURCE = "def f(score):\n    return score == 0.5\n"

    def test_default_allowlist_quiets_rl005_in_tests(self):
        result = lint_source(self.SOURCE, path="tests/eval/test_metrics.py")
        assert result.findings == []

    def test_same_source_fires_in_src(self):
        result = lint_source(self.SOURCE, path="src/repro/eval/metrics.py")
        assert [f.rule_id for f in result.findings] == ["RL005"]

    def test_allowlist_patterns_cover_nested_paths(self):
        result = lint_source(
            self.SOURCE, path="/abs/checkout/tests/eval/test_metrics.py"
        )
        assert result.findings == []
        assert "RL005" in DEFAULT_ALLOWLIST


class TestEngine:
    def test_parse_error_is_a_finding(self):
        result = lint_source("def broken(:\n", path="x.py")
        assert result.exit_code == 1
        assert [f.rule_id for f in result.findings] == [PARSE_ERROR_ID]

    def test_discovery_skips_fixture_and_cache_dirs(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "fixtures").mkdir()
        (tmp_path / "pkg" / "fixtures" / "bad.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "c.py").write_text("x = 1\n")
        found = iter_python_files([tmp_path])
        assert [p.name for p in found] == ["ok.py"]

    def test_explicit_file_bypasses_discovery_filters(self):
        result = lint_paths([FIXTURES / "bad_rl004.py"], allowlist={})
        assert result.files_checked == 1
        assert result.findings

    def test_findings_sorted_and_rendered(self):
        result = lint_file(FIXTURES / "bad_rl001.py", allowlist={})
        rendered = result.findings[0].render()
        assert rendered.startswith(str(FIXTURES / "bad_rl001.py"))
        assert ":5:" in rendered and "RL001" in rendered
        assert result.findings == sorted(result.findings)


class TestCli:
    def test_exit_zero_on_clean_file(self, capsys):
        code = main([str(FIXTURES / "clean.py")])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 finding(s)" in out

    def test_exit_one_with_text_findings(self, capsys):
        code = main([str(FIXTURES / "bad_rl004.py")])
        out = capsys.readouterr().out
        assert code == 1
        assert "RL004" in out and "bad_rl004.py" in out

    def test_json_format(self, capsys):
        code = main(["--format", "json", str(FIXTURES / "bad_rl005.py")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["exit_code"] == 1
        assert payload["files_checked"] == 1
        assert {f["rule"] for f in payload["findings"]} == {"RL005"}
        assert {"path", "line", "col", "rule", "message"} <= set(
            payload["findings"][0]
        )

    def test_select_restricts_rules(self, capsys):
        code = main(["--select", "RL001", str(FIXTURES / "bad_rl004.py")])
        assert code == 0
        code = main(["--select", "RL004", str(FIXTURES / "bad_rl004.py")])
        assert code == 1
        capsys.readouterr()

    def test_ignore_drops_rules(self, capsys):
        code = main(["--ignore", "RL004", str(FIXTURES / "bad_rl004.py")])
        assert code == 0
        capsys.readouterr()

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["--select", "RL999", str(FIXTURES / "clean.py")])

    def test_missing_path_is_usage_error(self, capsys):
        code = main([str(FIXTURES / "does_not_exist.py")])
        captured = capsys.readouterr()
        assert code == 2
        assert "no such file" in captured.err

    def test_list_rules(self, capsys):
        code = main(["--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for rule in ALL_RULES:
            assert rule.rule_id in out

    def test_show_suppressions_text(self, capsys):
        code = main(
            ["--show-suppressions", str(FIXTURES / "suppressed_concurrency.py")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "suppressed_concurrency.py:11: RL009" in out
        assert "benign lazy memo" in out
        assert "reprolint: 4 suppressions" in out

    def test_show_suppressions_json(self, capsys):
        code = main(
            [
                "--show-suppressions",
                "--format",
                "json",
                str(FIXTURES / "suppressed_concurrency.py"),
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert [r["line"] for r in payload] == [11, 21, 31, 36]
        assert payload[1]["rules"] == ["RL010"]
        assert payload[1]["reason"] == "deliberate unlocked fast path"

    def test_concurrency_manifest_flag(self, capsys):
        code = main(
            ["--concurrency-manifest", str(FIXTURES / "bad_rl010.py")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("# Concurrency manifest")
        assert "`_HANDLE`" in out and "guarded-by: `_LOCK`" in out
        assert "| `Registry` | `_cache` | `self._lock` |" in out


class TestManifest:
    def test_rendering_is_deterministic(self):
        from tools.reprolint.concurrency import (
            build_project_index,
            render_manifest,
        )

        files = iter_python_files([REPO_ROOT / "src", REPO_ROOT / "tools"])
        first = render_manifest(build_project_index(files))
        second = render_manifest(build_project_index(list(reversed(files))))
        assert first == second

    def test_committed_manifest_is_fresh(self, monkeypatch):
        """CONCURRENCY.md must match `--concurrency-manifest src tools`."""
        from tools.reprolint.concurrency import (
            build_project_index,
            render_manifest,
        )

        monkeypatch.chdir(REPO_ROOT)
        files = iter_python_files([Path("src"), Path("tools")])
        rendered = render_manifest(build_project_index(files))
        committed = (REPO_ROOT / "CONCURRENCY.md").read_text(encoding="utf-8")
        assert rendered == committed, (
            "CONCURRENCY.md is stale; regenerate with "
            "`python -m tools.reprolint --concurrency-manifest src tools "
            "> CONCURRENCY.md`"
        )

    def test_undeclared_state_is_called_out(self):
        from tools.reprolint.concurrency import (
            build_project_index,
            render_manifest,
        )

        index = build_project_index([FIXTURES / "bad_rl009.py"])
        manifest = render_manifest(index)
        assert "**UNDECLARED**" in manifest
        assert "`REGISTRY`" in manifest and "rebound-global" in manifest


class TestRepoIsClean:
    def test_acceptance_command_exits_zero(self):
        """`python -m tools.reprolint src tests scripts` exits 0."""
        code = main(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests"), str(REPO_ROOT / "scripts")]
        )
        assert code == 0

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "--list-rules"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "RL001" in proc.stdout
