"""Suppression fixture for the concurrency rules RL009-RL012.

Every violation here carries a reasoned suppression; the linter must
report zero findings and count each comment.
"""

import threading

_LOCK = threading.Lock()

MEMO = {}  # reprolint: disable=RL009 -- benign lazy memo: racing writers store equal values
_HANDLE = None  # guarded-by: _LOCK


class _Scratch:  # concurrency: thread-hostile
    def reset(self):
        pass


def fast_path():
    # reprolint: disable-next=RL010 -- deliberate unlocked fast path
    handle = _HANDLE
    if handle is not None:
        return handle
    with _LOCK:
        return _HANDLE


def serialized_build(path):
    with _LOCK:
        # reprolint: disable-next=RL012 -- one-off build; never on the hot path
        return path.read_bytes()


def publish(slot):
    # reprolint: disable-next=RL011 -- confinement: slot is thread-local storage
    slot["scratch"] = _Scratch()
