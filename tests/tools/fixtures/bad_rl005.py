"""RL005 fixture: exact float equality (all must fire)."""


def at_threshold(score):
    return score == 0.5


def not_converged(loss):
    return loss != -1.0


def branchy(x):
    if x == 2.5:
        return "exact"
    return "other"
