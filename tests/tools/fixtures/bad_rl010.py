"""RL010 fixture: guarded state accessed outside its lock (must fire)."""

import threading

_LOCK = threading.Lock()
_HANDLE = None  # guarded-by: _LOCK


def peek():
    return _HANDLE  # fires: unlocked module-binding read


def locked_read():
    with _LOCK:
        return _HANDLE  # silent: lock held


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._cache = {}  # guarded-by: _lock

    def get(self, key):
        return self._cache.get(key)  # fires: unlocked attribute read

    def put(self, key, value):
        with self._lock:
            self._cache[key] = value  # silent: lock held

    def _shrink(self):  # guarded-by: caller
        self._cache.clear()  # silent: caller-holds-lock contract
