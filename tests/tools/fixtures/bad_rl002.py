"""RL002 fixture: unseeded / global-state randomness (all must fire)."""

import random

import numpy as np
from numpy.random import default_rng


def legacy_noise(n):
    return np.random.normal(0.0, 1.0, size=n)


def global_seed():
    np.random.seed(42)


def seedless_rng():
    return default_rng()


def stdlib_pick(items):
    return random.choice(items)


def seedless_state():
    return np.random.RandomState()


def os_entropy():
    return random.SystemRandom()
