"""RL009 fixture: undeclared module-level mutable state (all must fire)."""

from collections import OrderedDict

import numpy as np

REGISTRY = {}
PENDING = []
CACHE = OrderedDict()
SEEN = set()
WEIGHTS = np.zeros(4)
_counter = 0


def bump() -> int:
    global _counter
    _counter += 1
    return _counter


BAD_KIND = {}  # concurrency: shared-ish
