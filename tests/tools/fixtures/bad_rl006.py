"""RL006 fixture: silently swallowed exceptions (all must fire)."""


def bare(path):
    try:
        return open(path)
    except:
        return None


def swallow_pass(fn):
    try:
        fn()
    except Exception:
        pass


def swallow_assign(fn):
    ok = True
    try:
        fn()
    except (Exception, ValueError):
        ok = False
    return ok
