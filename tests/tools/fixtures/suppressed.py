"""Bad patterns carrying suppressions: reprolint must honour every one."""

import numpy as np


def same_line(window=None):
    return window or 90  # reprolint: disable=RL001 -- fixture justification


def next_line(score):
    # reprolint: disable-next=RL005 -- exact sentinel, fixture justification
    return score == 0.5


def multi_rule(arr: np.ndarray, limit=None):
    if arr:  # reprolint: disable=RL003,RL001 -- fixture justification
        return limit or 10  # reprolint: disable=RL001
    return 0


def disable_all(fn):
    try:
        fn()
    except Exception:  # reprolint: disable=all -- fixture justification
        pass


def wrong_rule(counts={}):  # reprolint: disable=RL001 -- wrong id: RL004 still fires
    return counts
