"""RL012 fixture: blocking calls made while a lock is held (must fire)."""

import threading

_LOCK = threading.Lock()


def load_model(path):
    with _LOCK:
        return path.read_bytes()  # fires: file I/O under the lock


def compile_kernel(source):
    with _LOCK:
        kernel = compile(source, "<kernel>", "exec")  # fires: compile
        return kernel


class Warmer:
    def __init__(self):
        self._lock = threading.Lock()

    def warm_all(self, engine):
        with self._lock:
            engine.warmup()  # fires: warmup work under the lock


def deferred_is_fine(path):
    with _LOCK:
        def later():
            return path.read_bytes()  # silent: runs after release

        return later
