"""RL011 fixture: thread-hostile instances escaping (all must fire)."""


class Scratch:  # concurrency: thread-hostile
    def __init__(self):
        self.buffer = bytearray(64)

    def reset(self):
        self.buffer[:] = b"\x00" * len(self.buffer)


SHARED = Scratch()


def leak_via_global():
    global _live
    _live = Scratch()
    return _live


def leak_into_container(registry):
    registry["probe"] = Scratch()


def leak_to_executor(pool):
    scratch = Scratch()
    pool.submit(scratch.reset)
