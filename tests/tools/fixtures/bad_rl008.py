"""RL008 fixture: C-kernel build internals used directly (warm paths exempt)."""

import repro.features._ckernel
import repro.features._ckernel as ck
from repro.features._ckernel import transform_prepared
from repro.features import _ckernel


def build_features(mr, x):
    return mr._ckernel.transform(x, plan=None)


def warm_feature_engine():
    # Exempt: warmup helpers are exactly where touching the build
    # internals eagerly is the point.
    from repro.features import _ckernel as kernel

    return _ckernel.available() and kernel is not None


def sneaky_availability_probe(extractor):
    if extractor.backend._ckernel.available():
        return "c"
    return "vectorized"
