"""RL003 fixture: ambiguous ndarray truthiness (all must fire)."""

import numpy as np


def check(arr: np.ndarray) -> bool:
    if arr:
        return True
    mask = np.zeros(3)
    while not mask:
        break
    assert arr
    return False


def ternary(weights: np.ndarray) -> int:
    return 1 if weights else 0
