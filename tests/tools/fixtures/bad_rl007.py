"""RL007 fixture: enrollment split internals imported directly (all fire)."""

import repro.core.models
import repro.core.negatives as neg
from repro.core.models import WaveformModel
from repro.core.enroll import enroll_models
from repro.core import models, negatives
from repro.core import enroll
from ..core.models import fixed_window
from ..core import negatives as shared
