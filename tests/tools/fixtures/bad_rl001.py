"""RL001 fixture: falsy ``or``-defaults on parameters (all must fire)."""


def segment(samples, window=None):
    window = window or 90
    return samples[:window]


def build(config=None):
    cfg = config or dict()
    return cfg


def in_call(limit=None):
    return min(limit or 10, 99)


class Authenticator:
    def __init__(self, options=None):
        self._options = options or tuple()
