"""RL004 fixture: mutable default arguments (all must fire)."""


def append_to(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(counts={}):
    return counts


def materialised(pool=list(), *, seen=set()):
    return pool, seen
