"""Near-miss patterns for every rule: reprolint must stay silent here."""

import random
import threading
from typing import List, Optional

import numpy as np


# RL001 near-misses: explicit None checks, non-parameter names, or a
# name (not a literal/call) on the right-hand side.
def explicit_none(config=None):
    if config is None:
        config = dict()
    return config


def conditional_expr(options=None):
    return options if options is not None else tuple()


def local_not_param():
    first = ""
    name = first or "anon"
    return name


def name_fallback(primary=None, backup=None):
    return primary or backup


# RL002 near-misses: seeded constructors and generator methods.
def seeded(n: int) -> np.ndarray:
    rng = np.random.default_rng(1234)
    return rng.normal(0.0, 1.0, size=n)


def seeded_stack(seed: int) -> np.ndarray:
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.uniform(size=3)


def seeded_stdlib(seed: int) -> float:
    return random.Random(seed).random()


def spawned(seed: int) -> list:
    return np.random.SeedSequence(seed).spawn(4)


# RL003 near-misses: size/None tests, and list truthiness is fine.
def explicit_tests(arr: Optional[np.ndarray], items: List[int]) -> bool:
    if arr is None:
        return False
    if arr.size == 0:
        return False
    if items:
        return True
    return bool(arr.any())


# RL004 near-misses: immutable defaults.
def immutable(pair=(1, 2), label="x", frozen=frozenset()):
    return pair, label, frozen


# RL005 near-misses: int equality and tolerance-based comparisons.
def int_equality(count: int) -> bool:
    return count == 1


def tolerant(x: float) -> bool:
    return abs(x - 1.5) < 1e-9


# RL006 near-misses: narrow handler, logged handler, re-raise.
def narrow(fn):
    try:
        return fn()
    except ValueError:
        return None


def reported(fn, log):
    try:
        return fn()
    except Exception as exc:
        log.warning("failed: %s", exc)
        return None


def reraised(fn):
    try:
        return fn()
    except Exception as exc:
        raise RuntimeError("wrapped") from exc


# RL007 near-misses: the façade and the package itself are fine, as are
# unrelated modules that merely share a segment name.
def facade_imports():
    import repro.core
    import repro.core.enrollment
    from repro.core import enrollment
    from repro.core.enrollment import enroll_models
    from other.core.models import something

    return repro.core, enrollment, enroll_models, something


# RL009 near-misses: annotated bindings and immutable constants.
_LIMITS = {"max_retries": 3}  # concurrency: immutable-after-init
_EDGES = (1, 2, 3)
_STATE_LOCK = threading.Lock()
_STATE = None  # guarded-by: _STATE_LOCK


# RL010/RL012 near-misses: guarded access under its lock, the expensive
# build outside, publication under a re-check.
def get_state(build):
    built = build()
    global _STATE
    with _STATE_LOCK:
        if _STATE is None:
            _STATE = built
        return _STATE


# RL011 near-miss: a thread-hostile instance that stays confined.
class _PerStream:  # concurrency: thread-hostile
    def __init__(self):
        self.tail = []


def confined_use(chunks):
    stream = _PerStream()
    for chunk in chunks:
        stream.tail.append(chunk)
    return stream.tail


# RL012 near-miss: a with-block that is not a lock.
def read_config(path):
    with open(path) as fh:
        return fh.read()
