"""The exception hierarchy contract.

Beyond the inheritance shape, this module pins the service-facing
contract: every error class carries a stable machine-readable ``code``,
and the canonical HTTP mapping in :data:`repro.errors.HTTP_STATUS_BY_ERROR`
is exhaustive over the taxonomy — no subclass may fall through to a 500
silently (new 500s must be added to the explicit allowlist below).
"""

import math

import pytest

import repro.errors as errors_mod
from repro.errors import (
    AuthenticationError,
    BackoffError,
    ConcurrencyError,
    ConfigurationError,
    EnrollmentError,
    HTTP_STATUS_BY_ERROR,
    LockoutError,
    NotFittedError,
    P2AuthError,
    PersistenceError,
    ProofError,
    ProtocolError,
    QualityError,
    SegmentationError,
    SignalError,
    UnknownUserError,
    http_status_for,
    retry_after_s,
)


def _all_error_classes():
    """Every P2AuthError subclass in the package taxonomy, recursively.

    Importing ``repro`` first makes sure lazily defined subclasses (if
    any module grew one) are registered before the walk.
    """
    import repro  # noqa: F401  (imported for subclass registration)

    seen = set()
    frontier = [P2AuthError]
    while frontier:
        cls = frontier.pop()
        if cls in seen:
            continue
        seen.add(cls)
        frontier.extend(cls.__subclasses__())
    return sorted(seen, key=lambda c: c.__name__)


@pytest.mark.parametrize(
    "exc",
    [
        ConfigurationError,
        SignalError,
        SegmentationError,
        EnrollmentError,
        AuthenticationError,
        NotFittedError,
        QualityError,
        PersistenceError,
        ConcurrencyError,
        ProtocolError,
        ProofError,
        UnknownUserError,
        LockoutError,
        BackoffError,
    ],
)
def test_all_errors_derive_from_base(exc):
    assert issubclass(exc, P2AuthError)


def test_segmentation_is_a_signal_error():
    assert issubclass(SegmentationError, SignalError)


def test_service_errors_are_authentication_errors():
    assert issubclass(UnknownUserError, AuthenticationError)
    assert issubclass(LockoutError, AuthenticationError)
    assert issubclass(BackoffError, AuthenticationError)


def test_base_catches_everything():
    with pytest.raises(P2AuthError):
        raise SegmentationError("window too large")


class TestErrorCodes:
    def test_every_class_has_a_stable_code(self):
        for cls in _all_error_classes():
            assert isinstance(cls.code, str) and cls.code, cls.__name__

    def test_codes_are_unique_per_class(self):
        classes = _all_error_classes()
        codes = [cls.code for cls in classes]
        assert len(set(codes)) == len(codes), (
            "duplicate error codes: every class must be distinguishable "
            "from its wire payload"
        )

    def test_codes_are_machine_readable_slugs(self):
        for cls in _all_error_classes():
            assert cls.code == cls.code.lower()
            assert " " not in cls.code

    def test_instances_expose_the_class_code(self):
        assert QualityError("too damaged").code == "quality_refused"
        assert LockoutError("locked").code == "locked_out"


class TestHttpMapping:
    #: Classes that legitimately map to 500: genuine server-side faults
    #: a client cannot fix by changing the request. Anything else
    #: reaching 500 is a taxonomy bug, not a default.
    INTERNAL_500 = {
        P2AuthError,
        PersistenceError,
        NotFittedError,
        ConcurrencyError,
    }

    def test_mapping_is_exhaustive_over_the_taxonomy(self):
        for cls in _all_error_classes():
            status = http_status_for(cls)
            assert 400 <= status <= 599, cls.__name__

    def test_no_subclass_falls_through_to_500_silently(self):
        for cls in _all_error_classes():
            if http_status_for(cls) == 500:
                assert cls in self.INTERNAL_500, (
                    f"{cls.__name__} resolves to 500 but is not in the "
                    "allowlist; either give it an explicit row in "
                    "HTTP_STATUS_BY_ERROR or declare it an internal error"
                )

    def test_issue_pinned_statuses(self):
        # The contract rows named by the service design: quality refusal
        # is 422 "refused, retry", throttling is 429, unknown user 404.
        assert http_status_for(QualityError) == 422
        assert http_status_for(LockoutError) == 429
        assert http_status_for(BackoffError) == 429
        assert http_status_for(UnknownUserError) == 404
        assert http_status_for(ConcurrencyError) == 500
        assert http_status_for(ProofError) == 403
        assert http_status_for(ProtocolError) == 400

    def test_mro_resolution_covers_unlisted_subclasses(self):
        class CustomQuality(QualityError):
            pass

        assert CustomQuality not in HTTP_STATUS_BY_ERROR
        assert http_status_for(CustomQuality) == 422

    def test_non_p2auth_types_resolve_internal(self):
        assert http_status_for(ValueError) == 500

    def test_table_only_names_p2auth_classes(self):
        for cls in HTTP_STATUS_BY_ERROR:
            assert issubclass(cls, P2AuthError)


class TestRetryAfter:
    def test_backoff_carries_finite_delay(self):
        err = BackoffError("wait", retry_after_s=3.5)
        assert retry_after_s(err) == 3.5

    def test_lockout_is_indefinite(self):
        assert retry_after_s(LockoutError("locked")) is None
        assert LockoutError("locked").retry_after_s == math.inf

    def test_plain_errors_have_no_delay(self):
        assert retry_after_s(QualityError("refused")) is None
