"""The exception hierarchy contract."""

import pytest

from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    EnrollmentError,
    NotFittedError,
    P2AuthError,
    SegmentationError,
    SignalError,
)


@pytest.mark.parametrize(
    "exc",
    [
        ConfigurationError,
        SignalError,
        SegmentationError,
        EnrollmentError,
        AuthenticationError,
        NotFittedError,
    ],
)
def test_all_errors_derive_from_base(exc):
    assert issubclass(exc, P2AuthError)


def test_segmentation_is_a_signal_error():
    assert issubclass(SegmentationError, SignalError)


def test_base_catches_everything():
    with pytest.raises(P2AuthError):
        raise SegmentationError("window too large")
