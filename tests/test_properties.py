"""Cross-cutting property-based tests on core invariants.

These complement the per-module property tests with system-level
invariants: recording time arithmetic, rhythm positivity, artifact
linearity, and the stability guarantees the experiments rely on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SimulationConfig
from repro.physio import TrialSynthesizer, sample_user
from repro.physio.artifacts import ArtifactResponseField
from repro.physio.keypad import key_position
from repro.types import PIN_PAD_KEYS, PPGRecording

pins = st.text(alphabet="0123456789", min_size=1, max_size=6)


class TestRecordingInvariants:
    @given(
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=-10.0, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_sample_index_inverts_time_axis(self, n, fs, start):
        rec = PPGRecording(
            samples=np.zeros((4, n)), fs=fs, start_time=start
        )
        axis = rec.time_axis()
        for i in (0, n // 2, n - 1):
            assert rec.sample_index(float(axis[i])) == i

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_duration_consistent(self, n):
        rec = PPGRecording(samples=np.zeros((4, n)), fs=100.0)
        assert rec.duration * rec.fs == pytest.approx(n)


class TestRhythmInvariants:
    @given(pins, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_intervals_always_positive(self, pin, seed):
        rng = np.random.default_rng(seed)
        user = sample_user(0, np.random.default_rng(1))
        gaps = user.rhythm.intervals(pin, SimulationConfig(), rng)
        assert gaps.shape == (len(pin) - 1,)
        assert np.all(gaps > 0)


class TestTrialInvariants:
    @given(pins.filter(lambda p: len(p) >= 2), st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_trial_structure_for_any_pin(self, pin, seed):
        synth = TrialSynthesizer()
        user = sample_user(0, np.random.default_rng(2))
        trial = synth.synthesize_trial(user, pin, np.random.default_rng(seed))
        assert trial.pin == pin
        assert len(trial.events) == len(pin)
        times = [e.true_time for e in trial.events]
        assert times == sorted(times)
        assert trial.recording.duration > times[-1]

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_trial_for_any_user_seed(self, user_seed):
        synth = TrialSynthesizer()
        user = sample_user(0, np.random.default_rng(user_seed))
        a = synth.synthesize_trial(user, "1628", np.random.default_rng(5))
        b = synth.synthesize_trial(user, "1628", np.random.default_rng(5))
        assert np.array_equal(a.recording.samples, b.recording.samples)


class TestArtifactFieldInvariants:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_every_key_has_physical_parameters(self, seed):
        field = ArtifactResponseField.sample(
            np.random.default_rng(seed), SimulationConfig()
        )
        for key in PIN_PAD_KEYS:
            for component in ("mechanical", "vascular"):
                params = field.params_for(key, component)
                assert params.amplitude >= 0
                assert params.peak_width > 0
                assert params.trough_width > 0
                assert params.osc_decay > 0

    def test_key_positions_bounded(self):
        for key in PIN_PAD_KEYS:
            x, y = key_position(key)
            assert -1.0 <= x <= 1.0
            assert -1.0 <= y <= 1.0
