"""Parity contract of the staged authentication engine.

The layered refactor (``repro.core.stages`` / ``registry`` / the split
enrollment package) is only allowed to *reorganize* the code — not to
change a single bit of its behavior. This suite pins that contract:

- an inline copy of the pre-refactor monolithic authentication body is
  compared field-for-field (``rtol=0``/``atol=0``) against the staged
  path on legitimate, attacker, privacy-boost, two-handed, and
  wrong-PIN probes;
- ``P2Auth.authenticate_many`` must equal a Python loop over
  ``authenticate``;
- a registry-enrolled user must score identically to a directly
  constructed ``P2Auth``;
- a table-driven experiment sweep row must equal the hand-rolled
  pre-refactor row construction;
- regenerated robustness grid rows must match the committed
  ``ROBUSTNESS.json``.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.config import PAPER_PINS
from repro.core import (
    AuthDecision,
    EnrollmentOptions,
    ModelRegistry,
    P2Auth,
    identify_input_case,
    preprocess_trial,
)
from repro.core.enrollment import (
    extract_full_waveform,
    extract_fused_waveform,
    extract_segments,
)
from repro.data import StudyData, ThirdPartyStore
from repro.errors import AuthenticationError
from repro.types import InputCase

REPO_ROOT = Path(__file__).resolve().parents[1]
PIN = PAPER_PINS[0]
FEATURES = 840


# ---------------------------------------------------------------------------
# The pre-refactor reference implementation, copied verbatim from the
# monolithic repro.core.authentication as of the commit before the
# staged engine landed. Do not "improve" it — it is the parity oracle.
# ---------------------------------------------------------------------------


def _reference_integrate(passes):
    n = len(passes)
    hits = sum(passes)
    if n <= 1:
        return False
    if n == 2:
        return hits == 2
    if n == 3:
        return hits >= 2
    return hits >= n - 1


def _reference_check_keystrokes(models, preprocessed):
    keys = []
    scores = []
    passes = []
    for segment in extract_segments(preprocessed, models.config):
        keys.append(segment.key)
        model = models.key_models.get(segment.key)
        if model is None:
            scores.append(float("-inf"))
            passes.append(False)
            continue
        score = float(model.decision_function(segment.samples)[0])
        scores.append(score)
        passes.append(score > 0.0)
    return tuple(keys), tuple(scores), tuple(passes)


def _reference_authenticate(models, preprocessed, pin_ok, no_pin_mode=False):
    if not no_pin_mode:
        if pin_ok is None:
            raise AuthenticationError("pin_ok is required outside NO-PIN mode")
        if not pin_ok:
            return AuthDecision(
                accepted=False, reason="PIN verification failed", pin_ok=False
            )

    case = identify_input_case(preprocessed)
    if case is InputCase.REJECT:
        return AuthDecision(
            accepted=False,
            reason=(
                f"only {preprocessed.detected_count} keystroke(s) detected; "
                "at least two are required"
            ),
            input_case=case,
            pin_ok=pin_ok,
        )

    if no_pin_mode or case is not InputCase.ONE_HANDED:
        keys, scores, passes = _reference_check_keystrokes(models, preprocessed)
        accepted = _reference_integrate(passes)
        return AuthDecision(
            accepted=accepted,
            reason=(
                f"{sum(passes)}/{len(passes)} keystroke waveforms legal "
                f"({case.value})"
            ),
            input_case=case,
            pin_ok=pin_ok,
            scores=scores,
            keys_checked=keys,
            passes=passes,
        )

    options = models.options
    if options.privacy_boost:
        if models.fused_model is None:
            raise AuthenticationError("privacy boost enabled but no fused model")
        waveform = extract_fused_waveform(preprocessed, models.config)
        score = float(models.fused_model.decision_function(waveform)[0])
        label = "fused waveform"
    else:
        if models.full_model is None:
            raise AuthenticationError("no full-waveform model enrolled")
        waveform = extract_full_waveform(
            preprocessed, options.full_window, options.full_margin
        )
        score = float(models.full_model.decision_function(waveform)[0])
        label = "full waveform"

    accepted = score > 0.0
    return AuthDecision(
        accepted=accepted,
        reason=f"{label} score {score:+.3f} ({'legal' if accepted else 'illegal'})",
        input_case=case,
        pin_ok=pin_ok,
        scores=(score,),
    )


def assert_decisions_identical(staged: AuthDecision, reference: AuthDecision):
    """Field-for-field equality; scores at rtol=0/atol=0."""
    assert staged.accepted == reference.accepted
    assert staged.reason == reference.reason
    assert staged.input_case == reference.input_case
    assert staged.pin_ok == reference.pin_ok
    assert staged.keys_checked == reference.keys_checked
    assert staged.passes == reference.passes
    assert staged.degradation == reference.degradation
    assert len(staged.scores) == len(reference.scores)
    np.testing.assert_allclose(
        np.asarray(staged.scores),
        np.asarray(reference.scores),
        rtol=0,
        atol=0,
    )


# ---------------------------------------------------------------------------
# Fixtures: one small population, two enrolled authenticators
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def data():
    return StudyData(n_users=5, seed=3)


@pytest.fixture(scope="module")
def third_party(data):
    return ThirdPartyStore(data, [1, 2], PIN).sample(20)


@pytest.fixture(scope="module")
def enroll_trials(data):
    return data.trials(0, PIN, "one_handed", 8)[:6]


@pytest.fixture(scope="module")
def auth(enroll_trials, third_party):
    a = P2Auth(pin=PIN, options=EnrollmentOptions(num_features=FEATURES))
    a.enroll(enroll_trials, third_party)
    return a


@pytest.fixture(scope="module")
def boost_auth(enroll_trials, third_party):
    a = P2Auth(
        pin=PIN,
        options=EnrollmentOptions(num_features=FEATURES, privacy_boost=True),
    )
    a.enroll(enroll_trials, third_party)
    return a


@pytest.fixture(scope="module")
def probes(data):
    legit = data.trials(0, PIN, "one_handed", 8)[6:]
    two_handed = data.trials(0, PIN, "double3", 2)
    attacks = data.emulating_trials(4, 0, PIN, 2)
    return {"legit": legit, "two_handed": two_handed, "attack": attacks}


# ---------------------------------------------------------------------------
# 1. Staged engine vs the monolithic reference
# ---------------------------------------------------------------------------


class TestStagedVsReference:
    @pytest.mark.parametrize("kind", ["legit", "two_handed", "attack"])
    def test_full_model_routes(self, auth, probes, kind):
        for trial in probes[kind]:
            pre = preprocess_trial(trial, auth.config)
            reference = _reference_authenticate(auth.models, pre, True)
            staged = auth.authenticate(trial)
            assert_decisions_identical(staged, reference)

    @pytest.mark.parametrize("kind", ["legit", "attack"])
    def test_privacy_boost_route(self, boost_auth, probes, kind):
        for trial in probes[kind]:
            pre = preprocess_trial(trial, boost_auth.config)
            reference = _reference_authenticate(boost_auth.models, pre, True)
            staged = boost_auth.authenticate(trial)
            assert_decisions_identical(staged, reference)

    def test_wrong_pin_short_circuits(self, auth, probes):
        trial = probes["legit"][0]
        pre = preprocess_trial(trial, auth.config)
        reference = _reference_authenticate(auth.models, pre, False)
        staged = auth.authenticate(trial, claimed_pin="0000")
        assert_decisions_identical(staged, reference)
        assert staged.reason == "PIN verification failed"

    def test_exception_parity_without_fused_model(self, auth, probes):
        # A one-handed probe with the boost flag but no fused model must
        # raise exactly as the monolith did, before any waveform work.
        from dataclasses import replace

        trial = probes["legit"][0]
        pre = preprocess_trial(trial, auth.config)
        boosted = replace(
            auth.models,
            options=replace(auth.models.options, privacy_boost=True),
            fused_model=None,
        )
        with pytest.raises(AuthenticationError, match="no fused model"):
            _reference_authenticate(boosted, pre, True)
        from repro.core import AuthPipeline, Preprocessed

        with pytest.raises(AuthenticationError, match="no fused model"):
            AuthPipeline(boosted).run_preprocessed(
                [Preprocessed(trial=pre, pin_ok=True)]
            )


# ---------------------------------------------------------------------------
# 2. Batch path == loop
# ---------------------------------------------------------------------------


class TestBatchParity:
    def test_authenticate_many_equals_loop(self, auth, probes):
        trials = probes["legit"] + probes["attack"] + probes["two_handed"]
        batched = auth.authenticate_many(trials)
        looped = [auth.authenticate(t) for t in trials]
        assert len(batched) == len(looped)
        for b, l in zip(batched, looped):
            assert_decisions_identical(b, l)

    def test_authenticate_many_mixed_pins(self, auth, probes):
        trials = [probes["legit"][0], probes["legit"][1]]
        pins = [PIN, "0000"]
        batched = auth.authenticate_many(trials, claimed_pins=pins)
        looped = [
            auth.authenticate(t, claimed_pin=p) for t, p in zip(trials, pins)
        ]
        for b, l in zip(batched, looped):
            assert_decisions_identical(b, l)


# ---------------------------------------------------------------------------
# 3. Registry façade vs direct construction
# ---------------------------------------------------------------------------


class TestRegistryParity:
    def test_registry_enrollment_scores_identically(
        self, data, auth, enroll_trials, third_party, probes
    ):
        registry = ModelRegistry(
            options=EnrollmentOptions(num_features=FEATURES)
        )
        registry.enroll("alice", PIN, enroll_trials, third_party)
        for trial in probes["legit"] + probes["attack"]:
            via_registry = registry.authenticate("alice", trial)
            direct = auth.authenticate(trial)
            assert_decisions_identical(via_registry, direct)


# ---------------------------------------------------------------------------
# 4. Table-driven experiment runner vs hand-rolled sweep row
# ---------------------------------------------------------------------------


class TestExperimentRowParity:
    def test_generic_runner_matches_hand_rolled_row(self):
        from functools import partial

        from repro.eval.experiments import (
            ExperimentScale,
            ExperimentSpec,
            run_experiment,
        )
        from repro.eval.experiments import _fig14_tabulate
        from repro.eval.protocol import evaluate_user

        scale = ExperimentScale(
            n_users=5,
            n_victims=2,
            n_attackers=2,
            enroll_n=5,
            test_n=3,
            third_party_n=12,
            ra_per_attacker=2,
            ea_per_attacker=2,
            num_features=FEATURES,
            seed=2,
        )
        size = 12
        spec = ExperimentSpec(
            experiment="fig14",
            title="parity probe",
            headers=("store size", "accuracy", "trr"),
            description="single fig14 sweep row for the parity suite.",
            cases=lambda s: [(size, dict(third_party_n=size))],
            tabulate=_fig14_tabulate,
        )
        result = run_experiment(spec, scale)

        # Hand-rolled, pre-refactor style: serial evaluate_user calls
        # and explicit mean arithmetic.
        study = StudyData(n_users=scale.n_users, seed=scale.seed)
        evaluate = partial(
            evaluate_user,
            study,
            pin=PIN,
            attacker_ids=scale.attacker_ids,
            enroll_n=scale.enroll_n,
            test_n=scale.test_n,
            third_party_n=size,
            ra_per_attacker=scale.ra_per_attacker,
            ea_per_attacker=scale.ea_per_attacker,
            num_features=scale.num_features,
        )
        results = [evaluate(victim_id=victim) for victim in scale.victim_ids]
        acc = float(np.mean([r.accuracy for r in results]))
        trr = float(
            np.mean(
                [
                    float(np.mean([r.trr_random, r.trr_emulating]))
                    for r in results
                ]
            )
        )
        assert result.rows == ((size, acc, trr),)
        assert result.summary == {f"acc_{size}": acc, f"trr_{size}": trr}


# ---------------------------------------------------------------------------
# 5. Robustness grid rows vs the committed ROBUSTNESS.json
# ---------------------------------------------------------------------------


class TestRobustnessParity:
    def test_channel_dropout_rows_match_committed_report(self):
        from repro.eval.robustness import build_report, run_robustness_sweep

        committed = json.loads(
            (REPO_ROOT / "ROBUSTNESS.json").read_text()
        )
        expected = [
            row
            for row in committed["grid"]
            if row["fault"] == "channel_dropout"
        ]
        assert expected, "committed report lost its channel_dropout rows"

        study = StudyData(n_users=6, seed=5)
        cells = run_robustness_sweep(
            study,
            faults=["channel_dropout"],
            intensities=(0.0, 0.25, 0.5, 1.0),
            victim_ids=(0, 1),
            attacker_ids=(4, 5),
            enroll_n=9,
            test_n=6,
            third_party_n=60,
            ra_per_attacker=3,
            ea_per_attacker=3,
            num_features=2520,
            seed=0,
        )
        report = build_report(cells, seed=0, label="default")
        assert report["grid"] == expected


# ---------------------------------------------------------------------------
# 6. Fused hot path vs the staged engine
# ---------------------------------------------------------------------------


class TestFusedParity:
    """``authenticate_fast`` must never differ from ``authenticate``.

    The fused pipeline skips every intermediate artifact and reuses
    preallocated scratch buffers, so these tests run the same probes
    through both engines and compare field-for-field at rtol=0/atol=0.
    """

    @pytest.mark.parametrize("kind", ["legit", "two_handed", "attack"])
    def test_all_probe_kinds(self, auth, probes, kind):
        for trial in probes[kind]:
            assert_decisions_identical(
                auth.authenticate_fast(trial), auth.authenticate(trial)
            )

    @pytest.mark.parametrize("kind", ["legit", "attack"])
    def test_privacy_boost_route(self, boost_auth, probes, kind):
        for trial in probes[kind]:
            assert_decisions_identical(
                boost_auth.authenticate_fast(trial),
                boost_auth.authenticate(trial),
            )

    def test_wrong_pin_short_circuits(self, auth, probes):
        trial = probes["legit"][0]
        fast = auth.authenticate_fast(trial, claimed_pin="0000")
        assert_decisions_identical(
            fast, auth.authenticate(trial, claimed_pin="0000")
        )
        assert fast.reason == "PIN verification failed"

    def test_scratch_reuse_does_not_drift(self, auth, probes):
        # Repeated fused calls share one scratch allocation; a stale or
        # partially overwritten buffer would show up as a changed score.
        staged = [auth.authenticate(t) for t in probes["legit"]]
        for _ in range(3):
            for trial, reference in zip(probes["legit"], staged):
                assert_decisions_identical(
                    auth.authenticate_fast(trial), reference
                )

    def test_post_degradation_repaired_probe(self, data, third_party):
        import dataclasses

        from repro.core import DegradationPolicy

        enroll = data.trials(0, PIN, "one_handed", 8)[:6]
        a = P2Auth(
            pin=PIN,
            options=EnrollmentOptions(num_features=FEATURES),
            policy=DegradationPolicy(),
        )
        a.enroll(enroll, third_party)
        probe = data.trials(0, PIN, "one_handed", 8)[6]
        samples = probe.recording.samples.copy()
        samples[0, 40:50] = np.nan  # 0.1 s gap: inside the repair budget
        damaged = dataclasses.replace(
            probe, recording=probe.recording.with_samples(samples)
        )
        staged = a.authenticate(damaged)
        assert staged.degradation, "the repair ladder never ran"
        assert_decisions_identical(a.authenticate_fast(damaged), staged)


class TestWarmup:
    def test_idempotent_and_results_invisible(
        self, enroll_trials, third_party, probes
    ):
        warmed = P2Auth(
            pin=PIN, options=EnrollmentOptions(num_features=FEATURES)
        )
        warmed.enroll(enroll_trials, third_party)
        n = probes["legit"][0].recording.n_samples
        assert warmed.warmup((n,)) is True
        assert warmed.warmup((n,)) is False  # idempotence contract
        cold = P2Auth(
            pin=PIN, options=EnrollmentOptions(num_features=FEATURES)
        )
        cold.enroll(enroll_trials, third_party)
        for trial in probes["legit"] + probes["attack"]:
            assert_decisions_identical(
                warmed.authenticate_fast(trial),
                cold.authenticate_fast(trial),
            )

    def test_warmup_before_enrollment_is_safe(self):
        assert P2Auth(pin=PIN).warmup() is False


# ---------------------------------------------------------------------------
# 7. Cross-user registry batch == per-user loop
# ---------------------------------------------------------------------------


class TestCrossUserBatchParity:
    @pytest.fixture(scope="class")
    def registry(self, data):
        from repro.data import ThirdPartyStore

        registry = ModelRegistry(
            options=EnrollmentOptions(num_features=FEATURES)
        )
        for user in (0, 1, 2):
            store = ThirdPartyStore(
                data, [u for u in range(5) if u != user], PIN
            )
            registry.enroll(
                f"user{user}",
                PIN,
                data.trials(user, PIN, "one_handed", 6),
                store.sample(12),
            )
        return registry

    def test_batch_equals_loop_across_users(self, registry, data):
        ids, trials, pins = [], [], []
        for user in (0, 1, 2):  # each user's own probe
            ids.append(f"user{user}")
            trials.append(data.trials(user, PIN, "one_handed", 7)[6])
            pins.append(None)
        # a cross-user attack, a wrong PIN, and a two-handed probe
        ids.append("user0")
        trials.append(data.emulating_trials(4, 0, PIN, 1)[0])
        pins.append(None)
        ids.append("user1")
        trials.append(data.trials(1, PIN, "one_handed", 8)[7])
        pins.append("0000")
        ids.append("user2")
        trials.append(data.trials(2, PIN, "double3", 1)[0])
        pins.append(None)

        batched = registry.authenticate_many(ids, trials, pins)
        looped = [
            registry.authenticate(u, t, claimed_pin=p)
            for u, t, p in zip(ids, trials, pins)
        ]
        assert len(batched) == len(looped)
        for b, l in zip(batched, looped):
            assert_decisions_identical(b, l)

    def test_length_mismatches_rejected(self, registry, data):
        from repro.errors import ConfigurationError, EnrollmentError

        probe = data.trials(0, PIN, "one_handed", 1)[0]
        with pytest.raises(ConfigurationError, match="user ids"):
            registry.authenticate_many(["user0", "user1"], [probe])
        with pytest.raises(EnrollmentError, match="PINs"):
            registry.authenticate_many(
                ["user0"], [probe], claimed_pins=[PIN, PIN]
            )
