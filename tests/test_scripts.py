"""Tests for the repository scripts."""

import importlib.util
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


@pytest.fixture(scope="module")
def run_experiments():
    spec = importlib.util.spec_from_file_location(
        "run_experiments", SCRIPTS / "run_experiments.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRunExperimentsScript:
    def test_unknown_experiment_exits_2(self, run_experiments, capsys):
        code = run_experiments.main(["--only", "fig99", "--scale", "smoke"])
        assert code == 2

    def test_single_experiment_markdown(self, run_experiments, tmp_path):
        out = tmp_path / "results.md"
        code = run_experiments.main(
            ["--only", "fig9", "--scale", "smoke", "--out", str(out)]
        )
        assert code == 0
        text = out.read_text()
        assert text.startswith("## Measured results")
        assert "Fig. 9" in text
        assert "| pair | rms distance |" in text

    def test_stdout_mode(self, run_experiments, capsys):
        code = run_experiments.main(["--only", "fig9", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "### Fig. 9" in out


@pytest.fixture(scope="module")
def run_robustness():
    spec = importlib.util.spec_from_file_location(
        "run_robustness", SCRIPTS / "run_robustness.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRunRobustnessScript:
    def test_smoke_writes_report_and_table(self, run_robustness, tmp_path):
        out = tmp_path / "rob.json"
        code = run_robustness.main(["--smoke", "--out", str(out)])
        assert code == 0
        import json

        report = json.loads(out.read_text())
        assert report["meta"]["label"] == "smoke"
        assert report["recovery"]["modes"]["full"]["errors"] == 0
        table = (tmp_path / "rob.md").read_text()
        assert "| fault | intensity |" in table

    def test_smoke_is_seed_reproducible(self, run_robustness, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert run_robustness.main(["--smoke", "--seed", "7", "--out", str(a)]) == 0
        assert run_robustness.main(["--smoke", "--seed", "7", "--out", str(b)]) == 0
        assert a.read_text() == b.read_text()
