"""Unit tests for sampling-rate conversion."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signal import decimate_recording, decimate_signal
from repro.types import PPGRecording


class TestDecimateSignal:
    def test_output_length(self):
        x = np.zeros(600)
        out = decimate_signal(x, 100.0, 50.0)
        assert out.shape == (300,)

    def test_non_integer_ratio(self):
        x = np.zeros(600)
        out = decimate_signal(x, 100.0, 75.0)
        assert out.shape == (450,)

    def test_identity_when_rates_equal(self):
        x = np.random.default_rng(0).normal(size=100)
        out = decimate_signal(x, 100.0, 100.0)
        assert np.array_equal(out, x)
        assert out is not x  # a copy, not a view

    def test_low_frequency_content_preserved(self):
        fs = 100.0
        t = np.arange(2000) / fs
        x = np.sin(2 * np.pi * 2.0 * t)
        out = decimate_signal(x, fs, 30.0)
        t2 = np.arange(out.size) / 30.0
        expected = np.sin(2 * np.pi * 2.0 * t2)
        # Ignore filter edge effects.
        core = slice(30, -30)
        assert np.max(np.abs(out[core] - expected[core])) < 0.05

    def test_high_frequency_content_removed(self):
        fs = 100.0
        t = np.arange(2000) / fs
        x = np.sin(2 * np.pi * 40.0 * t)  # above 15 Hz Nyquist of 30 Hz
        out = decimate_signal(x, fs, 30.0)
        assert np.std(out[30:-30]) < 0.1

    def test_2d_input(self):
        x = np.zeros((4, 600))
        assert decimate_signal(x, 100.0, 50.0).shape == (4, 300)

    def test_upsampling_rejected(self):
        with pytest.raises(ConfigurationError):
            decimate_signal(np.zeros(100), 50.0, 100.0)

    def test_invalid_rates(self):
        with pytest.raises(ConfigurationError):
            decimate_signal(np.zeros(100), 0.0, 50.0)


class TestDecimateRecording:
    def test_recording_fields_updated(self):
        rec = PPGRecording(samples=np.zeros((4, 600)), fs=100.0)
        out = decimate_recording(rec, 30.0)
        assert out.fs == 30.0
        assert out.n_samples == 180
        assert out.channels == rec.channels
