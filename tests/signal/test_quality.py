"""Unit tests for signal-quality assessment."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.signal import assess_recording, channel_quality
from repro.types import PPGRecording


class TestChannelQuality:
    def test_clean_channel_usable(self, rng):
        quality = channel_quality(np.sin(np.linspace(0, 30, 500)))
        assert quality.usable
        assert not quality.dead
        assert not quality.saturated

    def test_dead_channel(self):
        quality = channel_quality(np.full(100, 3.0))
        assert quality.dead
        assert not quality.usable

    def test_saturated_channel(self):
        x = np.sin(np.linspace(0, 30, 500))
        x[:100] = 24.0  # pinned at the rail for 20% of the time
        quality = channel_quality(x, full_scale=24.0)
        assert quality.saturated
        assert not quality.usable

    def test_noise_level_tracks_noise(self, rng):
        quiet = channel_quality(0.01 * rng.normal(size=1000))
        loud = channel_quality(1.0 * rng.normal(size=1000))
        assert loud.noise_level > 10 * quiet.noise_level

    def test_too_short_rejected(self):
        with pytest.raises(SignalError):
            channel_quality(np.zeros(2))


class TestAssessRecording:
    def test_real_trial_is_ok(self, one_trial):
        report = assess_recording(one_trial.recording, one_trial.events)
        assert report.ok
        assert report.usable_channels == 4
        assert report.artifact_ratio is not None
        assert report.artifact_ratio > 3.0

    def test_no_events_checks_channels_only(self, one_trial):
        report = assess_recording(one_trial.recording)
        assert report.ok
        assert report.artifact_ratio is None

    def test_dead_recording_not_ok(self):
        recording = PPGRecording(samples=np.zeros((4, 500)), fs=100.0)
        report = assess_recording(recording)
        assert not report.ok
        assert report.usable_channels == 0

    def test_noise_only_fails_artifact_check(self, one_trial, rng):
        noise = rng.normal(0.0, 0.3, size=one_trial.recording.samples.shape)
        recording = one_trial.recording.with_samples(noise)
        report = assess_recording(recording, one_trial.events)
        assert not report.ok
        assert report.usable_channels == 4  # channels fine, artifacts absent

    def test_one_dead_channel_still_ok(self, one_trial):
        corrupted = one_trial.recording.samples.copy()
        corrupted[2] = 5.0
        recording = one_trial.recording.with_samples(corrupted)
        report = assess_recording(recording, one_trial.events)
        assert report.usable_channels == 3
        assert report.ok
