"""Unit tests for short-time energy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SignalError
from repro.signal import short_time_energy, window_energy


class TestShortTimeEnergy:
    def test_matches_naive_computation(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=50)
        window = 7
        out = short_time_energy(x, window)
        half = window // 2
        for i in range(len(x)):
            lo, hi = max(0, i - half), min(len(x), i + half + 1)
            assert out[i] == pytest.approx(np.sum(x[lo:hi] ** 2))

    def test_peak_at_burst(self):
        x = np.zeros(200)
        x[100:105] = 5.0
        energy = short_time_energy(x, 20)
        assert 95 <= np.argmax(energy) <= 110

    def test_zero_signal_zero_energy(self):
        assert np.all(short_time_energy(np.zeros(50), 10) == 0.0)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            short_time_energy(np.zeros(10), 0)

    def test_empty_signal(self):
        with pytest.raises(SignalError):
            short_time_energy(np.array([]), 5)

    def test_2d_rejected(self):
        with pytest.raises(SignalError):
            short_time_energy(np.zeros((2, 10)), 5)

    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=1,
            max_size=60,
        ),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_non_negative(self, values, window):
        assert np.all(short_time_energy(np.asarray(values), window) >= 0.0)


class TestWindowEnergy:
    def test_interior_window(self):
        x = np.arange(10.0)
        # window=3 centered at 5 covers indices 4..6
        assert window_energy(x, 5, 3) == pytest.approx(16.0 + 25.0 + 36.0)

    def test_edge_truncated(self):
        x = np.ones(10)
        assert window_energy(x, 0, 5) == pytest.approx(3.0)

    def test_center_out_of_range(self):
        with pytest.raises(SignalError):
            window_energy(np.zeros(10), 10, 3)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            window_energy(np.zeros(10), 5, 0)
