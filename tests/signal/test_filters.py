"""Unit tests for the smoothing filters."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, SignalError
from repro.signal import (
    median_filter,
    median_filter_multi,
    moving_average,
    savitzky_golay,
)


class TestMedianFilter:
    def test_removes_isolated_impulses(self):
        x = np.zeros(100)
        x[50] = 100.0
        out = median_filter(x, kernel=5)
        assert abs(out[50]) < 1e-9

    def test_preserves_constant_signal(self):
        x = np.full(50, 3.0)
        assert np.allclose(median_filter(x, 5), x)

    def test_preserves_slow_ramp_interior(self):
        x = np.linspace(0, 1, 100)
        out = median_filter(x, 5)
        assert np.allclose(out[5:-5], x[5:-5], atol=1e-9)

    def test_kernel_one_is_identity(self):
        x = np.random.default_rng(0).normal(size=30)
        assert np.allclose(median_filter(x, 1), x)

    def test_even_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            median_filter(np.zeros(10), 4)

    def test_empty_signal_rejected(self):
        with pytest.raises(SignalError):
            median_filter(np.array([]), 3)

    def test_2d_rejected(self):
        with pytest.raises(SignalError):
            median_filter(np.zeros((2, 10)), 3)

    def test_short_signal_passthrough(self):
        x = np.array([1.0, 2.0])
        assert np.allclose(median_filter(x, 5), x)


class TestSavitzkyGolay:
    def test_polynomial_reproduced_exactly(self):
        """SG of order p reproduces degree-<=p polynomials exactly."""
        t = np.linspace(0, 1, 100)
        x = 2.0 + 3.0 * t - t ** 2
        out = savitzky_golay(x, window=11, polyorder=3)
        assert np.allclose(out, x, atol=1e-10)

    def test_attenuates_high_frequency_noise(self):
        rng = np.random.default_rng(1)
        t = np.linspace(0, 1, 500)
        clean = np.sin(2 * np.pi * 2 * t)
        noisy = clean + 0.5 * rng.normal(size=t.size)
        out = savitzky_golay(noisy, window=21, polyorder=3)
        assert np.mean((out - clean) ** 2) < np.mean((noisy - clean) ** 2)

    def test_even_window_rejected(self):
        with pytest.raises(ConfigurationError):
            savitzky_golay(np.zeros(50), window=10)

    def test_window_not_above_polyorder_rejected(self):
        with pytest.raises(ConfigurationError):
            savitzky_golay(np.zeros(50), window=3, polyorder=3)

    def test_short_signal_passthrough(self):
        x = np.arange(5.0)
        assert np.allclose(savitzky_golay(x, window=11, polyorder=3), x)


class TestMovingAverage:
    def test_constant_preserved(self):
        x = np.full(20, 7.0)
        assert np.allclose(moving_average(x, 5), x)

    def test_window_one_identity(self):
        x = np.random.default_rng(2).normal(size=30)
        assert np.allclose(moving_average(x, 1), x)

    def test_edges_use_truncated_window(self):
        x = np.array([1.0, 1.0, 1.0, 1.0])
        out = moving_average(x, 3)
        assert np.allclose(out, 1.0)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            moving_average(np.zeros(5), 0)

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=3,
            max_size=40,
        )
    )
    def test_output_bounded_by_input_range(self, values):
        x = np.asarray(values)
        out = moving_average(x, 5)
        assert np.all(out >= x.min() - 1e-9)
        assert np.all(out <= x.max() + 1e-9)


class TestMedianFilterMulti:
    def test_matches_per_row_median_filter(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 257))
        for kernel in (1, 3, 5, 9):
            multi = median_filter_multi(x, kernel)
            per_row = np.vstack([median_filter(row, kernel) for row in x])
            assert np.array_equal(multi, per_row)

    def test_single_channel_matches(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 64))
        assert np.array_equal(
            median_filter_multi(x, 5)[0], median_filter(x[0], 5)
        )

    def test_short_signal_passthrough(self):
        x = np.arange(6.0).reshape(2, 3)
        out = median_filter_multi(x, kernel=5)
        assert np.array_equal(out, x)
        out[0, 0] = 99.0
        assert np.isclose(x[0, 0], 0.0)  # a copy, not a view

    def test_even_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            median_filter_multi(np.zeros((2, 10)), kernel=4)

    def test_1d_rejected(self):
        with pytest.raises(SignalError):
            median_filter_multi(np.zeros(10))

    def test_empty_rejected(self):
        with pytest.raises(SignalError):
            median_filter_multi(np.zeros((2, 0)))


class TestMovingAverageMatchesConvolveFormulation:
    """The cumsum implementation must reproduce the old double-convolve."""

    @staticmethod
    def _reference(samples: np.ndarray, window: int) -> np.ndarray:
        kernel = np.ones(window)
        sums = np.convolve(samples, kernel, mode="same")
        counts = np.convolve(np.ones_like(samples), kernel, mode="same")
        return sums / counts

    @pytest.mark.parametrize("window", [2, 3, 4, 5, 10, 29, 30, 99, 100])
    def test_matches_reference(self, window):
        rng = np.random.default_rng(window)
        x = rng.normal(size=100)
        np.testing.assert_allclose(
            moving_average(x, window),
            self._reference(x, window),
            rtol=1e-12,
            atol=1e-12,
        )

    def test_window_larger_than_signal(self):
        """w > n is the one deliberate divergence from the convolve
        formulation, which returned a max(n, w)-length array there
        (np.convolve 'same' output is as long as the *longer* operand).
        The cumsum version keeps the output aligned with the input:
        every truncated window covers the whole signal."""
        x = np.arange(5.0)
        out = moving_average(x, 11)
        assert out.shape == x.shape
        np.testing.assert_allclose(out, np.full(5, 2.0), rtol=1e-12)


class TestSavitzkyGolayCached:
    """The cached SG twin must be bit-identical where it promises to be."""

    def test_matches_uncached_bit_for_bit(self):
        from repro.signal.filters import savitzky_golay, savitzky_golay_cached

        rng = np.random.default_rng(0)
        for n in (12, 57, 200, 457):
            x = rng.standard_normal(n)
            for window, polyorder in ((11, 3), (5, 2), (7, 3)):
                assert np.array_equal(
                    savitzky_golay_cached(x, window=window, polyorder=polyorder),
                    savitzky_golay(x, window=window, polyorder=polyorder),
                )

    def test_fit_edges_false_interior_identical(self):
        # Skipping the polynomial edge fits must leave every interior
        # sample (index half .. n-half-1) bit-identical; the edge
        # samples are unspecified and callers must never read them.
        from repro.signal.filters import savitzky_golay, savitzky_golay_cached

        rng = np.random.default_rng(1)
        x = rng.standard_normal(300)
        window = 11
        half = window // 2
        full = savitzky_golay(x, window=window, polyorder=3)
        lazy = savitzky_golay_cached(
            x, window=window, polyorder=3, fit_edges=False
        )
        assert np.array_equal(lazy[half:-half], full[half:-half])

    def test_cache_reuse_identical_across_calls(self):
        from repro.signal.filters import (
            clear_savgol_cache,
            savitzky_golay_cached,
        )

        rng = np.random.default_rng(2)
        x = rng.standard_normal(128)
        clear_savgol_cache()
        cold = savitzky_golay_cached(x)
        warm = savitzky_golay_cached(x)
        assert np.array_equal(cold, warm)

    def test_validation_matches_uncached(self):
        from repro.signal.filters import savitzky_golay_cached

        with pytest.raises(ConfigurationError):
            savitzky_golay_cached(np.ones(32), window=10)
        with pytest.raises(ConfigurationError):
            savitzky_golay_cached(np.ones(32), window=3, polyorder=3)
        with pytest.raises(SignalError):
            savitzky_golay_cached(np.ones((2, 32)))
