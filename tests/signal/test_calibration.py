"""Unit tests for fine-grained keystroke time calibration."""

import numpy as np
import pytest

from repro.config import PipelineConfig
from repro.errors import ConfigurationError, SignalError
from repro.signal import calibrate_keystroke_index, calibrate_trial_indices


def _bump_signal(n=600, center=300, amplitude=5.0, width=0.05, fs=100.0):
    """A keystroke-like bump on a small heartbeat-like carrier."""
    t = np.arange(n) / fs
    carrier = 0.5 * np.sin(2 * np.pi * 1.2 * t)
    bump = amplitude * np.exp(-0.5 * ((t - center / fs) / width) ** 2)
    return carrier + bump


class TestCalibration:
    def test_recovers_apex_from_offset_report(self):
        signal = _bump_signal(center=300)
        for offset in (-12, -5, 0, 5, 12):
            calibrated = calibrate_keystroke_index(signal, 300 + offset, window=30)
            assert abs(calibrated - 300) <= 3

    def test_recovers_trough_too(self):
        signal = -_bump_signal(center=250)
        calibrated = calibrate_keystroke_index(signal, 255, window=30)
        assert abs(calibrated - 250) <= 3

    def test_near_edge_report(self):
        signal = _bump_signal(n=100, center=10)
        calibrated = calibrate_keystroke_index(signal, 5, window=30)
        assert 0 <= calibrated < 100

    def test_out_of_range_report_rejected(self):
        with pytest.raises(SignalError):
            calibrate_keystroke_index(np.zeros(100), 150)

    def test_tiny_window_rejected(self):
        with pytest.raises(ConfigurationError):
            calibrate_keystroke_index(np.zeros(100), 50, window=1)

    def test_2d_rejected(self):
        with pytest.raises(SignalError):
            calibrate_keystroke_index(np.zeros((2, 100)), 50)


class TestTrialCalibration:
    def test_all_keystrokes_calibrated(self, one_trial, pipeline_config):
        from repro.signal import median_filter

        rec = one_trial.recording
        reference = np.vstack(
            [median_filter(ch, pipeline_config.median_kernel) for ch in rec.samples]
        ).mean(axis=0)
        indices = calibrate_trial_indices(
            rec, one_trial.events, pipeline_config, reference
        )
        assert len(indices) == len(one_trial.events)
        # Calibrated index should land within the artifact (~0.3 s of
        # the true press), much closer than the raw comm-delay jitter.
        for index, event in zip(indices, one_trial.events):
            true_index = int(round(event.true_time * rec.fs))
            assert abs(index - true_index) <= 30

    def test_reference_length_mismatch_rejected(self, one_trial, pipeline_config):
        with pytest.raises(SignalError):
            calibrate_trial_indices(
                one_trial.recording,
                one_trial.events,
                pipeline_config,
                np.zeros(10),
            )

    def test_calibration_beats_reported_times(self, population, synthesizer, pipeline_config):
        """On average, calibration must reduce the timestamp error."""
        from repro.signal import median_filter

        rng = np.random.default_rng(2024)
        raw_err, cal_err = [], []
        for rep in range(8):
            trial = synthesizer.synthesize_trial(population[rep % 4], "1628", rng)
            rec = trial.recording
            reference = np.vstack(
                [median_filter(ch, pipeline_config.median_kernel) for ch in rec.samples]
            ).mean(axis=0)
            indices = calibrate_trial_indices(
                rec, trial.events, pipeline_config, reference
            )
            for index, event in zip(indices, trial.events):
                true_index = int(round(event.true_time * rec.fs))
                reported_index = int(round(event.reported_time * rec.fs))
                # Compare against the artifact apex region (the peak
                # lies a few samples after the press).
                raw_err.append(abs(reported_index - true_index))
                cal_err.append(abs(index - true_index))
        # The calibrated positions are allowed to sit on the apex
        # (slightly after the press); what matters is consistency:
        # their spread must be tight.
        assert np.std(cal_err) <= np.std(raw_err) + 2.0


def _recording(n, fs=100.0, start_time=0.0, seed=0):
    rng = np.random.default_rng(seed)
    samples = rng.standard_normal((4, n))
    from repro.types import PPGRecording

    return PPGRecording(samples=samples, fs=fs, start_time=start_time)


def _events(times):
    from repro.types import KeystrokeEvent

    return [
        KeystrokeEvent(key=str(i % 10), true_time=t, reported_time=t)
        for i, t in enumerate(times)
    ]


class TestFastTrialCalibration:
    """calibrate_trial_indices_fast must be result-identical to the
    reference implementation — same indices, same errors."""

    def test_randomized_parity(self):
        from repro.signal.calibration import (
            calibrate_trial_indices,
            calibrate_trial_indices_fast,
        )
        from repro.signal.filters import clear_savgol_cache

        rng = np.random.default_rng(7)
        clear_savgol_cache()
        for case in range(40):
            n = int(rng.integers(40, 800))
            window = int(rng.integers(2, 61))
            sg_window = int(rng.choice([5, 7, 11, 15]))
            config = PipelineConfig(
                calibration_window=window,
                sg_window=sg_window,
                sg_polyorder=3,
            )
            rec = _recording(n, seed=case)
            # A heartbeat-like reference with occasional flat plateaus,
            # so ties and candidate-poor windows get exercised too.
            t = np.arange(n) / rec.fs
            reference = np.sin(2 * np.pi * 1.3 * t) + 0.1 * rng.standard_normal(n)
            if case % 3 == 0:
                lo = int(rng.integers(0, max(1, n - 10)))
                reference[lo : lo + 10] = reference[lo]
            k = int(rng.integers(1, 7))
            # Reported times spanning edges, interior, and out-of-range
            # (the raw index is clipped into the signal by both paths).
            times = rng.uniform(-0.2, n / rec.fs + 0.2, size=k)
            events = _events(times)
            slow = calibrate_trial_indices(rec, events, config, reference)
            fast = calibrate_trial_indices_fast(rec, events, config, reference)
            assert fast == slow, (
                f"case {case}: n={n} window={window} sg={sg_window}"
            )

    def test_empty_events(self, pipeline_config):
        from repro.signal.calibration import (
            calibrate_trial_indices,
            calibrate_trial_indices_fast,
        )

        rec = _recording(120)
        reference = np.linspace(0.0, 1.0, 120)
        assert calibrate_trial_indices_fast(
            rec, [], pipeline_config, reference
        ) == calibrate_trial_indices(rec, [], pipeline_config, reference)

    def test_error_parity(self, pipeline_config):
        from repro.signal.calibration import (
            calibrate_trial_indices,
            calibrate_trial_indices_fast,
        )

        rec = _recording(100)
        events = _events([0.5])
        bad_ref = np.zeros(10)
        with pytest.raises(SignalError) as slow_err:
            calibrate_trial_indices(rec, events, pipeline_config, bad_ref)
        with pytest.raises(SignalError) as fast_err:
            calibrate_trial_indices_fast(rec, events, pipeline_config, bad_ref)
        assert str(fast_err.value) == str(slow_err.value)

        # PipelineConfig rejects calibration_window < 2 at construction,
        # so a stub drives the functions' own defensive check.
        tiny = type(
            "TinyConfig",
            (),
            {"calibration_window": 1, "sg_window": 11, "sg_polyorder": 3},
        )()
        good_ref = np.zeros(100)
        with pytest.raises(ConfigurationError) as slow_cfg:
            calibrate_trial_indices(rec, events, tiny, good_ref)
        with pytest.raises(ConfigurationError) as fast_cfg:
            calibrate_trial_indices_fast(rec, events, tiny, good_ref)
        assert str(fast_cfg.value) == str(slow_cfg.value)
