"""Unit tests for waveform segmentation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SegmentationError
from repro.signal import segment_around


class TestSegmentAround:
    def test_centered_window(self):
        x = np.arange(100.0)[np.newaxis, :]
        seg = segment_around(x, center=50, window=10)
        assert seg.shape == (1, 10)
        assert seg[0, 0] == 45.0

    def test_left_edge_shifted_inward(self):
        x = np.arange(100.0)[np.newaxis, :]
        seg = segment_around(x, center=2, window=20)
        assert seg[0, 0] == 0.0
        assert seg.shape == (1, 20)

    def test_right_edge_shifted_inward(self):
        x = np.arange(100.0)[np.newaxis, :]
        seg = segment_around(x, center=98, window=20)
        assert seg[0, -1] == 99.0
        assert seg.shape == (1, 20)

    def test_multichannel(self):
        x = np.random.default_rng(0).normal(size=(4, 200))
        seg = segment_around(x, 100, 90)
        assert seg.shape == (4, 90)
        assert np.array_equal(seg, x[:, 55:145])

    def test_1d_promoted(self):
        seg = segment_around(np.arange(50.0), 25, 10)
        assert seg.shape == (1, 10)

    def test_signal_shorter_than_window(self):
        with pytest.raises(SegmentationError):
            segment_around(np.zeros((1, 50)), 25, 90)

    def test_center_out_of_range(self):
        with pytest.raises(SegmentationError):
            segment_around(np.zeros((1, 100)), 150, 10)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            segment_around(np.zeros((1, 100)), 50, 0)

    @given(
        st.integers(min_value=10, max_value=200),
        st.integers(min_value=0, max_value=199),
        st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_window_always_exact_and_contiguous(self, n, center, window):
        if center >= n or window > n:
            return
        x = np.arange(float(n))[np.newaxis, :]
        seg = segment_around(x, center, window)
        assert seg.shape == (1, window)
        # Contiguity: the values are consecutive integers.
        assert np.allclose(np.diff(seg[0]), 1.0)
        # The center is inside the chosen window (by construction).
        assert seg[0, 0] <= center <= seg[0, -1]
