"""Unit tests for local extreme-point search."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SignalError
from repro.signal import local_extrema


class TestLocalExtrema:
    def test_finds_peak_and_trough(self):
        x = np.array([0.0, 1.0, 3.0, 1.0, -2.0, 0.0])
        extrema = set(local_extrema(x))
        assert 2 in extrema  # the peak at value 3
        assert 4 in extrema  # the trough at value -2

    def test_endpoints_always_candidates(self):
        x = np.linspace(0, 1, 20)  # strictly monotone
        extrema = local_extrema(x)
        assert extrema[0] == 0
        assert extrema[-1] == 19

    def test_monotone_has_only_endpoints(self):
        x = np.linspace(0, 1, 20)
        assert list(local_extrema(x)) == [0, 19]

    def test_plateau_interior_skipped(self):
        x = np.array([0.0, 1.0, 1.0, 1.0, 0.0])
        extrema = set(local_extrema(x))
        assert extrema <= {0, 4}

    def test_short_signals(self):
        assert list(local_extrema(np.array([1.0]))) == [0]
        assert list(local_extrema(np.array([1.0, 2.0]))) == [0, 1]

    def test_empty_rejected(self):
        with pytest.raises(SignalError):
            local_extrema(np.array([]))

    def test_2d_rejected(self):
        with pytest.raises(SignalError):
            local_extrema(np.zeros((2, 5)))

    def test_sine_extrema_near_quarter_periods(self):
        t = np.linspace(0, 2 * np.pi, 1000)
        x = np.sin(t)
        extrema = local_extrema(x)
        interior = [i for i in extrema if 0 < i < 999]
        # One max near pi/2, one min near 3pi/2.
        assert len(interior) == 2
        assert abs(t[interior[0]] - np.pi / 2) < 0.05
        assert abs(t[interior[1]] - 3 * np.pi / 2) < 0.05

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=80,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_indices_sorted_unique_and_in_range(self, values):
        x = np.asarray(values)
        extrema = local_extrema(x)
        assert np.all(np.diff(extrema) > 0)
        assert extrema[0] >= 0
        assert extrema[-1] < len(x)
