"""Unit and property tests for smoothness-priors detrending."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SignalError
from repro.signal.detrend import (
    _estimate_trend_reference,
    clear_detrend_cache,
    detrend_cache_info,
    estimate_trend,
    smoothness_priors_detrend,
    smoothness_priors_detrend_batch,
)


class TestTrendEstimation:
    def test_linear_trend_recovered(self):
        t = np.linspace(0, 10, 300)
        x = 2.0 * t + 1.0
        trend = estimate_trend(x, lam=50.0)
        assert np.allclose(trend, x, atol=0.05)

    def test_detrending_removes_linear_trend(self):
        t = np.linspace(0, 10, 300)
        x = 2.0 * t + 1.0
        out = smoothness_priors_detrend(x, lam=50.0)
        assert np.max(np.abs(out)) < 0.05

    def test_detrending_removes_slow_sinusoid(self):
        fs = 100.0
        t = np.arange(2000) / fs
        slow = np.sin(2 * np.pi * 0.1 * t)
        out = smoothness_priors_detrend(slow, lam=50.0)
        assert np.std(out) < 0.3 * np.std(slow)

    def test_detrending_keeps_sharp_transient(self):
        """Keystroke-like bumps must survive (the detector depends on it)."""
        fs = 100.0
        t = np.arange(1000) / fs
        bump = 3.0 * np.exp(-0.5 * ((t - 5.0) / 0.05) ** 2)
        drift = 2.0 * np.sin(2 * np.pi * 0.08 * t)
        out = smoothness_priors_detrend(bump + drift, lam=50.0)
        # The bump survives mostly intact (some attenuation is the
        # price of the trend removal) while the drift disappears.
        assert out[int(5.0 * fs)] > 1.0
        assert np.std(out[:300]) < 0.3

    def test_larger_lambda_smoother_trend(self):
        rng = np.random.default_rng(0)
        x = np.cumsum(rng.normal(size=500))
        gentle = estimate_trend(x, lam=500.0)
        tight = estimate_trend(x, lam=5.0)
        # A smoother trend follows the signal less closely.
        assert np.mean((x - gentle) ** 2) > np.mean((x - tight) ** 2)

    def test_2d_input_processed_per_channel(self):
        t = np.linspace(0, 10, 200)
        x = np.vstack([t, 2 * t])
        out = smoothness_priors_detrend(x, lam=50.0)
        assert out.shape == x.shape
        assert np.max(np.abs(out)) < 0.1

    def test_invalid_lambda(self):
        with pytest.raises(ConfigurationError):
            smoothness_priors_detrend(np.zeros(10), lam=0.0)

    def test_too_short_signal(self):
        with pytest.raises(SignalError):
            smoothness_priors_detrend(np.zeros(2))

    def test_3d_rejected(self):
        with pytest.raises(SignalError):
            smoothness_priors_detrend(np.zeros((2, 3, 4)))


class TestDetrendProperties:
    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=3,
            max_size=120,
        ),
        st.floats(min_value=0.5, max_value=500.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_decomposition_is_exact(self, values, lam):
        """trend + detrended == original, always."""
        x = np.asarray(values)
        trend = estimate_trend(x, lam=lam)
        detrended = smoothness_priors_detrend(x, lam=lam)
        assert np.allclose(trend + detrended, x, atol=1e-6)

    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=5,
            max_size=100,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_linearity(self, values):
        x = np.asarray(values)
        a = smoothness_priors_detrend(2.0 * x, lam=20.0)
        b = 2.0 * smoothness_priors_detrend(x, lam=20.0)
        assert np.allclose(a, b, atol=1e-6)

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_constant_maps_to_zero(self, value):
        x = np.full(50, value)
        out = smoothness_priors_detrend(x, lam=20.0)
        assert np.max(np.abs(out)) < 1e-6


def _ppg_like(n: int, seed: int) -> np.ndarray:
    """A PPG-scale test signal: ~1 Hz pulse, slow drift, sensor noise.

    Parity is asserted at realistic signal amplitudes (order 1): both
    solvers sit at machine-level residual, so the absolute difference
    between them scales with the signal amplitude.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    pulse = np.sin(2 * np.pi * 0.011 * t)
    drift = 0.5 * np.sin(2 * np.pi * t / max(n, 8) * 1.5)
    return pulse + drift + 0.05 * rng.normal(size=n)


class TestBandedParity:
    """The banded Cholesky path must match the sparse-LU reference."""

    LAMBDAS = (0.8, 5.0, 50.0, 300.0)
    LENGTHS = list(range(3, 41)) + [64, 100, 257, 510, 1024, 4096]

    @pytest.mark.parametrize("n", LENGTHS)
    def test_trend_matches_reference(self, n):
        x = _ppg_like(n, seed=n)
        for lam in self.LAMBDAS:
            banded = estimate_trend(x, lam=lam)
            reference = _estimate_trend_reference(x, lam=lam)
            np.testing.assert_allclose(banded, reference, rtol=0, atol=1e-10)

    @pytest.mark.parametrize("lam", LAMBDAS)
    def test_detrend_matches_reference(self, lam):
        x = _ppg_like(510, seed=3)
        banded = smoothness_priors_detrend(x, lam=lam)
        reference = x - _estimate_trend_reference(x, lam=lam)
        np.testing.assert_allclose(banded, reference, rtol=0, atol=1e-10)

    def test_2d_matches_per_row_reference(self):
        rows = np.vstack([_ppg_like(257, seed=s) for s in range(4)])
        banded = smoothness_priors_detrend(rows, lam=50.0)
        reference = rows - np.vstack(
            [_estimate_trend_reference(row, lam=50.0) for row in rows]
        )
        np.testing.assert_allclose(banded, reference, rtol=0, atol=1e-10)

    def test_2d_identical_to_per_row_banded(self):
        """The multi-RHS solve is bitwise equal to per-row solves."""
        rows = np.vstack([_ppg_like(200, seed=s) for s in range(3)])
        multi = smoothness_priors_detrend(rows, lam=50.0)
        single = np.vstack(
            [smoothness_priors_detrend(row, lam=50.0) for row in rows]
        )
        assert np.array_equal(multi, single)

    def test_batch_identical_to_per_trial(self):
        stacks = np.stack(
            [
                np.vstack([_ppg_like(150, seed=10 * b + c) for c in range(4)])
                for b in range(3)
            ]
        )
        batched = smoothness_priors_detrend_batch(stacks, lam=50.0)
        per_trial = np.stack(
            [smoothness_priors_detrend(trial, lam=50.0) for trial in stacks]
        )
        assert batched.shape == stacks.shape
        assert np.array_equal(batched, per_trial)

    def test_batch_rejects_2d(self):
        with pytest.raises(SignalError):
            smoothness_priors_detrend_batch(np.zeros((4, 100)))

    def test_batch_rejects_short_signals(self):
        with pytest.raises(SignalError):
            smoothness_priors_detrend_batch(np.zeros((2, 3, 2)))


class TestFactorizationCache:
    def test_miss_then_hit_identical_results(self):
        x = _ppg_like(321, seed=1)
        clear_detrend_cache()
        assert detrend_cache_info().currsize == 0
        on_miss = estimate_trend(x, lam=50.0)
        assert detrend_cache_info().misses == 1
        on_hit = estimate_trend(x, lam=50.0)
        assert detrend_cache_info().hits == 1
        assert np.array_equal(on_miss, on_hit)

    def test_recompute_after_clear_identical(self):
        x = _ppg_like(128, seed=2)
        first = estimate_trend(x, lam=5.0)
        clear_detrend_cache()
        second = estimate_trend(x, lam=5.0)
        assert np.array_equal(first, second)

    def test_distinct_lambdas_get_distinct_factors(self):
        clear_detrend_cache()
        x = _ppg_like(100, seed=3)
        estimate_trend(x, lam=5.0)
        estimate_trend(x, lam=50.0)
        assert detrend_cache_info().currsize == 2

    def test_cached_factor_is_read_only(self):
        from repro.signal.detrend import _banded_cholesky

        factor = _banded_cholesky(64, 50.0)
        with pytest.raises(ValueError):
            factor[0, 0] = 1.0


class TestSolveTrendFast:
    """The LAPACK-direct solver must be bit-identical to the
    cho_solve_banded reference path (promised by its docstring)."""

    def test_bit_identical_on_2d_rows(self):
        from repro.signal.detrend import _solve_trend, _solve_trend_fast

        rng = np.random.default_rng(11)
        for n, m, lam in ((32, 1, 10.0), (257, 4, 50.0), (600, 3, 1e4)):
            rows = np.ascontiguousarray(rng.standard_normal((m, n)))
            fast = _solve_trend_fast(rows, lam)
            slow = _solve_trend(rows, lam)
            assert fast.shape == slow.shape
            assert np.array_equal(np.asarray(fast), slow)

    def test_input_rows_not_mutated(self):
        from repro.signal.detrend import _solve_trend_fast

        rng = np.random.default_rng(12)
        rows = rng.standard_normal((2, 128))
        before = rows.copy()
        _solve_trend_fast(rows, 10.0)
        assert np.array_equal(rows, before)
