"""Unit and property tests for smoothness-priors detrending."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SignalError
from repro.signal.detrend import estimate_trend, smoothness_priors_detrend


class TestTrendEstimation:
    def test_linear_trend_recovered(self):
        t = np.linspace(0, 10, 300)
        x = 2.0 * t + 1.0
        trend = estimate_trend(x, lam=50.0)
        assert np.allclose(trend, x, atol=0.05)

    def test_detrending_removes_linear_trend(self):
        t = np.linspace(0, 10, 300)
        x = 2.0 * t + 1.0
        out = smoothness_priors_detrend(x, lam=50.0)
        assert np.max(np.abs(out)) < 0.05

    def test_detrending_removes_slow_sinusoid(self):
        fs = 100.0
        t = np.arange(2000) / fs
        slow = np.sin(2 * np.pi * 0.1 * t)
        out = smoothness_priors_detrend(slow, lam=50.0)
        assert np.std(out) < 0.3 * np.std(slow)

    def test_detrending_keeps_sharp_transient(self):
        """Keystroke-like bumps must survive (the detector depends on it)."""
        fs = 100.0
        t = np.arange(1000) / fs
        bump = 3.0 * np.exp(-0.5 * ((t - 5.0) / 0.05) ** 2)
        drift = 2.0 * np.sin(2 * np.pi * 0.08 * t)
        out = smoothness_priors_detrend(bump + drift, lam=50.0)
        # The bump survives mostly intact (some attenuation is the
        # price of the trend removal) while the drift disappears.
        assert out[int(5.0 * fs)] > 1.0
        assert np.std(out[:300]) < 0.3

    def test_larger_lambda_smoother_trend(self):
        rng = np.random.default_rng(0)
        x = np.cumsum(rng.normal(size=500))
        gentle = estimate_trend(x, lam=500.0)
        tight = estimate_trend(x, lam=5.0)
        # A smoother trend follows the signal less closely.
        assert np.mean((x - gentle) ** 2) > np.mean((x - tight) ** 2)

    def test_2d_input_processed_per_channel(self):
        t = np.linspace(0, 10, 200)
        x = np.vstack([t, 2 * t])
        out = smoothness_priors_detrend(x, lam=50.0)
        assert out.shape == x.shape
        assert np.max(np.abs(out)) < 0.1

    def test_invalid_lambda(self):
        with pytest.raises(ConfigurationError):
            smoothness_priors_detrend(np.zeros(10), lam=0.0)

    def test_too_short_signal(self):
        with pytest.raises(SignalError):
            smoothness_priors_detrend(np.zeros(2))

    def test_3d_rejected(self):
        with pytest.raises(SignalError):
            smoothness_priors_detrend(np.zeros((2, 3, 4)))


class TestDetrendProperties:
    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=3,
            max_size=120,
        ),
        st.floats(min_value=0.5, max_value=500.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_decomposition_is_exact(self, values, lam):
        """trend + detrended == original, always."""
        x = np.asarray(values)
        trend = estimate_trend(x, lam=lam)
        detrended = smoothness_priors_detrend(x, lam=lam)
        assert np.allclose(trend + detrended, x, atol=1e-6)

    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=5,
            max_size=100,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_linearity(self, values):
        x = np.asarray(values)
        a = smoothness_priors_detrend(2.0 * x, lam=20.0)
        b = 2.0 * smoothness_priors_detrend(x, lam=20.0)
        assert np.allclose(a, b, atol=1e-6)

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_constant_maps_to_zero(self, value):
        x = np.full(50, value)
        out = smoothness_priors_detrend(x, lam=20.0)
        assert np.max(np.abs(out)) < 1e-6
