"""Unit tests for the evaluation feature cache."""

import numpy as np
import pytest

from repro.config import PipelineConfig
from repro.core import EnrollmentOptions, preprocess_trial
from repro.data import StudyData, ThirdPartyStore
from repro.eval.featurecache import (
    FeatureCache,
    SHARE_NEGATIVES_ENV,
    cache_stats,
    clear_default_cache,
    default_cache,
    sharing_enabled,
    store_content_key,
    trial_content_key,
)

PIN = "1628"


@pytest.fixture(scope="module")
def data():
    return StudyData(n_users=5, seed=13)


@pytest.fixture(scope="module")
def trials(data):
    return ThirdPartyStore(data, [1, 2, 3], PIN).sample(8)


@pytest.fixture()
def cache():
    return FeatureCache()


class TestContentKeys:
    def test_same_content_same_key(self):
        config = PipelineConfig()
        # StudyData regenerates identical trials from per-key seeds, so
        # two instances (= two worker processes) yield distinct objects
        # with equal content — the case the cache key must unify.
        a = StudyData(n_users=5, seed=13).trials(0, PIN, "one_handed", 1)[0]
        b = StudyData(n_users=5, seed=13).trials(0, PIN, "one_handed", 1)[0]
        assert a is not b
        assert trial_content_key(a, config) == trial_content_key(b, config)

    def test_different_trials_different_keys(self, data):
        config = PipelineConfig()
        a, b = data.trials(0, PIN, "one_handed", 2)
        assert trial_content_key(a, config) != trial_content_key(b, config)

    def test_config_changes_key(self, data):
        trial = data.trials(0, PIN, "one_handed", 1)[0]
        assert trial_content_key(trial, PipelineConfig()) != trial_content_key(
            trial, PipelineConfig(detrend_lambda=5.0)
        )

    def test_store_key_covers_feature_options(self, trials):
        config = PipelineConfig()
        a = store_content_key(trials, config, EnrollmentOptions())
        b = store_content_key(
            trials, config, EnrollmentOptions(num_features=84)
        )
        assert a != b

    def test_store_key_ignores_classifier(self, trials):
        """The bank holds no classifiers, so the factory is irrelevant."""
        from repro.ml import KNNClassifier

        config = PipelineConfig()
        a = store_content_key(trials, config, EnrollmentOptions())
        b = store_content_key(
            trials, config, EnrollmentOptions(classifier_factory=KNNClassifier)
        )
        assert a == b


class TestPreprocessCaching:
    def test_results_match_uncached(self, cache, trials):
        config = PipelineConfig()
        cached = cache.preprocess(trials, config)
        for got, trial in zip(cached, trials):
            direct = preprocess_trial(trial, config)
            assert np.array_equal(got.detrended, direct.detrended)
            assert got.keystroke_indices == direct.keystroke_indices
            assert got.keystroke_detected == direct.keystroke_detected

    def test_second_pass_hits(self, cache, trials):
        cache.preprocess(trials)
        assert cache.stats.trial_misses == len(trials)
        again = cache.preprocess(trials)
        assert cache.stats.trial_hits == len(trials)
        assert cache.stats.trial_misses == len(trials)
        first = cache.preprocess(trials)
        assert again[0] is first[0]  # hits share the cached object

    def test_partial_hit(self, cache, trials):
        cache.preprocess(trials[:4])
        cache.preprocess(trials)
        assert cache.stats.trial_hits == 4
        assert cache.stats.trial_misses == len(trials)

    def test_cached_arrays_read_only(self, cache, trials):
        pre = cache.preprocess(trials[:1])[0]
        with pytest.raises(ValueError):
            pre.detrended[0, 0] = 1.0

    def test_lru_eviction(self, trials):
        small = FeatureCache(max_trials=2)
        small.preprocess(trials[:3])
        small.preprocess(trials[:3])
        # Capacity 2 cannot hold 3 trials: at least some re-misses.
        assert small.stats.trial_misses > 3

    def test_clear_resets(self, cache, trials):
        cache.preprocess(trials)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.trial_misses == 0


class TestBankCaching:
    def test_hit_returns_same_object(self, cache, trials):
        options = EnrollmentOptions(num_features=84)
        a = cache.negative_bank(trials, options=options)
        b = cache.negative_bank(trials, options=options)
        assert a is b
        assert cache.stats.bank_hits == 1
        assert cache.stats.bank_misses == 1

    def test_distinct_options_distinct_banks(self, cache, trials):
        a = cache.negative_bank(
            trials, options=EnrollmentOptions(num_features=84)
        )
        b = cache.negative_bank(
            trials, options=EnrollmentOptions(num_features=168)
        )
        assert a is not b
        assert cache.stats.bank_misses == 2

    def test_bank_preprocessing_feeds_trial_cache(self, cache, trials):
        cache.negative_bank(trials, options=EnrollmentOptions(num_features=84))
        cache.preprocess(trials)
        assert cache.stats.trial_hits == len(trials)


class TestDefaultCache:
    def test_process_wide_instance(self):
        clear_default_cache()
        assert default_cache() is default_cache()
        clear_default_cache()

    def test_stats_without_cache(self):
        clear_default_cache()
        stats = cache_stats()
        assert stats.trial_hits == 0
        assert stats.bank_misses == 0

    def test_merged(self):
        from repro.eval.featurecache import CacheStats

        a = CacheStats(trial_hits=1, trial_misses=2, bank_hits=3, bank_misses=4)
        b = CacheStats(trial_hits=10, trial_misses=20, bank_hits=30, bank_misses=40)
        merged = a.merged(b)
        assert merged.trial_hits == 11
        assert merged.bank_misses == 44


class TestSharingSwitch:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv(SHARE_NEGATIVES_ENV, "0")
        assert sharing_enabled(True) is True
        monkeypatch.setenv(SHARE_NEGATIVES_ENV, "1")
        assert sharing_enabled(False) is False

    def test_env_default_on(self, monkeypatch):
        monkeypatch.delenv(SHARE_NEGATIVES_ENV, raising=False)
        assert sharing_enabled() is True

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", " OFF "])
    def test_env_disables(self, monkeypatch, value):
        monkeypatch.setenv(SHARE_NEGATIVES_ENV, value)
        assert sharing_enabled() is False
