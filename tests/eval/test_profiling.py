"""Unit tests for profiling helpers."""

import time

import numpy as np
import pytest

from repro.eval.profiling import profile_call, time_call


class TestProfileCall:
    def test_captures_result_and_time(self):
        run = profile_call(lambda: sum(range(1000)))
        assert run.result == 499500
        assert run.seconds >= 0.0

    def test_captures_allocation(self):
        run = profile_call(lambda: np.zeros(1_000_000))
        assert run.peak_mib > 5.0  # 8 MB of float64

    def test_small_allocation_small_peak(self):
        run = profile_call(lambda: [1, 2, 3])
        assert run.peak_mib < 1.0

    def test_exception_propagates_and_stops_tracing(self):
        with pytest.raises(ValueError):
            profile_call(lambda: (_ for _ in ()).throw(ValueError("boom")))
        # tracemalloc must be stopped; a second call works fine.
        assert profile_call(lambda: 1).result == 1


class TestTimeCall:
    def test_mean_of_repeats(self):
        seconds, result = time_call(lambda: 7, repeat=3)
        assert result == 7
        assert seconds >= 0.0

    def test_invalid_repeat(self):
        with pytest.raises(ValueError):
            time_call(lambda: 1, repeat=0)

    def test_measures_sleep(self):
        seconds, _ = time_call(lambda: time.sleep(0.01))
        assert seconds >= 0.009


class TestProfileCallReentrancy:
    """Regression: a nested profile_call used to stop the outer trace,
    so the outer frame reported a zero peak and tracing died."""

    def test_nested_call_keeps_outer_trace_alive(self):
        import tracemalloc

        def outer():
            inner = profile_call(lambda: np.zeros(1_000_000))
            assert tracemalloc.is_tracing()  # old code had stopped it here
            return inner

        run = profile_call(outer)
        assert not tracemalloc.is_tracing()
        assert run.result.peak_mib > 5.0  # inner saw its own ~8 MiB

    def test_outer_peak_includes_pre_nested_spike(self):
        """The nested frame resets tracemalloc's peak counter; the
        watermark must preserve a spike that happened before it."""

        def outer():
            spike = np.zeros(2_000_000)  # ~16 MiB, freed before nesting
            del spike
            profile_call(lambda: [1, 2, 3])
            return None

        run = profile_call(outer)
        assert run.peak_mib > 14.0

    def test_nested_peak_is_relative_to_its_entry(self):
        def outer():
            keep = np.zeros(2_000_000)  # ~16 MiB held across the nest
            inner = profile_call(lambda: [1, 2, 3])
            return keep.nbytes, inner

        run = profile_call(outer)
        _nbytes, inner = run.result
        assert inner.peak_mib < 1.0  # not charged the outer 16 MiB
        assert run.peak_mib > 14.0

    def test_doubly_nested(self):
        def middle():
            return profile_call(lambda: np.zeros(500_000))

        def outer():
            return profile_call(middle)

        run = profile_call(outer)
        assert run.result.result.peak_mib > 3.0
        assert run.peak_mib >= run.result.peak_mib

    def test_exception_in_nested_call_keeps_outer_alive(self):
        import tracemalloc

        def outer():
            with pytest.raises(ValueError):
                profile_call(
                    lambda: (_ for _ in ()).throw(ValueError("boom"))
                )
            return tracemalloc.is_tracing()

        run = profile_call(outer)
        assert run.result is True
        assert not tracemalloc.is_tracing()
