"""Unit tests for profiling helpers."""

import time

import numpy as np
import pytest

from repro.eval.profiling import profile_call, time_call


class TestProfileCall:
    def test_captures_result_and_time(self):
        run = profile_call(lambda: sum(range(1000)))
        assert run.result == 499500
        assert run.seconds >= 0.0

    def test_captures_allocation(self):
        run = profile_call(lambda: np.zeros(1_000_000))
        assert run.peak_mib > 5.0  # 8 MB of float64

    def test_small_allocation_small_peak(self):
        run = profile_call(lambda: [1, 2, 3])
        assert run.peak_mib < 1.0

    def test_exception_propagates_and_stops_tracing(self):
        with pytest.raises(ValueError):
            profile_call(lambda: (_ for _ in ()).throw(ValueError("boom")))
        # tracemalloc must be stopped; a second call works fine.
        assert profile_call(lambda: 1).result == 1


class TestTimeCall:
    def test_mean_of_repeats(self):
        seconds, result = time_call(lambda: 7, repeat=3)
        assert result == 7
        assert seconds >= 0.0

    def test_invalid_repeat(self):
        with pytest.raises(ValueError):
            time_call(lambda: 1, repeat=0)

    def test_measures_sleep(self):
        seconds, _ = time_call(lambda: time.sleep(0.01))
        assert seconds >= 0.009
