"""Unit tests for markdown rendering of experiment results."""

from repro.eval.experiments import ExperimentResult
from repro.eval.markdown import result_to_markdown, results_to_markdown


def _result():
    return ExperimentResult(
        experiment="figX",
        title="Fig. X — example",
        headers=("case", "accuracy"),
        rows=(("one", 0.987654), ("two", 0.5)),
        summary={"one": 0.987654},
    )


class TestMarkdown:
    def test_single_result_table(self):
        md = result_to_markdown(_result())
        lines = md.splitlines()
        assert lines[0] == "### Fig. X — example"
        assert "| case | accuracy |" in md
        assert "| --- | --- |" in md
        assert "| one | 0.988 |" in md

    def test_document_assembly(self):
        md = results_to_markdown(
            [_result(), _result()],
            title="Measured",
            preamble=("A note.",),
        )
        assert md.startswith("## Measured")
        assert "A note." in md
        assert md.count("### Fig. X") == 2
        assert md.endswith("\n")

    def test_integer_cells_plain(self):
        result = ExperimentResult(
            experiment="t",
            title="T",
            headers=("n",),
            rows=((42,),),
        )
        assert "| 42 |" in result_to_markdown(result)
