"""Unit tests for the comparison baselines."""

import numpy as np
import pytest

from repro.config import PipelineConfig
from repro.core import preprocess_trial
from repro.core.enrollment import extract_full_waveform
from repro.data import StudyData, ThirdPartyStore
from repro.errors import EnrollmentError, NotFittedError
from repro.eval.baselines import (
    AccelerometerPipeline,
    ShangThresholdBaseline,
    accel_waveform,
)

PIN = "1628"


@pytest.fixture(scope="module")
def data():
    return StudyData(n_users=5, seed=6)


@pytest.fixture(scope="module")
def accel_data():
    return StudyData(n_users=5, seed=6, include_accel=True)


@pytest.fixture(scope="module")
def full_waveforms(data):
    config = PipelineConfig()
    out = {}
    for uid in (0, 3):
        out[uid] = np.stack(
            [
                extract_full_waveform(preprocess_trial(t, config))
                for t in data.trials(uid, PIN, "one_handed", 6)
            ]
        )
    return out


class TestShangBaseline:
    def test_enrollment_data_accepted(self, full_waveforms):
        baseline = ShangThresholdBaseline(tau=1.7, dtw_stride=4)
        baseline.enroll(full_waveforms[0][:4])
        accepted = [baseline.accepts(w) for w in full_waveforms[0][4:]]
        assert any(accepted)

    def test_distances_smaller_for_own_data(self, full_waveforms):
        baseline = ShangThresholdBaseline(dtw_stride=4)
        baseline.enroll(full_waveforms[0][:4])
        own = baseline.distances(full_waveforms[0][4:]).mean()
        other = baseline.distances(full_waveforms[3][:2]).mean()
        assert other > own

    def test_accept_before_enroll_rejected(self, full_waveforms):
        with pytest.raises(NotFittedError):
            ShangThresholdBaseline().accepts(full_waveforms[0][0])

    def test_needs_two_enrollment_samples(self, full_waveforms):
        with pytest.raises(EnrollmentError):
            ShangThresholdBaseline().enroll(full_waveforms[0][:1])

    def test_invalid_tau(self):
        with pytest.raises(EnrollmentError):
            ShangThresholdBaseline(tau=0.0)


class TestAccelWaveform:
    def test_shape(self, accel_data):
        trial = accel_data.trials(0, PIN, "one_handed", 1)[0]
        wf = accel_waveform(trial, window=360)
        assert wf.shape == (3, 360)

    def test_missing_accel_rejected(self, data):
        trial = data.trials(0, PIN, "one_handed", 1)[0]
        with pytest.raises(EnrollmentError):
            accel_waveform(trial)


class TestAccelerometerPipeline:
    def test_enroll_and_authenticate(self, accel_data):
        enroll = accel_data.trials(0, PIN, "one_handed", 5)
        store = ThirdPartyStore(accel_data, [1, 2], PIN)
        pipeline = AccelerometerPipeline(num_features=840)
        pipeline.enroll(enroll, store.sample(10))
        probe = accel_data.trials(0, PIN, "one_handed", 6)[5]
        assert isinstance(pipeline.accepts(probe), bool)
