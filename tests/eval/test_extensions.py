"""Unit tests for the extension experiments (tiny scale)."""

import dataclasses

import numpy as np
import pytest

from repro.eval.experiments import SMOKE
from repro.eval.extensions import (
    EXTENSION_RUNNERS,
    run_aging_sweep,
    run_eer_analysis,
)
from repro.physio import TrialSynthesizer, sample_population
from repro.physio.artifacts import drift_params
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def tiny():
    return dataclasses.replace(SMOKE, n_victims=1, test_n=3)


class TestDriftParams:
    def test_zero_aging_is_identity(self, population):
        params = population[0].artifacts.params_for("5", "mechanical")
        assert drift_params(params, 7, 0.0) == params

    def test_deterministic(self, population):
        params = population[0].artifacts.params_for("5", "mechanical")
        assert drift_params(params, 7, 0.2) == drift_params(params, 7, 0.2)

    def test_magnitude_scales(self, population):
        params = population[0].artifacts.params_for("5", "mechanical")
        small = drift_params(params, 7, 0.05)
        large = drift_params(params, 7, 0.4)
        delta_small = abs(small.amplitude - params.amplitude)
        delta_large = abs(large.amplitude - params.amplitude)
        assert delta_large >= delta_small

    def test_negative_aging_rejected(self, population):
        params = population[0].artifacts.params_for("5", "mechanical")
        with pytest.raises(ConfigurationError):
            drift_params(params, 7, -0.1)

    def test_aged_trial_reproducible(self):
        users = sample_population(1, seed=4)
        synth = TrialSynthesizer()
        a = synth.synthesize_trial(
            users[0], "1628", np.random.default_rng(3), aging=0.2
        )
        b = synth.synthesize_trial(
            users[0], "1628", np.random.default_rng(3), aging=0.2
        )
        assert np.allclose(a.recording.samples, b.recording.samples)

    def test_aging_changes_the_signal(self):
        users = sample_population(1, seed=4)
        synth = TrialSynthesizer()
        fresh = synth.synthesize_trial(
            users[0], "1628", np.random.default_rng(3), aging=0.0
        )
        aged = synth.synthesize_trial(
            users[0], "1628", np.random.default_rng(3), aging=0.4
        )
        assert not np.allclose(fresh.recording.samples, aged.recording.samples)


class TestRunners:
    def test_registry(self):
        assert set(EXTENSION_RUNNERS) == {"ext-aging", "ext-enroll", "ext-eer"}

    def test_aging_sweep_smoke(self, tiny):
        result = run_aging_sweep(tiny, ages=(0.0, 0.4))
        assert "acc_age_0" in result.summary
        assert 0.0 <= result.summary["acc_age_0.4"] <= 1.0

    def test_eer_smoke(self, tiny):
        result = run_eer_analysis(tiny)
        assert 0.0 <= result.summary["eer"] <= 1.0
