"""Unit tests for the experiment harness (fast pieces only).

The full experiment runners are exercised by the benchmark suite; here
we test the shared machinery plus the cheapest runner end to end.
"""

import pytest

from repro.errors import ConfigurationError
from repro.eval.experiments import (
    DEFAULT,
    PAPER,
    RUNNERS,
    SMOKE,
    ExperimentResult,
    ExperimentScale,
    channel_subset,
    decimate_to,
    run_fig9,
)


class TestScale:
    def test_presets_are_consistent(self):
        for scale in (SMOKE, DEFAULT, PAPER):
            assert scale.n_victims + scale.n_attackers <= scale.n_users

    def test_paper_scale_matches_protocol(self):
        assert PAPER.n_users == 15
        assert PAPER.n_attackers == 4
        assert PAPER.third_party_n == 100
        assert PAPER.enroll_n == 9

    def test_victims_and_attackers_disjoint(self):
        for scale in (SMOKE, DEFAULT, PAPER):
            assert not set(scale.victim_ids) & set(scale.attacker_ids)

    def test_oversubscribed_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentScale(n_users=4, n_victims=3, n_attackers=2)


class TestTransforms:
    def test_channel_subset(self, one_trial):
        out = channel_subset([0, 2])(one_trial)
        assert out.recording.n_channels == 2
        assert out.pin == one_trial.pin

    def test_decimate_to(self, one_trial):
        out = decimate_to(50.0)(one_trial)
        assert out.recording.fs == 50.0
        assert out.events == one_trial.events  # wall-clock times unchanged

    def test_transforms_compose(self, one_trial):
        out = decimate_to(50.0)(channel_subset([1])(one_trial))
        assert out.recording.n_channels == 1
        assert out.recording.fs == 50.0


class TestRunners:
    def test_registry_covers_all_artifacts(self):
        assert set(RUNNERS) == {
            "fig8", "fig9", "fig10", "fig11", "fig12", "tab1",
            "fig13a", "fig13b", "fig14", "fig15", "fig16", "fig17",
        }

    def test_fig9_smoke(self):
        result = run_fig9(SMOKE)
        assert isinstance(result, ExperimentResult)
        assert result.experiment == "fig9"
        # The separation that makes authentication possible at all.
        assert result.summary["ratio"] > 1.0
        assert "inter" in result.summary
        assert str(result)  # renders without error
