"""Unit tests for the evaluation metrics."""

import pytest

from repro.errors import ConfigurationError
from repro.eval import accuracy, equal_error_rate, true_rejection_rate


class TestAccuracy:
    def test_all_accepted(self):
        assert accuracy([True, True, True]) == 1.0

    def test_mixed(self):
        assert accuracy([True, False, True, False]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            accuracy([])


class TestTrueRejectionRate:
    def test_all_rejected(self):
        assert true_rejection_rate([False, False]) == 1.0

    def test_mixed(self):
        assert true_rejection_rate([True, False, False, False]) == 0.75

    def test_complementary_to_acceptance(self):
        decisions = [True, False, True]
        assert true_rejection_rate(decisions) == pytest.approx(
            1.0 - accuracy(decisions)
        )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            true_rejection_rate([])


class TestEqualErrorRate:
    def test_perfectly_separated(self):
        assert equal_error_rate([2.0, 3.0, 4.0], [-1.0, -2.0]) == 0.0

    def test_fully_overlapping(self):
        scores = [0.0, 1.0, 2.0]
        eer = equal_error_rate(scores, scores)
        assert 0.3 <= eer <= 0.7

    def test_partial_overlap(self):
        genuine = [1.0, 2.0, 3.0, 4.0]
        impostor = [0.0, 0.5, 1.5, 2.5]
        eer = equal_error_rate(genuine, impostor)
        assert 0.0 < eer < 0.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            equal_error_rate([], [1.0])
