"""Unit tests for the evaluation protocol."""

import numpy as np
import pytest

from repro.data import StudyData
from repro.errors import ConfigurationError
from repro.eval import ConditionResult, evaluate_condition, evaluate_user

PIN = "1628"


@pytest.fixture(scope="module")
def data():
    return StudyData(n_users=6, seed=4)


@pytest.fixture(scope="module")
def result(data):
    return evaluate_user(
        data,
        0,
        PIN,
        attacker_ids=[4, 5],
        enroll_n=5,
        test_n=4,
        third_party_n=12,
        ra_per_attacker=2,
        ea_per_attacker=2,
        num_features=840,
    )


class TestEvaluateUser:
    def test_counts(self, result):
        assert result.n_test == 4
        assert result.n_random == 4
        assert result.n_emulating == 4

    def test_rates_in_unit_interval(self, result):
        for value in (result.accuracy, result.trr_random, result.trr_emulating):
            assert 0.0 <= value <= 1.0

    def test_victim_cannot_attack_self(self, data):
        with pytest.raises(ConfigurationError):
            evaluate_user(data, 0, PIN, attacker_ids=[0])

    def test_no_attackers_gives_nan_trr(self, data):
        result = evaluate_user(
            data,
            0,
            PIN,
            attacker_ids=[],
            enroll_n=5,
            test_n=3,
            third_party_n=10,
            num_features=840,
        )
        assert np.isnan(result.trr_random)
        assert np.isnan(result.trr_emulating)

    def test_transform_applied(self, data):
        """A channel-dropping transform must flow through end to end."""
        from repro.eval.experiments import channel_subset

        result = evaluate_user(
            data,
            0,
            PIN,
            attacker_ids=[5],
            enroll_n=5,
            test_n=3,
            third_party_n=10,
            ra_per_attacker=1,
            ea_per_attacker=1,
            num_features=840,
            transform=channel_subset([0]),
        )
        assert 0.0 <= result.accuracy <= 1.0


class TestEvaluateCondition:
    def test_aggregation(self, data):
        result = evaluate_condition(
            data,
            victim_ids=[0, 1],
            attacker_ids=[5],
            pin=PIN,
            enroll_n=5,
            test_n=3,
            third_party_n=10,
            ra_per_attacker=1,
            ea_per_attacker=1,
            num_features=840,
        )
        assert isinstance(result, ConditionResult)
        assert len(result.per_user) == 2
        assert result.accuracy == pytest.approx(
            np.mean([u.accuracy for u in result.per_user])
        )

    def test_empty_victims_rejected(self, data):
        with pytest.raises(ConfigurationError):
            evaluate_condition(data, victim_ids=[], attacker_ids=[5])


class TestSharedNegativesProtocol:
    KW = dict(
        attacker_ids=[4, 5],
        enroll_n=5,
        test_n=4,
        third_party_n=12,
        ra_per_attacker=2,
        ea_per_attacker=2,
        num_features=840,
    )

    def test_shared_run_is_deterministic(self, data):
        from repro.eval.featurecache import clear_default_cache

        clear_default_cache()
        a = evaluate_user(data, 0, PIN, share_negatives=True, **self.KW)
        clear_default_cache()
        b = evaluate_user(data, 0, PIN, share_negatives=True, **self.KW)
        assert a == b

    def test_warm_cache_identical_to_cold(self, data):
        from repro.eval.featurecache import cache_stats, clear_default_cache

        clear_default_cache()
        cold = evaluate_user(data, 1, PIN, share_negatives=True, **self.KW)
        warm = evaluate_user(data, 1, PIN, share_negatives=True, **self.KW)
        assert cold == warm
        assert cache_stats().bank_hits >= 1

    def test_disabled_sharing_still_works(self, data):
        off = evaluate_user(data, 0, PIN, share_negatives=False, **self.KW)
        assert 0.0 <= off.accuracy <= 1.0

    def test_manual_method_takes_unshared_path(self, data):
        from repro.eval.featurecache import clear_default_cache

        clear_default_cache()
        kw = dict(self.KW)
        kw.update(third_party_n=6, enroll_n=4, test_n=2)
        result = evaluate_user(
            data, 0, PIN, feature_method="manual", share_negatives=True, **kw
        )
        assert 0.0 <= result.accuracy <= 1.0

    def test_parallel_matches_serial_with_sharing(self, data):
        serial = evaluate_condition(
            data, [0, 1], [4, 5], PIN, n_jobs=1,
            enroll_n=5, test_n=4, third_party_n=12,
            ra_per_attacker=2, ea_per_attacker=2, num_features=840,
        )
        parallel = evaluate_condition(
            data, [0, 1], [4, 5], PIN, n_jobs=2,
            enroll_n=5, test_n=4, third_party_n=12,
            ra_per_attacker=2, ea_per_attacker=2, num_features=840,
        )
        assert serial.per_user == parallel.per_user
