"""Tests for the process-pool fan-out layer."""

import pytest

from repro.errors import ConfigurationError
from repro.eval.parallel import (
    N_JOBS_ENV,
    parallel_map,
    resolve_n_jobs,
    run_tasks,
)


def _square(x):
    return x * x


class TestResolveNJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(N_JOBS_ENV, raising=False)
        assert resolve_n_jobs() == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "8")
        assert resolve_n_jobs(3) == 3

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "5")
        assert resolve_n_jobs() == 5

    def test_env_var_must_be_int(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "many")
        with pytest.raises(ConfigurationError):
            resolve_n_jobs()

    def test_zero_means_all_cores(self):
        import os

        assert resolve_n_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError, match="n_jobs"):
            resolve_n_jobs(-1)
        with pytest.raises(ConfigurationError):
            resolve_n_jobs(-8)

    def test_env_zero_means_all_cores(self, monkeypatch):
        import os

        monkeypatch.setenv(N_JOBS_ENV, "0")
        assert resolve_n_jobs() == (os.cpu_count() or 1)

    def test_env_negative_rejected(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "-2")
        with pytest.raises(ConfigurationError, match=N_JOBS_ENV):
            resolve_n_jobs()

    def test_env_whitespace_is_default(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "   ")
        assert resolve_n_jobs() == 1

    def test_env_float_rejected(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "2.5")
        with pytest.raises(ConfigurationError):
            resolve_n_jobs()

    def test_explicit_zero_beats_env(self, monkeypatch):
        import os

        monkeypatch.setenv(N_JOBS_ENV, "3")
        assert resolve_n_jobs(0) == (os.cpu_count() or 1)

    def test_env_padded_integer_parses(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, " 4 ")
        assert resolve_n_jobs() == 4


class TestParallelMap:
    def test_serial(self):
        assert parallel_map(_square, [1, 2, 3], n_jobs=1) == [1, 4, 9]

    def test_parallel_matches_serial(self):
        items = list(range(8))
        assert parallel_map(_square, items, n_jobs=2) == [
            _square(i) for i in items
        ]

    def test_empty(self):
        assert parallel_map(_square, [], n_jobs=4) == []

    def test_unpicklable_falls_back_to_serial(self):
        """Lambdas cannot cross process boundaries; the pool demotes to
        an in-process loop instead of failing."""
        assert parallel_map(lambda x: x + 1, [1, 2, 3], n_jobs=2) == [2, 3, 4]


class TestRunTasks:
    def test_order_preserved(self):
        from functools import partial

        tasks = [partial(_square, i) for i in (4, 2, 7)]
        assert run_tasks(tasks, n_jobs=2) == [16, 4, 49]

    def test_serial_tasks(self):
        assert run_tasks([lambda: "a", lambda: "b"], n_jobs=1) == ["a", "b"]
