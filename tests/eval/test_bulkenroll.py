"""Unit tests for bulk population enrollment (repro.eval.bulkenroll)."""

import pytest

from repro.core import NpzDirectoryBackend, PackedArenaBackend
from repro.core.packing import unpack_authenticator
from repro.eval import (
    TemplateJob,
    build_template,
    enroll_templates,
    materialize_population,
)
from repro.errors import ConfigurationError

FEATURES = 840


@pytest.fixture(scope="module")
def templates():
    return enroll_templates(2, num_features=FEATURES, n_jobs=1)


class TestTemplates:
    def test_templates_are_distinct_users(self, templates):
        assert len(templates) == 2
        assert templates[0].record != templates[1].record

    def test_template_is_deterministic(self, templates):
        again = build_template(TemplateJob(index=0, num_features=FEATURES))
        assert again.record == templates[0].record
        assert again.extractors == templates[0].extractors

    def test_template_authenticates(self, templates):
        auth = unpack_authenticator(templates[0])
        assert auth.enrolled

    def test_template_count_validated(self):
        with pytest.raises(ConfigurationError):
            enroll_templates(0)


class TestMaterialize:
    def test_round_robin_ids_and_storage(self, templates, tmp_path):
        backend = PackedArenaBackend(tmp_path)
        ids = materialize_population(backend, 5, templates)
        assert ids == [f"u{i:07d}" for i in range(5)]
        assert backend.user_ids() == sorted(ids)
        assert backend.load("u0000003").enrolled

    def test_requires_packed_backend(self, templates, tmp_path):
        backend = NpzDirectoryBackend(tmp_path)
        with pytest.raises(ConfigurationError):
            materialize_population(backend, 2, templates)

    def test_validates_inputs(self, templates, tmp_path):
        backend = PackedArenaBackend(tmp_path)
        with pytest.raises(ConfigurationError):
            materialize_population(backend, 0, templates)
        with pytest.raises(ConfigurationError):
            materialize_population(backend, 2, [])
