"""Tests for the robustness evaluation harness."""

import json

import pytest

from repro.data import StudyData
from repro.eval.robustness import (
    ProbeCounts,
    RobustnessCell,
    build_report,
    evaluate_recovery,
    evaluate_robustness_cell,
    render_markdown,
    run_robustness_sweep,
)
from repro.errors import ConfigurationError
from repro.faults import FAULT_SEED_ENV

#: Small everything: the harness logic is under test, not the models.
SMALL = dict(
    attacker_ids=(1,),
    enroll_n=6,
    test_n=3,
    third_party_n=18,
    ra_per_attacker=1,
    ea_per_attacker=1,
    num_features=840,
)


@pytest.fixture(scope="module")
def data():
    return StudyData(n_users=4, seed=5)


@pytest.fixture(scope="module")
def cells(data):
    return run_robustness_sweep(
        data,
        faults=("channel_dropout", "gain_drift"),
        intensities=(0.0, 1.0),
        victim_ids=(0,),
        seed=0,
        **SMALL,
    )


class TestSweep:
    def test_grid_shape(self, cells):
        assert len(cells) == 4
        coords = {(c.fault, c.intensity) for c in cells}
        assert ("channel_dropout", 0.0) in coords
        assert ("gain_drift", 1.0) in coords

    def test_counts_are_complete(self, cells):
        for cell in cells:
            assert cell.legit.total == SMALL["test_n"]
            assert cell.attack.total == 2  # 1 random + 1 emulating

    def test_intensity_zero_matches_clean_baseline(self, cells):
        """The no-op property end to end: every fault's zero column is
        the same clean evaluation."""
        zero = [c for c in cells if c.intensity == 0.0]
        reference = (zero[0].legit, zero[0].attack)
        for cell in zero[1:]:
            assert (cell.legit, cell.attack) == reference

    def test_serial_equals_parallel(self, data, cells):
        parallel = run_robustness_sweep(
            data,
            faults=("channel_dropout", "gain_drift"),
            intensities=(0.0, 1.0),
            victim_ids=(0,),
            n_jobs=2,
            seed=0,
            **SMALL,
        )
        assert parallel == cells

    def test_seed_changes_faulted_cells_only_deterministically(self, data):
        a = evaluate_robustness_cell(
            data, "channel_dropout", 1.0, 0, seed=0, **SMALL
        )
        b = evaluate_robustness_cell(
            data, "channel_dropout", 1.0, 0, seed=0, **SMALL
        )
        assert a == b

    def test_env_seed_plumbing(self, data, monkeypatch):
        monkeypatch.setenv(FAULT_SEED_ENV, "3")
        from_env = run_robustness_sweep(
            data,
            faults=("gain_drift",),
            intensities=(1.0,),
            victim_ids=(0,),
            **SMALL,
        )
        explicit = run_robustness_sweep(
            data,
            faults=("gain_drift",),
            intensities=(1.0,),
            victim_ids=(0,),
            seed=3,
            **SMALL,
        )
        assert from_env == explicit

    def test_unknown_fault_rejected(self, data):
        with pytest.raises(ConfigurationError):
            evaluate_robustness_cell(data, "bitrot", 0.5, 0, **SMALL)


class TestRecovery:
    def test_full_ladder_recovers_dead_channel(self, data):
        recovery = evaluate_recovery(
            data,
            victim_id=0,
            enroll_n=6,
            test_n=3,
            third_party_n=18,
            num_features=840,
            seed=0,
        )
        assert set(recovery) == {"none", "gate_only", "full"}
        # Without the ladder a fully dead channel never reaches a
        # decision; with it, every probe does — and none by error.
        assert recovery["none"]["accepted"] == 0
        full = recovery["full"]
        assert full["accepted"] + full["rejected"] == 3
        assert full["errors"] == 0 and full["quality_refused"] == 0


class TestReport:
    def test_structure_and_serialisable(self, cells):
        report = build_report(cells, seed=0, label="test")
        json.dumps(report)  # must be JSON-clean
        assert report["meta"]["faults"] == ["channel_dropout", "gain_drift"]
        assert len(report["grid"]) == 4
        for row in report["grid"]:
            assert 0.0 <= row["frr"] <= 1.0
            assert 0.0 <= row["far"] <= 1.0

    def test_far_invariant_uses_zero_baseline(self, cells):
        report = build_report(cells, seed=0, label="test")
        inv = report["invariants"]
        assert set(inv["baseline_far"]) == {"channel_dropout", "gain_drift"}
        assert inv["faults_never_increase_far"] in (True, False)

    def test_invariant_unknown_without_baseline(self):
        cell = RobustnessCell(
            fault="gain_drift",
            intensity=1.0,
            victim_id=0,
            legit=ProbeCounts(accepted=1),
            attack=ProbeCounts(rejected=1),
        )
        report = build_report([cell], seed=0, label="test")
        assert report["invariants"]["faults_never_increase_far"] is None

    def test_markdown_renders_grid_and_recovery(self, cells):
        recovery = {
            "none": ProbeCounts(errors=3).as_dict(),
            "gate_only": ProbeCounts(quality_refused=3).as_dict(),
            "full": ProbeCounts(accepted=3).as_dict(),
        }
        text = render_markdown(build_report(cells, recovery, seed=0, label="t"))
        assert "| channel_dropout | 0.00 |" in text
        assert "Degradation-ladder recovery" in text
        assert "| full | 3 | 0 | 0 | 0 |" in text


class TestProbeCounts:
    def test_rates(self):
        cell = RobustnessCell(
            fault="gain_drift",
            intensity=0.5,
            victim_id=0,
            legit=ProbeCounts(accepted=2, rejected=1, quality_refused=1),
            attack=ProbeCounts(accepted=1, rejected=3),
        )
        assert cell.frr == pytest.approx(0.5)
        assert cell.far == pytest.approx(0.25)
        assert cell.quality_rejection_rate == pytest.approx(1 / 8)

    def test_empty_cells_are_nan(self):
        cell = RobustnessCell(
            fault="gain_drift",
            intensity=0.5,
            victim_id=0,
            legit=ProbeCounts(),
            attack=ProbeCounts(),
        )
        assert cell.frr != cell.frr  # NaN
        assert cell.far != cell.far
