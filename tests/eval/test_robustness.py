"""Tests for the robustness evaluation harness."""

import json

import pytest

from repro.data import StudyData
from repro.eval.robustness import (
    MITIGATION_POLICIES,
    REENROLL_PERIOD_DAYS,
    SLIDING_LAG_DAYS,
    ProbeCounts,
    RobustnessCell,
    ScenarioCell,
    build_report,
    build_scenario_report,
    evaluate_recovery,
    evaluate_robustness_cell,
    evaluate_scenario_cell,
    render_markdown,
    render_scenario_markdown,
    run_mitigation_sweep,
    run_robustness_sweep,
    run_scenario_sweep,
    template_age,
)
from repro.errors import ConfigurationError
from repro.faults import FAULT_SEED_ENV

#: Small everything: the harness logic is under test, not the models.
SMALL = dict(
    attacker_ids=(1,),
    enroll_n=6,
    test_n=3,
    third_party_n=18,
    ra_per_attacker=1,
    ea_per_attacker=1,
    num_features=840,
)


@pytest.fixture(scope="module")
def data():
    return StudyData(n_users=4, seed=5)


@pytest.fixture(scope="module")
def cells(data):
    return run_robustness_sweep(
        data,
        faults=("channel_dropout", "gain_drift"),
        intensities=(0.0, 1.0),
        victim_ids=(0,),
        seed=0,
        **SMALL,
    )


class TestSweep:
    def test_grid_shape(self, cells):
        assert len(cells) == 4
        coords = {(c.fault, c.intensity) for c in cells}
        assert ("channel_dropout", 0.0) in coords
        assert ("gain_drift", 1.0) in coords

    def test_counts_are_complete(self, cells):
        for cell in cells:
            assert cell.legit.total == SMALL["test_n"]
            assert cell.attack.total == 2  # 1 random + 1 emulating

    def test_intensity_zero_matches_clean_baseline(self, cells):
        """The no-op property end to end: every fault's zero column is
        the same clean evaluation."""
        zero = [c for c in cells if c.intensity == 0.0]
        reference = (zero[0].legit, zero[0].attack)
        for cell in zero[1:]:
            assert (cell.legit, cell.attack) == reference

    def test_serial_equals_parallel(self, data, cells):
        parallel = run_robustness_sweep(
            data,
            faults=("channel_dropout", "gain_drift"),
            intensities=(0.0, 1.0),
            victim_ids=(0,),
            n_jobs=2,
            seed=0,
            **SMALL,
        )
        assert parallel == cells

    def test_seed_changes_faulted_cells_only_deterministically(self, data):
        a = evaluate_robustness_cell(
            data, "channel_dropout", 1.0, 0, seed=0, **SMALL
        )
        b = evaluate_robustness_cell(
            data, "channel_dropout", 1.0, 0, seed=0, **SMALL
        )
        assert a == b

    def test_env_seed_plumbing(self, data, monkeypatch):
        monkeypatch.setenv(FAULT_SEED_ENV, "3")
        from_env = run_robustness_sweep(
            data,
            faults=("gain_drift",),
            intensities=(1.0,),
            victim_ids=(0,),
            **SMALL,
        )
        explicit = run_robustness_sweep(
            data,
            faults=("gain_drift",),
            intensities=(1.0,),
            victim_ids=(0,),
            seed=3,
            **SMALL,
        )
        assert from_env == explicit

    def test_unknown_fault_rejected(self, data):
        with pytest.raises(ConfigurationError):
            evaluate_robustness_cell(data, "bitrot", 0.5, 0, **SMALL)

    def test_shared_baseline_equals_direct_cells(self, data, cells):
        """The sweep computes the clean intensity-0 evaluation once per
        victim and replicates it across faults; the rows must be
        exactly what per-fault direct evaluation produces."""
        for cell in cells:
            direct = evaluate_robustness_cell(
                data, cell.fault, cell.intensity, cell.victim_id,
                seed=0, **SMALL,
            )
            assert cell == direct


class TestRecovery:
    def test_full_ladder_recovers_dead_channel(self, data):
        recovery = evaluate_recovery(
            data,
            victim_id=0,
            enroll_n=6,
            test_n=3,
            third_party_n=18,
            num_features=840,
            seed=0,
        )
        assert set(recovery) == {"none", "gate_only", "full"}
        # Without the ladder a fully dead channel never reaches a
        # decision; with it, every probe does — and none by error.
        assert recovery["none"]["accepted"] == 0
        full = recovery["full"]
        assert full["accepted"] + full["rejected"] == 3
        assert full["errors"] == 0 and full["quality_refused"] == 0


class TestReport:
    def test_structure_and_serialisable(self, cells):
        report = build_report(cells, seed=0, label="test")
        json.dumps(report)  # must be JSON-clean
        assert report["meta"]["faults"] == ["channel_dropout", "gain_drift"]
        assert len(report["grid"]) == 4
        for row in report["grid"]:
            assert 0.0 <= row["frr"] <= 1.0
            assert 0.0 <= row["far"] <= 1.0

    def test_far_invariant_uses_zero_baseline(self, cells):
        report = build_report(cells, seed=0, label="test")
        inv = report["invariants"]
        assert set(inv["baseline_far"]) == {"channel_dropout", "gain_drift"}
        assert inv["faults_never_increase_far"] in (True, False)

    def test_invariant_unknown_without_baseline(self):
        cell = RobustnessCell(
            fault="gain_drift",
            intensity=1.0,
            victim_id=0,
            legit=ProbeCounts(accepted=1),
            attack=ProbeCounts(rejected=1),
        )
        report = build_report([cell], seed=0, label="test")
        assert report["invariants"]["faults_never_increase_far"] is None

    def test_markdown_renders_grid_and_recovery(self, cells):
        recovery = {
            "none": ProbeCounts(errors=3).as_dict(),
            "gate_only": ProbeCounts(quality_refused=3).as_dict(),
            "full": ProbeCounts(accepted=3).as_dict(),
        }
        text = render_markdown(build_report(cells, recovery, seed=0, label="t"))
        assert "| channel_dropout | 0.00 |" in text
        assert "Degradation-ladder recovery" in text
        assert "| full | 3 | 0 | 0 | 0 |" in text


@pytest.fixture(scope="module")
def scenario_cells(data):
    return run_scenario_sweep(
        data,
        scenarios=("resting", "cross_device"),
        intensities=(0.0, 1.0),
        victim_ids=(0,),
        age_grid=(0.0, 120.0),
        seed=0,
        **SMALL,
    )


class TestScenarioSweep:
    def test_grid_shape_and_order(self, scenario_cells):
        assert len(scenario_cells) == 8
        coords = [
            (c.scenario, c.age_days, c.intensity) for c in scenario_cells
        ]
        assert ("resting", 0.0, 0.0) in coords
        assert ("cross_device", 120.0, 1.0) in coords
        assert len(set(coords)) == 8

    def test_zero_intensity_identical_across_scenarios(self, scenario_cells):
        for age in (0.0, 120.0):
            zero = [
                c for c in scenario_cells
                if c.intensity == 0.0 and c.age_days == age
            ]
            assert len(zero) == 2
            assert (zero[0].legit, zero[0].attack) == (
                zero[1].legit, zero[1].attack
            )

    def test_serial_equals_parallel(self, data, scenario_cells):
        parallel = run_scenario_sweep(
            data,
            scenarios=("resting", "cross_device"),
            intensities=(0.0, 1.0),
            victim_ids=(0,),
            age_grid=(0.0, 120.0),
            n_jobs=2,
            seed=0,
            **SMALL,
        )
        assert parallel == scenario_cells

    def test_shared_baseline_equals_direct_cells(self, data, scenario_cells):
        for cell in scenario_cells:
            direct = evaluate_scenario_cell(
                data, cell.scenario, cell.intensity, cell.victim_id,
                age_days=cell.age_days, seed=0, **SMALL,
            )
            assert cell == direct

    def test_age_zero_matches_fault_sweep_baseline(self, data, cells):
        """At age 0 / intensity 0 / frozen policy a scenario cell is the
        same clean evaluation the fault sweep performs."""
        scenario = evaluate_scenario_cell(
            data, "resting", 0.0, 0, age_days=0.0, seed=0, **SMALL
        )
        fault_zero = next(c for c in cells if c.intensity == 0.0)
        assert (scenario.legit, scenario.attack) == (
            fault_zero.legit, fault_zero.attack
        )

    def test_unknown_scenario_rejected(self, data):
        with pytest.raises(ConfigurationError):
            evaluate_scenario_cell(data, "skydiving", 0.5, 0, **SMALL)


class TestTemplateAge:
    def test_frozen_never_updates(self):
        assert template_age("frozen", 365.0) == 0.0

    def test_periodic_reenroll_steps(self):
        period = REENROLL_PERIOD_DAYS
        assert template_age("periodic_reenroll", 0.0) == 0.0
        assert template_age("periodic_reenroll", period - 1.0) == 0.0
        assert template_age("periodic_reenroll", period) == period
        assert template_age("periodic_reenroll", 2.5 * period) == 2 * period

    def test_sliding_update_lags(self):
        lag = SLIDING_LAG_DAYS
        assert template_age("sliding_update", 3.0) == 0.0
        assert template_age("sliding_update", 100.0) == 100.0 - lag

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            template_age("wishful_thinking", 10.0)

    def test_negative_age_rejected(self):
        with pytest.raises(ConfigurationError):
            template_age("frozen", -1.0)


class TestMitigationSweep:
    def test_policies_times_ages(self, data):
        cells = run_mitigation_sweep(
            data,
            age_grid=(0.0, 60.0),
            victim_ids=(0,),
            seed=0,
            **SMALL,
        )
        assert len(cells) == len(MITIGATION_POLICIES) * 2
        assert {c.policy for c in cells} == set(MITIGATION_POLICIES)
        # Clean probes: the default scenario runs at intensity 0.
        assert all(c.intensity == 0.0 for c in cells)

    def test_policies_agree_at_age_zero(self, data):
        cells = run_mitigation_sweep(
            data, age_grid=(0.0,), victim_ids=(0,), seed=0, **SMALL
        )
        outcomes = {(c.legit, c.attack) for c in cells}
        assert len(outcomes) == 1  # template age 0 under every policy


class TestScenarioReport:
    def test_structure_and_serialisable(self, scenario_cells, data):
        mitigation = run_mitigation_sweep(
            data, age_grid=(0.0, 120.0), victim_ids=(0,), seed=0, **SMALL
        )
        report = build_scenario_report(
            scenario_cells, mitigation, seed=0, label="test"
        )
        json.dumps(report)  # must be JSON-clean
        assert report["meta"]["scenarios"] == ["cross_device", "resting"]
        assert len(report["scenario_grid"]) == 8
        assert set(report["mitigation"]["curves"]) == set(MITIGATION_POLICIES)
        inv = report["invariants"]
        assert set(inv["baseline_far"]) == {"cross_device", "resting"}
        assert inv["scenario_far_within_baseline"] in (True, False)
        assert inv["max_age_days"] == 120.0
        assert inv["update_policy_beats_frozen_at_max_age"] in (
            True, False, None,
        )

    def test_far_baseline_pools_ages(self):
        """The security invariant compares scenario-level FAR pooled
        over ages, so a one-probe flip at one age does not fail a
        scenario whose overall FAR went down."""
        def cell(age, intensity, accepted):
            return ScenarioCell(
                scenario="resting", intensity=intensity, victim_id=0,
                age_days=age, policy="frozen",
                legit=ProbeCounts(accepted=4),
                attack=ProbeCounts(accepted=accepted, rejected=10 - accepted),
            )

        cells = [
            cell(0.0, 0.0, 3), cell(120.0, 0.0, 1),   # baseline: 4/20
            cell(0.0, 1.0, 1), cell(120.0, 1.0, 2),   # faulted: 3/20
        ]
        report = build_scenario_report(cells, seed=0)
        assert report["invariants"]["scenario_far_within_baseline"] is True

        worse = [
            cell(0.0, 0.0, 1), cell(120.0, 0.0, 1),   # baseline: 2/20
            cell(0.0, 1.0, 2), cell(120.0, 1.0, 2),   # faulted: 4/20
        ]
        report = build_scenario_report(worse, seed=0)
        assert report["invariants"]["scenario_far_within_baseline"] is False

    def test_mitigation_invariant_requires_strict_improvement(self):
        def mit(policy, frr_failures):
            return ScenarioCell(
                scenario="resting", intensity=0.0, victim_id=0,
                age_days=60.0, policy=policy,
                legit=ProbeCounts(
                    accepted=10 - frr_failures, rejected=frr_failures
                ),
                attack=ProbeCounts(rejected=5),
            )

        improving = [mit("frozen", 5), mit("sliding_update", 1)]
        report = build_scenario_report([], improving, seed=0)
        assert (
            report["invariants"]["update_policy_beats_frozen_at_max_age"]
            is True
        )

        tied = [mit("frozen", 5), mit("sliding_update", 5)]
        report = build_scenario_report([], tied, seed=0)
        assert (
            report["invariants"]["update_policy_beats_frozen_at_max_age"]
            is False
        )

    def test_markdown_renders_grid_and_curves(self, scenario_cells, data):
        mitigation = run_mitigation_sweep(
            data, age_grid=(0.0, 120.0), victim_ids=(0,), seed=0, **SMALL
        )
        text = render_scenario_markdown(
            build_scenario_report(scenario_cells, mitigation, seed=0)
        )
        assert "| resting | 0 | 0.00 |" in text
        assert "Template maintenance vs aging" in text
        assert "| sliding_update |" in text
        assert "Security invariant" in text
        assert "Mitigation invariant" in text


class TestProbeCounts:
    def test_rates(self):
        cell = RobustnessCell(
            fault="gain_drift",
            intensity=0.5,
            victim_id=0,
            legit=ProbeCounts(accepted=2, rejected=1, quality_refused=1),
            attack=ProbeCounts(accepted=1, rejected=3),
        )
        assert cell.frr == pytest.approx(0.5)
        assert cell.far == pytest.approx(0.25)
        assert cell.quality_rejection_rate == pytest.approx(1 / 8)

    def test_empty_cells_are_nan(self):
        cell = RobustnessCell(
            fault="gain_drift",
            intensity=0.5,
            victim_id=0,
            legit=ProbeCounts(),
            attack=ProbeCounts(),
        )
        assert cell.frr != cell.frr  # NaN
        assert cell.far != cell.far
