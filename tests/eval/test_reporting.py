"""Unit tests for table rendering."""

from repro.eval import format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(
            ["name", "value"], [("alpha", 1.0), ("beta", 0.5)], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2].replace(" ", "")) == {"-"}
        assert "alpha" in lines[3]

    def test_floats_rounded(self):
        out = format_table(["x"], [(0.123456,)])
        assert "0.123" in out
        assert "0.1234" not in out

    def test_integers_rendered_plain(self):
        out = format_table(["n"], [(42,)])
        assert "42" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out

    def test_columns_aligned(self):
        out = format_table(
            ["long_header", "x"], [("v", 1.0), ("much_longer_value", 2.0)]
        )
        lines = out.splitlines()
        # Header and rows share column positions: the second column
        # starts at the same offset everywhere.
        positions = {line.index("1.000") for line in lines if "1.000" in line}
        positions |= {line.index("2.000") for line in lines if "2.000" in line}
        assert len(positions) == 1
