"""Fixtures for the race-stress harness.

Every test in this package runs with ``sys.setswitchinterval(1e-5)``
— roughly a thousand times more thread preemption than the default —
so interleavings that would take hours of wall-clock traffic to hit in
production show up within a few hundred iterations. The CI job also
sets ``REPRO_CONCURRENCY_DEBUG=1`` so locks constructed inside the
tests carry live ownership assertions.
"""

from __future__ import annotations

import sys

import pytest

from repro.config import PAPER_PINS
from repro.core import EnrollmentOptions, P2Auth
from repro.data import StudyData, ThirdPartyStore

PIN = PAPER_PINS[0]
FEATURES = 840


@pytest.fixture(autouse=True)
def fast_thread_switching():
    """Amplify races: preempt threads every ~10 microseconds."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


@pytest.fixture(scope="module")
def data():
    return StudyData(n_users=5, seed=3)


@pytest.fixture(scope="module")
def third_party(data):
    return ThirdPartyStore(data, [1, 2], PIN).sample(20)


@pytest.fixture(scope="module")
def enroll_trials(data):
    return data.trials(0, PIN, "one_handed", 8)[:6]


@pytest.fixture(scope="module")
def shared_auth(enroll_trials, third_party):
    """One enrolled authenticator that every worker thread shares."""
    auth = P2Auth(pin=PIN, options=EnrollmentOptions(num_features=FEATURES))
    auth.enroll(enroll_trials, third_party)
    auth.warmup((enroll_trials[0].recording.n_samples,))
    return auth


@pytest.fixture(scope="module")
def probes(data):
    """Mixed legit/attack probes, all the same signal shape so every
    thread contends for the same scratch buffers."""
    legit = data.trials(0, PIN, "one_handed", 8)[6:]
    attacks = data.emulating_trials(4, 0, PIN, 2)
    return list(legit) + list(attacks)
