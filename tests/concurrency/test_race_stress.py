"""Race-stress harness: concurrent decisions must equal serial ones.

The contract under test is *bit-identical determinism under
concurrency*: any interleaving of threads through the shared
authenticator, registry, and feature cache must produce exactly the
decisions (and arrays) a serial run produces. A single flipped score
bit fails these tests — scores are compared as exact float tuples, and
cached arrays bitwise.

``test_shared_hot_path_matches_serial`` is the regression test for the
`HotAuthPipeline` sharing bug: before the scratch buffers moved to
thread-local storage, two threads authenticating through one shared
`P2Auth` overwrote each other's preprocessing buffers mid-probe and
returned corrupted scores.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Sequence, Tuple

import numpy as np
import pytest

from repro.core import ModelRegistry, NpzDirectoryBackend
from repro.eval.featurecache import FeatureCache

from .conftest import PIN

#: Worker threads per stress test.  Small enough to run everywhere,
#: large enough that (with the 10 us switch interval) every probe sees
#: dozens of preemptions.
THREADS = 4

#: Per-thread passes over the probe list.
ROUNDS = 25


def decision_key(decision) -> Tuple:
    """Every decision field that must match the serial run exactly."""
    return (
        decision.accepted,
        decision.reason,
        decision.input_case,
        decision.pin_ok,
        decision.scores,
        decision.keys_checked,
        decision.passes,
        decision.degradation,
    )


def run_threads(worker: Callable[[int], None], n_threads: int = THREADS) -> List[str]:
    """Run ``worker(thread_index)`` on N barrier-synchronized threads.

    Returns the collected error strings (empty = all threads agreed
    with the serial baseline and raised nothing).
    """
    errors: List[str] = []
    errors_lock = threading.Lock()
    barrier = threading.Barrier(n_threads)

    def wrapped(idx: int) -> None:
        try:
            barrier.wait()
            worker(idx)
        except Exception as exc:  # pragma: no cover - failure path
            with errors_lock:
                errors.append(f"thread {idx}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=wrapped, args=(i,), name=f"stress-{i}")
        for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


class TestSharedHotPath:
    """Concurrent ``authenticate_fast`` through one shared ``P2Auth``."""

    def test_shared_hot_path_matches_serial(self, shared_auth, probes):
        # Serial baseline first — also primes the lazy pipelines so the
        # threads race on a fully built object, not on construction.
        baseline = [
            decision_key(shared_auth.authenticate_fast(t)) for t in probes
        ]
        mismatches: List[str] = []
        report_lock = threading.Lock()

        def worker(idx: int) -> None:
            local: List[str] = []
            for round_no in range(ROUNDS):
                for pi, trial in enumerate(probes):
                    got = decision_key(shared_auth.authenticate_fast(trial))
                    if got != baseline[pi]:
                        local.append(
                            f"thread {idx} round {round_no} probe {pi}: "
                            f"{got!r} != {baseline[pi]!r}"
                        )
            if local:
                with report_lock:
                    mismatches.extend(local[:3])

        errors = run_threads(worker)
        assert not errors, errors
        assert not mismatches, (
            "concurrent authenticate_fast diverged from serial:\n"
            + "\n".join(mismatches[:6])
        )

    def test_shared_staged_path_matches_serial(self, shared_auth, probes):
        # The staged engine allocates per-call, so it was already safe;
        # keep it pinned that way.
        baseline = [decision_key(shared_auth.authenticate(t)) for t in probes]
        mismatches: List[str] = []

        def worker(idx: int) -> None:
            for trial, expected in zip(probes, baseline):
                for _ in range(5):
                    got = decision_key(shared_auth.authenticate(trial))
                    if got != expected:
                        mismatches.append(f"thread {idx}: {got!r}")

        errors = run_threads(worker)
        assert not errors, errors
        assert not mismatches, mismatches[:5]


class TestRegistryThrash:
    """get/evict/authenticate churn on a backend-backed registry."""

    @pytest.fixture(scope="class")
    def registry(self, tmp_path_factory, data, third_party, monkeypatch_class_env):
        from repro.core import EnrollmentOptions

        backend = NpzDirectoryBackend(tmp_path_factory.mktemp("registry"))
        registry = ModelRegistry(
            capacity=1,  # two users + capacity one = constant reload churn
            backend=backend,
            options=EnrollmentOptions(num_features=840),
        )
        for user_index, user_id in ((0, "alice"), (1, "bob")):
            registry.enroll(
                user_id,
                PIN,
                data.trials(user_index, PIN, "one_handed", 8)[:6],
                third_party,
            )
        return registry

    @pytest.fixture(scope="class")
    def monkeypatch_class_env(self):
        """Class-scoped REPRO_CONCURRENCY_DEBUG=1 so the registry's
        locks are constructed checked."""
        mp = pytest.MonkeyPatch()
        mp.setenv("REPRO_CONCURRENCY_DEBUG", "1")
        yield mp
        mp.undo()

    def test_get_evict_authenticate_thrash(self, registry, data, probes):
        users = ("alice", "bob")
        user_probes = {
            "alice": data.trials(0, PIN, "one_handed", 8)[6:],
            "bob": data.trials(1, PIN, "one_handed", 8)[6:],
        }
        baseline = {
            (uid, pi): decision_key(
                registry.get(uid).authenticate_fast(trial)
            )
            for uid in users
            for pi, trial in enumerate(user_probes[uid])
        }
        mismatches: List[str] = []
        report_lock = threading.Lock()

        def worker(idx: int) -> None:
            local: List[str] = []
            for round_no in range(8):
                uid = users[(idx + round_no) % 2]
                other = users[(idx + round_no + 1) % 2]
                for pi, trial in enumerate(user_probes[uid]):
                    got = decision_key(
                        registry.get(uid).authenticate_fast(trial)
                    )
                    if got != baseline[(uid, pi)]:
                        local.append(
                            f"{uid} probe {pi} (thread {idx}): {got!r}"
                        )
                # Evicting the *other* user forces the next thread that
                # wants them through the unlocked backend-load path.
                registry.evict(other)
                batch = registry.authenticate_many(
                    [uid, other],
                    [user_probes[uid][0], user_probes[other][0]],
                )
                got_batch = [decision_key(d) for d in batch]
                want_batch = [
                    baseline[(uid, 0)],
                    baseline[(other, 0)],
                ]
                if got_batch != want_batch:
                    local.append(
                        f"authenticate_many (thread {idx}): {got_batch!r}"
                    )
            if local:
                with report_lock:
                    mismatches.extend(local[:3])

        errors = run_threads(worker)
        assert not errors, errors
        assert not mismatches, (
            "registry thrash diverged from serial:\n" + "\n".join(mismatches[:6])
        )


class TestCacheThrash:
    """Concurrent fill/clear on one shared :class:`FeatureCache`."""

    def _reference(self, trials) -> Sequence:
        reference_cache = FeatureCache()
        return reference_cache.preprocess(trials)

    def test_fill_clear_thrash_stays_bitwise_identical(
        self, monkeypatch, data, third_party
    ):
        monkeypatch.setenv("REPRO_CONCURRENCY_DEBUG", "1")
        trials = data.trials(0, PIN, "one_handed", 8)
        serial = self._reference(trials)
        cache = FeatureCache(max_trials=6)  # below len(trials): evictions live
        mismatches: List[str] = []
        report_lock = threading.Lock()

        def worker(idx: int) -> None:
            local: List[str] = []
            for round_no in range(12):
                got = cache.preprocess(trials)
                for pi, (a, b) in enumerate(zip(got, serial)):
                    if not (
                        np.array_equal(a.detrended, b.detrended)
                        and np.array_equal(a.filtered, b.filtered)
                        and a.keystroke_indices == b.keystroke_indices
                        and a.energy_threshold == b.energy_threshold
                    ):
                        local.append(
                            f"thread {idx} round {round_no} trial {pi}"
                        )
                bank = cache.negative_bank(third_party)
                if bank.full.features.shape[0] == 0:
                    local.append(f"thread {idx}: empty bank")
                if idx == 0 and round_no % 4 == 3:
                    cache.clear()
            if local:
                with report_lock:
                    mismatches.extend(local[:3])

        errors = run_threads(worker)
        assert not errors, errors
        assert not mismatches, (
            "cache thrash diverged from serial:\n" + "\n".join(mismatches[:6])
        )
        # clear() resets the counters, and thread 0's final clear may be
        # the last operation — touch the cache once more so the snapshot
        # API is exercised against known-nonzero counters.
        cache.preprocess(trials)
        stats = cache.stats
        assert stats.trial_hits + stats.trial_misses > 0

    def test_default_cache_returns_one_instance(self):
        from repro.eval.featurecache import clear_default_cache, default_cache

        clear_default_cache()
        seen: List[int] = []
        seen_lock = threading.Lock()

        def worker(idx: int) -> None:
            cache = default_cache()
            with seen_lock:
                seen.append(id(cache))

        errors = run_threads(worker, n_threads=8)
        clear_default_cache()
        assert not errors, errors
        assert len(set(seen)) == 1, (
            "check-then-set race rebuilt the default cache: "
            f"{len(set(seen))} distinct instances"
        )
