"""Unit tests for the runtime half of the lock-discipline contract."""

from __future__ import annotations

import threading

import pytest

from repro.concurrency import (
    CONCURRENCY_DEBUG_ENV,
    CheckedRLock,
    assert_owned,
    checked_rlock,
    debug_enabled,
)
from repro.errors import ConcurrencyError


class TestFactory:
    def test_plain_rlock_when_debug_unset(self, monkeypatch):
        monkeypatch.delenv(CONCURRENCY_DEBUG_ENV, raising=False)
        assert not debug_enabled()
        lock = checked_rlock("x")
        assert not isinstance(lock, CheckedRLock)
        with lock:  # still a working context manager
            pass

    def test_checked_lock_when_debug_set(self, monkeypatch):
        monkeypatch.setenv(CONCURRENCY_DEBUG_ENV, "1")
        assert debug_enabled()
        lock = checked_rlock("x")
        assert isinstance(lock, CheckedRLock)

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off", "OFF"])
    def test_falsy_spellings_disable(self, monkeypatch, value):
        monkeypatch.setenv(CONCURRENCY_DEBUG_ENV, value)
        assert not debug_enabled()


class TestCheckedRLock:
    def test_ownership_tracking(self):
        lock = CheckedRLock("t")
        assert not lock.owned()
        with lock:
            assert lock.owned()
            with lock:  # reentrant
                assert lock.owned()
            assert lock.owned()
        assert not lock.owned()

    def test_assert_owned_raises_without_lock(self):
        lock = CheckedRLock("registry")
        with pytest.raises(ConcurrencyError, match="registry"):
            lock.assert_owned("the cache")
        with lock:
            lock.assert_owned("the cache")  # no raise

    def test_assert_owned_sees_other_thread_as_foreign(self):
        lock = CheckedRLock("t")
        outcome = {}

        def other():
            try:
                lock.assert_owned("state")
                outcome["raised"] = False
            except ConcurrencyError:
                outcome["raised"] = True

        with lock:
            worker = threading.Thread(target=other)
            worker.start()
            worker.join()
        assert outcome == {"raised": True}

    def test_release_by_non_owner_raises(self):
        lock = CheckedRLock("t")
        lock.acquire()
        errors = []

        def other():
            try:
                lock.release()
            except ConcurrencyError as exc:
                errors.append(str(exc))

        worker = threading.Thread(target=other)
        worker.start()
        worker.join()
        lock.release()
        assert len(errors) == 1 and "does not own" in errors[0]


class TestAssertOwnedHelper:
    def test_checked_lock_always_enforced(self, monkeypatch):
        # A CheckedRLock carries its own bookkeeping: assert_owned bites
        # even if the env flag was cleared after construction.
        monkeypatch.delenv(CONCURRENCY_DEBUG_ENV, raising=False)
        lock = CheckedRLock("t")
        with pytest.raises(ConcurrencyError):
            assert_owned(lock, "state")

    def test_plain_lock_noop_in_production(self, monkeypatch):
        monkeypatch.delenv(CONCURRENCY_DEBUG_ENV, raising=False)
        assert_owned(threading.RLock(), "state")  # no raise, no probe

    def test_plain_lock_probed_under_debug(self, monkeypatch):
        monkeypatch.setenv(CONCURRENCY_DEBUG_ENV, "1")
        lock = threading.RLock()
        with pytest.raises(ConcurrencyError):
            assert_owned(lock, "state")
        with lock:
            assert_owned(lock, "state")  # no raise
