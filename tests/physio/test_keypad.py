"""Unit tests for PIN pad geometry and hand assignment."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.physio.keypad import PinPad, all_keys, key_position
from repro.types import Hand


class TestKeyPosition:
    def test_corner_keys(self):
        assert key_position("1") == (-1.0, -1.0)
        assert key_position("3") == (1.0, -1.0)

    def test_zero_is_bottom_middle(self):
        x, y = key_position("0")
        assert x == 0.0
        assert y == 1.0

    def test_center_key(self):
        x, y = key_position("5")
        assert x == 0.0
        assert abs(y) < 0.5

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            key_position("#")

    def test_all_keys_have_distinct_positions(self):
        positions = {key_position(k) for k in all_keys()}
        assert len(positions) == 10


class TestHandAssignment:
    def test_one_handed_all_left(self):
        pad = PinPad()
        assert pad.assign_hands("1628", one_handed=True) == (Hand.LEFT,) * 4

    def test_left_column_goes_left(self):
        pad = PinPad()
        assert pad.hand_for_key("1", one_handed=False) is Hand.LEFT
        assert pad.hand_for_key("4", one_handed=False) is Hand.LEFT
        assert pad.hand_for_key("7", one_handed=False) is Hand.LEFT

    def test_right_column_goes_right(self):
        pad = PinPad()
        for key in "369":
            assert pad.hand_for_key(key, one_handed=False) is Hand.RIGHT

    def test_middle_column_follows_habit(self):
        pad = PinPad(
            middle_column_left=(("2", True), ("5", False), ("8", True), ("0", False))
        )
        assert pad.hand_for_key("2", one_handed=False) is Hand.LEFT
        assert pad.hand_for_key("5", one_handed=False) is Hand.RIGHT

    def test_habit_must_cover_middle_column(self):
        with pytest.raises(ConfigurationError):
            PinPad(middle_column_left=(("2", True),))

    @pytest.mark.parametrize("count", [0, 1, 2, 3, 4])
    def test_forced_left_count(self, count):
        pad = PinPad()
        rng = np.random.default_rng(0)
        hands = pad.assign_hands(
            "1628", one_handed=False, forced_left_count=count, rng=rng
        )
        assert sum(1 for h in hands if h is Hand.LEFT) == count

    def test_forced_count_requires_rng(self):
        with pytest.raises(ConfigurationError):
            PinPad().assign_hands("1628", one_handed=False, forced_left_count=2)

    def test_forced_count_infeasible(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            PinPad().assign_hands(
                "1628", one_handed=False, forced_left_count=5, rng=rng
            )

    def test_forced_count_in_one_handed_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            PinPad().assign_hands("1628", one_handed=True, forced_left_count=2)

    def test_one_handed_forced_full_count_allowed(self):
        hands = PinPad().assign_hands("1628", one_handed=True, forced_left_count=4)
        assert hands == (Hand.LEFT,) * 4

    def test_unknown_digit_rejected(self):
        with pytest.raises(ConfigurationError):
            PinPad().assign_hands("12x8", one_handed=True)

    def test_sample_is_deterministic_per_generator(self):
        a = PinPad.sample(np.random.default_rng(3))
        b = PinPad.sample(np.random.default_rng(3))
        assert a == b
