"""Unit tests for the keystroke-artifact model."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.physio.artifacts import (
    ArtifactParams,
    ArtifactResponseField,
    COMPONENTS,
    artifact_waveform,
    perturb_params,
)
from repro.types import PIN_PAD_KEYS


@pytest.fixture()
def field(rng):
    return ArtifactResponseField.sample(rng, SimulationConfig())


def _params(**overrides):
    base = dict(
        amplitude=3.0,
        peak_time=0.08,
        peak_width=0.05,
        trough_ratio=0.5,
        trough_delay=0.15,
        trough_width=0.08,
        osc_freq=4.0,
        osc_amp=0.1,
        osc_decay=0.12,
    )
    base.update(overrides)
    return ArtifactParams(**base)


class TestWaveform:
    def test_length(self):
        wave = artifact_waveform(_params(), duration=1.0, fs=100.0)
        assert wave.shape == (100,)

    def test_peak_near_peak_time(self):
        wave = artifact_waveform(_params(), duration=1.0, fs=1000.0)
        peak_at = np.argmax(wave) / 1000.0
        assert abs(peak_at - 0.08) < 0.02

    def test_has_rebound_trough(self):
        wave = artifact_waveform(_params(trough_ratio=0.8), duration=1.0, fs=100.0)
        assert wave.min() < 0.0

    def test_amplitude_scales_linearly(self):
        a = artifact_waveform(_params(amplitude=1.0), duration=1.0, fs=100.0)
        b = artifact_waveform(_params(amplitude=2.0), duration=1.0, fs=100.0)
        assert np.allclose(2.0 * a, b)

    def test_invalid_duration(self):
        with pytest.raises(ConfigurationError):
            artifact_waveform(_params(), duration=0.0, fs=100.0)

    def test_param_validation(self):
        with pytest.raises(ConfigurationError):
            _params(amplitude=-1.0)
        with pytest.raises(ConfigurationError):
            _params(peak_width=0.0)
        with pytest.raises(ConfigurationError):
            _params(osc_decay=0.0)


class TestResponseField:
    def test_has_both_components(self, field):
        for component in COMPONENTS:
            assert component in field.base

    def test_params_for_every_key(self, field):
        for key in PIN_PAD_KEYS:
            for component in COMPONENTS:
                params = field.params_for(key, component)
                assert params.amplitude > 0

    def test_unknown_component_rejected(self, field):
        with pytest.raises(ConfigurationError):
            field.params_for("1", "acoustic")

    def test_same_key_deterministic(self, field):
        a = field.params_for("5", "mechanical")
        b = field.params_for("5", "mechanical")
        assert a == b

    def test_different_keys_differ(self, field):
        a = field.params_for("1", "mechanical")
        b = field.params_for("9", "mechanical")
        assert a != b

    def test_different_users_differ(self):
        config = SimulationConfig()
        f1 = ArtifactResponseField.sample(np.random.default_rng(1), config)
        f2 = ArtifactResponseField.sample(np.random.default_rng(2), config)
        assert f1.params_for("5", "vascular") != f2.params_for("5", "vascular")

    def test_intra_user_closer_than_inter_user(self):
        """Section III: same-user keys are more alike than other users."""
        config = SimulationConfig()
        fields = [
            ArtifactResponseField.sample(np.random.default_rng(s), config)
            for s in range(8)
        ]

        def vec(field, key):
            p = field.params_for(key, "mechanical")
            return np.array(
                [p.amplitude, p.peak_time * 10, p.peak_width * 10, p.trough_ratio]
            )

        intra = np.mean(
            [
                np.linalg.norm(vec(f, "1") - vec(f, "9"))
                for f in fields
            ]
        )
        inter = np.mean(
            [
                np.linalg.norm(vec(fields[i], "5") - vec(fields[j], "5"))
                for i in range(len(fields))
                for j in range(i + 1, len(fields))
            ]
        )
        assert inter > intra

    def test_vascular_slower_than_mechanical_on_average(self):
        config = SimulationConfig()
        rng = np.random.default_rng(0)
        latencies = {"mechanical": [], "vascular": []}
        for _ in range(10):
            field = ArtifactResponseField.sample(rng, config)
            for component in COMPONENTS:
                latencies[component].append(field.base[component].peak_time)
        assert np.mean(latencies["vascular"]) > np.mean(latencies["mechanical"])


class TestPerturbation:
    def test_zero_scale_identity(self, field, rng):
        params = field.params_for("1", "mechanical")
        assert perturb_params(params, rng, scale=0.0) == params

    def test_small_scale_small_change(self, field, rng):
        params = field.params_for("1", "mechanical")
        perturbed = perturb_params(params, rng, scale=0.05)
        assert perturbed.amplitude == pytest.approx(params.amplitude, rel=0.3)

    def test_respects_floors(self, field):
        params = field.params_for("1", "mechanical")
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = perturb_params(params, rng, scale=1.5)
            assert p.peak_width > 0
            assert p.osc_decay > 0

    def test_negative_scale_rejected(self, field, rng):
        with pytest.raises(ConfigurationError):
            perturb_params(field.params_for("1", "vascular"), rng, scale=-0.1)
