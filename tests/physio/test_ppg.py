"""Unit tests for whole-trial synthesis."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.types import Hand

PIN = "1628"


class TestTrialStructure:
    def test_event_count_matches_pin(self, one_trial):
        assert len(one_trial.events) == 4
        assert one_trial.pin == PIN

    def test_events_in_chronological_order(self, one_trial):
        times = [e.true_time for e in one_trial.events]
        assert times == sorted(times)

    def test_recording_covers_all_events(self, one_trial):
        duration = one_trial.recording.duration
        assert all(0 < e.true_time < duration for e in one_trial.events)

    def test_four_channels_by_default(self, one_trial):
        assert one_trial.recording.n_channels == 4

    def test_reported_times_within_jitter(self, one_trial, sim_config):
        for event in one_trial.events:
            assert abs(event.reported_time - event.true_time) <= (
                sim_config.timestamp_jitter + 1e-9
            )

    def test_one_handed_all_left(self, one_trial):
        assert all(e.hand is Hand.LEFT for e in one_trial.events)

    def test_accel_included_on_request(self, accel_trial, sim_config):
        assert accel_trial.accel is not None
        assert accel_trial.accel.fs == sim_config.accel_fs

    def test_accel_absent_by_default(self, one_trial):
        assert one_trial.accel is None

    def test_invalid_pin_rejected(self, population, synthesizer, rng):
        with pytest.raises(ConfigurationError):
            synthesizer.synthesize_trial(population[0], "12a8", rng)
        with pytest.raises(ConfigurationError):
            synthesizer.synthesize_trial(population[0], "", rng)


class TestTwoHanded:
    @pytest.mark.parametrize("count", [2, 3])
    def test_forced_left_count(self, population, synthesizer, rng, count):
        trial = synthesizer.synthesize_trial(
            population[0], PIN, rng, one_handed=False, forced_left_count=count
        )
        left = sum(1 for e in trial.events if e.hand is Hand.LEFT)
        assert left == count
        assert not trial.one_handed

    def test_off_hand_keystroke_leaves_little_signal(
        self, population, synthesizer
    ):
        """Right-hand presses must not register on the left-wrist PPG."""
        user = population[0]
        rng_a = np.random.default_rng(100)
        rng_b = np.random.default_rng(100)
        # Same randomness, different hand assignment via forced counts.
        all_left = synthesizer.synthesize_trial(
            user, PIN, rng_a, one_handed=True
        )
        none_left = synthesizer.synthesize_trial(
            user, PIN, rng_b, one_handed=False, forced_left_count=0
        )
        # Keystroke energy around the presses should be far smaller in
        # the none-left trial.
        def press_energy(trial):
            rec = trial.recording
            total = 0.0
            for event in trial.events:
                idx = int(round(event.true_time * rec.fs))
                lo, hi = max(0, idx - 10), min(rec.n_samples, idx + 40)
                chunk = rec.samples[:, lo:hi]
                total += float(np.sum((chunk - chunk.mean(axis=1, keepdims=True)) ** 2))
            return total

        assert press_energy(all_left) > 2.0 * press_energy(none_left)


class TestEmulation:
    def test_rhythm_from_changes_timing_statistics(self, population, synthesizer):
        victim, attacker = population[0], population[1]

        def mean_gap(user, rhythm_from, seed):
            gaps = []
            for i in range(20):
                rng = np.random.default_rng(seed + i)
                trial = synthesizer.synthesize_trial(
                    user, PIN, rng, rhythm_from=rhythm_from
                )
                times = [e.true_time for e in trial.events]
                gaps.extend(np.diff(times))
            return float(np.mean(gaps))

        victim_gap = mean_gap(victim, None, 0)
        emulated_gap = mean_gap(attacker, victim, 1000)
        own_gap = mean_gap(attacker, None, 2000)
        # The emulated cadence should sit closer to the victim's than
        # to the attacker's own (unless they happen to coincide).
        if abs(own_gap - victim_gap) > 0.05:
            assert abs(emulated_gap - victim_gap) < abs(emulated_gap - own_gap)

    def test_emulation_keeps_attacker_physiology(self, population, synthesizer):
        victim, attacker = population[0], population[1]
        rng = np.random.default_rng(5)
        trial = synthesizer.synthesize_trial(
            attacker, PIN, rng, rhythm_from=victim
        )
        assert trial.user_id == attacker.user_id


class TestDeterminism:
    def test_same_rng_same_trial(self, population, synthesizer):
        a = synthesizer.synthesize_trial(
            population[0], PIN, np.random.default_rng(77)
        )
        b = synthesizer.synthesize_trial(
            population[0], PIN, np.random.default_rng(77)
        )
        assert np.allclose(a.recording.samples, b.recording.samples)
        assert a.events == b.events

    def test_different_users_different_signals(self, population, synthesizer):
        a = synthesizer.synthesize_trial(
            population[0], PIN, np.random.default_rng(77)
        )
        b = synthesizer.synthesize_trial(
            population[1], PIN, np.random.default_rng(77)
        )
        n = min(a.recording.n_samples, b.recording.n_samples)
        assert not np.allclose(
            a.recording.samples[:, :n], b.recording.samples[:, :n]
        )
