"""Unit tests for the cardiac pulse model."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.physio.cardiac import (
    CardiacParams,
    pulse_template,
    sample_cardiac_params,
    synthesize_cardiac,
)


@pytest.fixture()
def params(rng):
    return sample_cardiac_params(rng, SimulationConfig())


class TestSampling:
    def test_heart_rate_in_configured_range(self, rng):
        config = SimulationConfig()
        for _ in range(20):
            p = sample_cardiac_params(rng, config)
            low, high = config.heart_rate_range
            assert low <= p.heart_rate <= high

    def test_dicrotic_after_systolic(self, rng):
        for _ in range(20):
            p = sample_cardiac_params(rng, SimulationConfig())
            assert p.dicrotic_phase > p.systolic_phase

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CardiacParams(
                heart_rate=-60.0,
                systolic_phase=0.2,
                systolic_width=0.08,
                dicrotic_phase=0.5,
                dicrotic_width=0.1,
                dicrotic_ratio=0.3,
                amplitude=1.0,
                hrv_std=0.03,
                resp_rate=0.25,
                resp_depth=0.03,
            )


class TestTemplate:
    def test_periodic(self, params):
        phase = np.linspace(0.0, 1.0, 100, endpoint=False)
        a = pulse_template(phase, params)
        b = pulse_template(phase + 3.0, params)
        assert np.allclose(a, b)

    def test_peak_near_systolic_phase(self, params):
        phase = np.linspace(0.0, 1.0, 1000, endpoint=False)
        wave = pulse_template(phase, params)
        peak_phase = phase[np.argmax(wave)]
        assert abs(peak_phase - params.systolic_phase) < 0.05

    def test_non_negative(self, params):
        phase = np.linspace(0.0, 1.0, 1000)
        assert np.all(pulse_template(phase, params) >= 0.0)


class TestSynthesis:
    def test_output_length(self, params, rng):
        wave = synthesize_cardiac(500, 100.0, params, rng)
        assert wave.shape == (500,)

    def test_dominant_frequency_matches_heart_rate(self, rng):
        config = SimulationConfig()
        params = sample_cardiac_params(rng, config)
        fs = 100.0
        n = 4000
        wave = synthesize_cardiac(n, fs, params, rng)
        spectrum = np.abs(np.fft.rfft(wave - wave.mean()))
        freqs = np.fft.rfftfreq(n, 1.0 / fs)
        # Restrict to the physiological band to skip respiration lines.
        band = (freqs > 0.6) & (freqs < 3.5)
        dominant = freqs[band][np.argmax(spectrum[band])]
        expected = params.heart_rate / 60.0
        assert abs(dominant - expected) < 0.25

    def test_beats_are_bounded_by_amplitude(self, params, rng):
        wave = synthesize_cardiac(2000, 100.0, params, rng)
        assert np.max(wave) <= params.amplitude * (1.0 + params.dicrotic_ratio) + 1e-9

    def test_invalid_args(self, params, rng):
        with pytest.raises(ConfigurationError):
            synthesize_cardiac(0, 100.0, params, rng)
        with pytest.raises(ConfigurationError):
            synthesize_cardiac(100, 0.0, params, rng)

    def test_different_rng_different_realization(self, params):
        a = synthesize_cardiac(500, 100.0, params, np.random.default_rng(1))
        b = synthesize_cardiac(500, 100.0, params, np.random.default_rng(2))
        assert not np.allclose(a, b)

    def test_same_rng_reproducible(self, params):
        a = synthesize_cardiac(500, 100.0, params, np.random.default_rng(1))
        b = synthesize_cardiac(500, 100.0, params, np.random.default_rng(1))
        assert np.allclose(a, b)
