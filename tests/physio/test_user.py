"""Unit tests for user profiles and population sampling."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.physio.user import TypingRhythm, UserProfile, sample_population, sample_user


class TestTypingRhythm:
    def test_sample_valid(self, rng):
        rhythm = TypingRhythm.sample(rng)
        assert rhythm.speed_factor > 0
        assert set(rhythm.key_bias) == set("0123456789")

    def test_intervals_count_and_positivity(self, rng):
        rhythm = TypingRhythm.sample(rng)
        gaps = rhythm.intervals("1628", SimulationConfig(), rng)
        assert gaps.shape == (3,)
        assert np.all(gaps > 0)

    def test_single_digit_pin_has_no_gaps(self, rng):
        rhythm = TypingRhythm.sample(rng)
        assert rhythm.intervals("5", SimulationConfig(), rng).shape == (0,)

    def test_empty_pin_rejected(self, rng):
        rhythm = TypingRhythm.sample(rng)
        with pytest.raises(ConfigurationError):
            rhythm.intervals("", SimulationConfig(), rng)

    def test_fast_typist_shorter_gaps(self):
        config = SimulationConfig()
        fast = TypingRhythm(
            speed_factor=0.6, jitter_factor=0.0, key_bias=dict.fromkeys("0123456789", 0.0)
        )
        slow = TypingRhythm(
            speed_factor=1.4, jitter_factor=0.0, key_bias=dict.fromkeys("0123456789", 0.0)
        )
        rng = np.random.default_rng(0)
        assert fast.intervals("1628", config, rng).mean() < slow.intervals(
            "1628", config, np.random.default_rng(0)
        ).mean()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TypingRhythm(speed_factor=0.0, jitter_factor=1.0, key_bias={})


class TestUserProfile:
    def test_sample_user_complete(self, rng):
        user = sample_user(3, rng)
        assert user.user_id == 3
        assert user.site_coupling.shape == (2, 3)
        assert user.press_variability >= 0

    def test_bad_site_coupling_rejected(self, rng):
        user = sample_user(0, rng)
        with pytest.raises(ConfigurationError):
            UserProfile(
                user_id=0,
                cardiac=user.cardiac,
                artifacts=user.artifacts,
                noise=user.noise,
                pad=user.pad,
                rhythm=user.rhythm,
                site_coupling=np.zeros((3, 2)),
                press_variability=0.1,
            )


class TestPopulation:
    def test_size(self):
        assert len(sample_population(5, seed=1)) == 5

    def test_user_ids_sequential(self):
        users = sample_population(4, seed=1)
        assert [u.user_id for u in users] == [0, 1, 2, 3]

    def test_deterministic(self):
        a = sample_population(3, seed=9)
        b = sample_population(3, seed=9)
        assert a[2].cardiac == b[2].cardiac
        assert a[2].rhythm == b[2].rhythm

    def test_prefix_stable_under_growth(self):
        """User i is the same person regardless of population size."""
        small = sample_population(3, seed=4)
        large = sample_population(6, seed=4)
        for u_small, u_large in zip(small, large):
            assert u_small.cardiac == u_large.cardiac

    def test_users_are_distinct(self):
        users = sample_population(6, seed=2)
        rates = {u.cardiac.heart_rate for u in users}
        assert len(rates) == 6

    def test_empty_population_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_population(0)
