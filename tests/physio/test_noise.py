"""Unit tests for the noise model."""

import dataclasses

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.physio.noise import (
    baseline_wander,
    fidget_bumps,
    impulse_noise,
    sample_noise_params,
    synthesize_noise,
)


@pytest.fixture()
def params(rng):
    return sample_noise_params(rng, SimulationConfig())


class TestSampling:
    def test_instability_in_range(self, rng):
        config = SimulationConfig()
        low, high = config.user_instability_range
        for _ in range(20):
            p = sample_noise_params(rng, config)
            assert low <= p.instability <= high

    def test_fidget_rate_scales_with_instability(self, rng):
        config = SimulationConfig()
        p = sample_noise_params(rng, config)
        assert p.fidget_rate == pytest.approx(
            config.fidget_rate * p.instability
        )

    def test_negative_values_rejected(self, params):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(params, noise_std=-0.1)


class TestComponents:
    def test_baseline_wander_is_slow(self, params, rng):
        fs = 100.0
        wander = baseline_wander(3000, fs, params, rng)
        spectrum = np.abs(np.fft.rfft(wander - wander.mean())) ** 2
        freqs = np.fft.rfftfreq(3000, 1.0 / fs)
        low_power = spectrum[freqs < 1.0].sum()
        assert low_power / spectrum.sum() > 0.95

    def test_impulse_noise_is_sparse(self, params, rng):
        noise = impulse_noise(5000, 100.0, params, rng)
        nonzero = np.count_nonzero(noise)
        assert nonzero < 100

    def test_fidget_rate_zero_means_silence(self, params, rng):
        quiet = dataclasses.replace(params, fidget_rate=0.0)
        assert np.all(fidget_bumps(1000, 100.0, quiet, rng) == 0.0)

    def test_restless_users_fidget_more(self, rng):
        base = sample_noise_params(rng, SimulationConfig())
        calm = dataclasses.replace(base, fidget_rate=0.01)
        restless = dataclasses.replace(base, fidget_rate=2.0)
        calm_power = np.mean(
            fidget_bumps(5000, 100.0, calm, np.random.default_rng(1)) ** 2
        )
        restless_power = np.mean(
            fidget_bumps(5000, 100.0, restless, np.random.default_rng(1)) ** 2
        )
        assert restless_power > calm_power

    @pytest.mark.parametrize("fn", [baseline_wander, impulse_noise, fidget_bumps])
    def test_invalid_args(self, fn, params, rng):
        with pytest.raises(ConfigurationError):
            fn(0, 100.0, params, rng)
        with pytest.raises(ConfigurationError):
            fn(100, 0.0, params, rng)


class TestFullNoise:
    def test_shape(self, params, rng):
        assert synthesize_noise(700, 100.0, params, rng).shape == (700,)

    def test_reproducible(self, params):
        a = synthesize_noise(500, 100.0, params, np.random.default_rng(9))
        b = synthesize_noise(500, 100.0, params, np.random.default_rng(9))
        assert np.allclose(a, b)

    def test_wideband_level_tracks_noise_std(self, rng):
        config = SimulationConfig()
        base = sample_noise_params(rng, config)
        quiet = dataclasses.replace(
            base, noise_std=0.01, impulse_rate=0.0, fidget_rate=0.0,
            baseline_amplitude=0.0,
        )
        loud = dataclasses.replace(quiet, noise_std=1.0)
        q = synthesize_noise(2000, 100.0, quiet, np.random.default_rng(2))
        noisy = synthesize_noise(2000, 100.0, loud, np.random.default_rng(2))
        assert np.std(noisy) > 10 * np.std(q)
