"""Unit tests for the simulated accelerometer."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.physio.accelerometer import synthesize_accelerometer
from repro.types import Hand, KeystrokeEvent


def _events(times, hand=Hand.LEFT):
    return [
        KeystrokeEvent(key="5", true_time=t, reported_time=t, hand=hand)
        for t in times
    ]


class TestAccelerometer:
    def test_shape_and_rate(self, population, rng):
        config = SimulationConfig()
        rec = synthesize_accelerometer(
            population[0], _events([1.0, 2.0]), 4.0, config, rng
        )
        assert rec.samples.shape == (3, int(round(4.0 * config.accel_fs)))
        assert rec.fs == config.accel_fs

    def test_keystroke_amplitude_is_small(self, population, rng):
        """Fig. 12 premise: static typing barely moves the wrist."""
        config = SimulationConfig()
        rec = synthesize_accelerometer(
            population[0], _events([1.0, 2.0, 3.0]), 5.0, config, rng
        )
        assert np.max(np.abs(rec.samples)) < 0.5  # well under 0.5 g

    def test_right_hand_presses_leave_no_transient(self, population):
        config = SimulationConfig()
        user = population[0]
        left = synthesize_accelerometer(
            user, _events([1.0], Hand.LEFT), 3.0, config, np.random.default_rng(3)
        )
        right = synthesize_accelerometer(
            user, _events([1.0], Hand.RIGHT), 3.0, config, np.random.default_rng(3)
        )
        idx = int(round(1.0 * config.accel_fs))
        window = slice(idx, idx + 20)
        left_power = float(np.sum(left.samples[:, window] ** 2))
        right_power = float(np.sum(right.samples[:, window] ** 2))
        assert left_power > right_power

    def test_invalid_duration(self, population, rng):
        with pytest.raises(ConfigurationError):
            synthesize_accelerometer(
                population[0], [], 0.0, SimulationConfig(), rng
            )
