"""Public API surface contracts.

Every name promised by an ``__all__`` must resolve, and the top-level
package must re-export the documented entry points. These tests catch
broken re-exports before a user does.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.data",
    "repro.eval",
    "repro.features",
    "repro.ml",
    "repro.physio",
    "repro.sensing",
    "repro.service",
    "repro.signal",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


def test_top_level_entry_points():
    import repro

    for name in (
        "P2Auth",
        "TrialSynthesizer",
        "sample_population",
        "PinEntryTrial",
        "AuthDecision",
        "SimulationConfig",
        "PipelineConfig",
        "ProtocolConfig",
        "P2AuthError",
    ):
        assert hasattr(repro, name)


def test_version_is_a_string():
    import repro

    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_error_hierarchy_exported_consistently():
    import repro
    from repro import errors

    assert repro.P2AuthError is errors.P2AuthError
    assert issubclass(repro.SignalError, repro.P2AuthError)


def test_docstrings_on_public_callables():
    """Every public callable in the top-level namespace is documented."""
    import repro

    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj):
            assert obj.__doc__, f"repro.{name} lacks a docstring"
