"""End-to-end integration tests across the whole system.

These cover the full Fig. 4 workflow — simulator, sensing, pipeline,
enrollment, authentication, and attacks — at a small but meaningful
scale, asserting the *relationships* the paper's evaluation rests on.
"""

import numpy as np
import pytest

from repro import P2Auth, PAPER_PINS
from repro.core import EnrollmentOptions
from repro.data import StudyData, ThirdPartyStore

PIN = PAPER_PINS[0]
FEATURES = 840


@pytest.fixture(scope="module")
def world():
    data = StudyData(n_users=8, seed=77)
    store = ThirdPartyStore(data, [1, 2, 3, 4], PIN)
    return data, store


def _enroll(data, store, **options):
    auth = P2Auth(
        pin=PIN,
        options=EnrollmentOptions(num_features=FEATURES, **options),
    )
    auth.enroll(data.trials(0, PIN, "one_handed", 7), store.sample(28))
    return auth


class TestAuthenticationRelationships:
    def test_legit_beats_every_attacker(self, world):
        data, store = world
        auth = _enroll(data, store)
        legit = np.mean(
            [
                auth.authenticate(t).accepted
                for t in data.trials(0, PIN, "one_handed", 12)[7:]
            ]
        )
        emulating = np.mean(
            [
                auth.authenticate(t).accepted
                for t in data.emulating_trials(6, 0, PIN, 8)
            ]
        )
        random_attack = np.mean(
            [
                auth.authenticate(t).accepted
                for t in data.random_attack_trials(7, 8, pin_pool=(PIN,))
            ]
        )
        assert legit >= 0.6
        assert emulating <= 0.25
        assert random_attack <= 0.25
        assert legit > max(emulating, random_attack)

    def test_wrong_pin_always_rejected_regardless_of_biometrics(self, world):
        data, store = world
        auth = _enroll(data, store)
        # Even the legitimate user fails with a wrong PIN claim.
        trial = data.trials(0, PIN, "one_handed", 8)[7]
        assert not auth.authenticate(trial, claimed_pin="0000").accepted

    def test_two_handed_cases_work_end_to_end(self, world):
        data, store = world
        auth = _enroll(data, store)
        for condition in ("double3", "double2"):
            accepted = [
                auth.authenticate(t).accepted
                for t in data.trials(0, PIN, condition, 6)
            ]
            assert np.mean(accepted) >= 0.5, condition

    def test_privacy_boost_trades_accuracy_for_template_hiding(self, world):
        data, store = world
        plain = _enroll(data, store)
        boost = _enroll(data, store, privacy_boost=True)
        probes = data.trials(0, PIN, "one_handed", 15)[7:]
        acc_plain = np.mean([plain.authenticate(t).accepted for t in probes])
        acc_boost = np.mean([boost.authenticate(t).accepted for t in probes])
        # Fusion may cost accuracy (Fig. 10) but must stay usable.
        assert acc_boost >= 0.5
        assert acc_plain >= acc_boost - 0.15

    def test_attackers_rejected_under_privacy_boost(self, world):
        data, store = world
        auth = _enroll(data, store, privacy_boost=True)
        emulating = [
            auth.authenticate(t).accepted
            for t in data.emulating_trials(5, 0, PIN, 8)
        ]
        assert np.mean(emulating) <= 0.25


class TestCrossUserSymmetry:
    def test_models_are_user_specific(self, world):
        """Each user's model scores its owner above other users.

        Compared on mean decision scores over several probes — at this
        tiny training scale a single thresholded probe can flip (the
        paper itself reports 98% TRR, not 100%), but the score
        ordering must hold on average across users.
        """
        data, _ = world
        margins = []
        for victim in (0, 1, 2):
            imposters = [u for u in (0, 1, 2) if u != victim]
            store = ThirdPartyStore(data, [3, 4, 5], PIN)
            auth = P2Auth(
                pin=PIN, options=EnrollmentOptions(num_features=FEATURES)
            )
            auth.enroll(
                data.trials(victim, PIN, "one_handed", 7), store.sample(24)
            )
            own_scores = [
                auth.authenticate(t).scores[0]
                for t in data.trials(victim, PIN, "one_handed", 13)[7:]
            ]
            other_scores = [
                auth.authenticate(t).scores[0]
                for u in imposters
                for t in data.trials(u, PIN, "one_handed", 4)
            ]
            margins.append(np.mean(own_scores) - np.mean(other_scores))
        # Every victim separates on average, and the population-level
        # margin is clearly positive.
        assert np.mean(margins) > 0.2
        assert sum(m > 0 for m in margins) >= 2
