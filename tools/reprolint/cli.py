"""Command-line front end: ``python -m tools.reprolint [paths...]``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .concurrency import build_project_index, render_manifest
from .engine import (
    LintResult,
    collect_suppressions,
    iter_python_files,
    lint_paths,
)
from .rules import ALL_RULES, RULES_BY_ID, Rule


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Repo-specific static analysis for reproduction invariants "
            "(stdlib-only AST linter)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "scripts"],
        help="files or directories to lint (default: src tests scripts)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--concurrency-manifest",
        action="store_true",
        help=(
            "print the CONCURRENCY.md shared-state manifest for the "
            "given paths and exit (redirect to CONCURRENCY.md to "
            "refresh the committed copy)"
        ),
    )
    parser.add_argument(
        "--show-suppressions",
        action="store_true",
        help=(
            "print every '# reprolint: disable' comment under the given "
            "paths (file, line, rules, reason) and exit"
        ),
    )
    return parser


def _pick_rules(
    select: Optional[str], ignore: Optional[str]
) -> Sequence[Rule]:
    chosen: List[Rule] = list(ALL_RULES)
    if select:
        wanted = [rid.strip().upper() for rid in select.split(",") if rid.strip()]
        unknown = [rid for rid in wanted if rid not in RULES_BY_ID]
        if unknown:
            raise SystemExit(f"reprolint: unknown rule id(s): {', '.join(unknown)}")
        chosen = [RULES_BY_ID[rid] for rid in wanted]
    if ignore:
        dropped = {rid.strip().upper() for rid in ignore.split(",") if rid.strip()}
        unknown = [rid for rid in sorted(dropped) if rid not in RULES_BY_ID]
        if unknown:
            raise SystemExit(f"reprolint: unknown rule id(s): {', '.join(unknown)}")
        chosen = [rule for rule in chosen if rule.rule_id not in dropped]
    return chosen


def _render_text(result: LintResult) -> str:
    lines = [finding.render() for finding in result.findings]
    noun = "file" if result.files_checked == 1 else "files"
    summary = (
        f"reprolint: {len(result.findings)} finding(s) in "
        f"{result.files_checked} {noun} ({result.suppressed} suppressed)"
    )
    return "\n".join(lines + [summary])


def _render_json(result: LintResult) -> str:
    payload = {
        "findings": [finding.to_dict() for finding in result.findings],
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _render_rule_table() -> str:
    rows = []
    for rule in ALL_RULES:
        rows.append(f"{rule.rule_id}  {rule.name}: {rule.description}")
        rows.append(f"       {rule.rationale}")
    return "\n".join(rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_render_rule_table())
        return 0
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(
            f"reprolint: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    if args.concurrency_manifest:
        files = iter_python_files([Path(p) for p in args.paths])
        print(render_manifest(build_project_index(files)), end="")
        return 0
    if args.show_suppressions:
        records = collect_suppressions([Path(p) for p in args.paths])
        if args.format == "json":
            print(json.dumps([r.to_dict() for r in records], indent=2))
        else:
            for record in records:
                print(record.render())
            noun = "suppression" if len(records) == 1 else "suppressions"
            print(f"reprolint: {len(records)} {noun}")
        return 0
    rules = _pick_rules(args.select, args.ignore)
    result = lint_paths([Path(p) for p in args.paths], rules=rules)
    render = _render_json if args.format == "json" else _render_text
    print(render(result))
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
