"""Module entry point so ``python -m tools.reprolint`` works from the repo root."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
