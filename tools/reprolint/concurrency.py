"""Cross-module concurrency analysis: annotations, symbol pass, rules.

ROADMAP items 1 and 4 (async auth service, streaming multiplexer) put
many threads on top of state that used to be only informally guarded.
This module makes the lock discipline *machine-checked* the same way
``rules.py`` machine-checks reproduction invariants:

**Annotation convention.**  Shared state is declared on its definition
line with one of two comment forms::

    self._cache = OrderedDict()   # guarded-by: _lock
    _DEFAULT_CACHE = None         # guarded-by: _DEFAULT_CACHE_LOCK
    SPECS = {...}                 # concurrency: immutable-after-init
    class _Scratch:               # concurrency: thread-hostile

``guarded-by`` names the lock (an attribute of the same object, or a
module-level lock for module-level bindings) that must be held around
every access.  ``concurrency:`` takes one of the vocabulary kinds in
:data:`VALID_KINDS`.  A method whose contract is "the caller already
holds the lock" is marked ``# guarded-by: caller`` on its ``def`` line
(and should call :func:`repro.concurrency.assert_owned` at entry).
A trailing ``-- reason`` is encouraged and ignored by the parser.

**Symbol pass.**  :func:`collect_symbols` inventories, per file, every
module-level mutable binding (container/ndarray literals and
constructors, plus any name rebound through ``global``) and every class
attribute rebound outside ``__init__``.  :func:`build_project_index`
aggregates the inventory across the linted file set so rules can see
annotations made in *other* modules (e.g. a thread-hostile class used
far from its definition), and :func:`render_manifest` turns it into the
committed ``CONCURRENCY.md``.

**Rules.**

========  ====================================================================
RL009     undeclared module-level mutable state — a dict/list/set/
          OrderedDict/ndarray binding (or a ``global``-rebound name) at
          module scope with no concurrency annotation
RL010     lock discipline — access to a ``guarded-by`` attribute or
          module binding outside a ``with <lock>:`` block
RL011     thread-hostile escape — an instance of a class marked
          ``thread-hostile`` stored into module globals, stored into a
          container through a subscript, or submitted to an executor
RL012     blocking while locked — a call from the expensive-call list
          (kernel compile, backend load/store, warmup, file I/O) made
          while a lock is held, codifying the PR 6 double-checked-
          locking lesson
========  ====================================================================
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .engine import FileContext, Finding, Rule

#: Accepted ``# concurrency: <kind>`` vocabulary.
VALID_KINDS = frozenset(
    {
        "immutable-after-init",  # written during import/__init__, never again
        "process-local",         # one per process by construction (workers)
        "thread-local",          # confined to threading.local storage
        "thread-hostile",        # instances must stay on one thread (RL011)
        "thread-safe",           # internally locked; safe to share
    }
)

_ANNOTATION_RE = re.compile(
    r"#\s*(?:concurrency:\s*(?P<kind>[A-Za-z-]+)"
    r"|guarded-by:\s*(?P<guard>[A-Za-z_][A-Za-z0-9_.]*))"
)

#: Mutable container constructors RL009 recognizes by (leaf) name.
_MUTABLE_CTORS = frozenset(
    {"dict", "list", "set", "bytearray", "OrderedDict", "defaultdict",
     "deque", "Counter", "ChainMap"}
)

#: numpy constructors whose module-level result is a mutable ndarray.
_NDARRAY_CTORS = frozenset(
    {"array", "asarray", "zeros", "ones", "empty", "full", "arange",
     "linspace", "zeros_like", "ones_like", "empty_like", "full_like"}
)

#: Methods where attribute writes are construction, not shared mutation.
_CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__new__", "__post_init__", "__setstate__", "__init_subclass__"}
)

#: Call leaves RL012 treats as expensive/blocking while a lock is held.
#: Grounded in costs this repo has measured: the C-kernel compile and
#: dlopen, backend (de)serialization, warmup work, preprocessing, and
#: plain file I/O.
_BLOCKING_LEAVES = frozenset(
    {
        "load", "store", "save", "warmup", "warm", "open",
        "read_text", "read_bytes", "write_text", "write_bytes",
        "CDLL", "save_authenticator", "load_authenticator",
        "warm_engine", "warm_savgol", "warm_detrend_factor",
        "preprocess_trials", "build_negative_bank", "enroll_models",
    }
)

#: Executor entry points RL011 treats as handing work to another thread.
_EXECUTOR_LEAVES = frozenset({"submit", "map", "apply_async"})


@dataclass(frozen=True)
class Annotation:
    """One parsed concurrency annotation comment."""

    kind: Optional[str] = None   # a VALID_KINDS member (or invalid text)
    guard: Optional[str] = None  # lock name for guarded-by

    @property
    def valid(self) -> bool:
        if self.guard is not None:
            return True
        return self.kind in VALID_KINDS

    def render(self) -> str:
        if self.guard is not None:
            return f"guarded-by: `{self.guard}`"
        return str(self.kind)


def parse_annotations(lines: Sequence[str]) -> Dict[int, Annotation]:
    """Map line number -> concurrency annotation for one file."""
    out: Dict[int, Annotation] = {}
    for lineno, text in enumerate(lines, start=1):
        if "guarded-by" not in text and "concurrency:" not in text:
            continue
        match = _ANNOTATION_RE.search(text)
        if match is None:
            continue
        guard = match.group("guard")
        if guard is not None:
            guard = guard.removeprefix("self.")
        out[lineno] = Annotation(kind=match.group("kind"), guard=guard)
    return out


# ---------------------------------------------------------------------------
# Symbol collection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ModuleBinding:
    """One module-level mutable binding."""

    path: str
    line: int
    name: str
    kind: str  # "dict" | "list" | "set" | "ndarray" | ... | "rebound-global"
    annotation: Optional[Annotation]


@dataclass(frozen=True)
class GuardedAttr:
    """A class attribute declared ``guarded-by`` a lock."""

    attr: str
    lock: str
    line: int


@dataclass(frozen=True)
class ClassRecord:
    """Concurrency-relevant facts about one class definition."""

    path: str
    line: int
    name: str
    annotation: Optional[Annotation]
    guarded: Tuple[GuardedAttr, ...]
    mutated_attrs: Tuple[Tuple[str, int], ...]  # rebound outside __init__


@dataclass
class FileSymbols:
    """The symbol inventory of one file."""

    path: str
    bindings: List[ModuleBinding] = field(default_factory=list)
    classes: List[ClassRecord] = field(default_factory=list)


@dataclass
class ProjectIndex:
    """Cross-file symbol knowledge for the project-wide rules."""

    files: List[FileSymbols] = field(default_factory=list)
    thread_hostile_classes: FrozenSet[str] = frozenset()


def _value_kind(value: ast.expr) -> Optional[str]:
    """Mutable-kind label of an assigned value, or None if not mutable."""
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        func = value.func
        leaf = None
        if isinstance(func, ast.Name):
            leaf = func.id
        elif isinstance(func, ast.Attribute):
            leaf = func.attr
        if leaf in _MUTABLE_CTORS:
            return leaf if leaf[0].isupper() else leaf
        if leaf in _NDARRAY_CTORS and _call_base_is_numpy(func):
            return "ndarray"
    return None


def _call_base_is_numpy(func: ast.expr) -> bool:
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    )


def _module_scope_targets(stmt: ast.stmt) -> List[Tuple[str, ast.expr]]:
    """(name, value) pairs bound by a module-scope assignment."""
    if isinstance(stmt, ast.Assign) and stmt.value is not None:
        return [
            (t.id, stmt.value) for t in stmt.targets if isinstance(t, ast.Name)
        ]
    if (
        isinstance(stmt, ast.AnnAssign)
        and stmt.value is not None
        and isinstance(stmt.target, ast.Name)
    ):
        return [(stmt.target.id, stmt.value)]
    return []


def _global_names(module: ast.Module) -> Set[str]:
    """Names rebound through ``global`` anywhere in the module."""
    names: Set[str] = set()
    for node in ast.walk(module):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return names


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def collect_symbols(module: ast.Module, ctx: FileContext) -> FileSymbols:
    """Inventory one file's shared-state symbols (see module docstring)."""
    annots = parse_annotations(ctx.lines)
    symbols = FileSymbols(path=ctx.path)
    rebound = _global_names(module)
    seen: Set[str] = set()
    for stmt in module.body:
        for name, value in _module_scope_targets(stmt):
            if _is_dunder(name) or name in seen:
                continue
            kind = _value_kind(value)
            if kind is None and name in rebound:
                kind = "rebound-global"
            if kind is None:
                # A binding that is neither mutable-valued nor rebound
                # still belongs in the inventory when it *declares* a
                # guard: the annotation marks it as shared state.
                ann = annots.get(stmt.lineno)
                if ann is not None and ann.guard is not None:
                    kind = "guarded-reference"
            if kind is None:
                continue
            seen.add(name)
            symbols.bindings.append(
                ModuleBinding(
                    path=ctx.path,
                    line=stmt.lineno,
                    name=name,
                    kind=kind,
                    annotation=annots.get(stmt.lineno),
                )
            )
    for node in module.body:
        if isinstance(node, ast.ClassDef):
            symbols.classes.append(_collect_class(node, ctx, annots))
    return symbols


def _self_attr_targets(stmt: ast.stmt) -> List[Tuple[str, int]]:
    """``self.X`` rebinding targets of one statement."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    out = []
    for target in targets:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            out.append((target.attr, stmt.lineno))
    return out


def _collect_class(
    node: ast.ClassDef, ctx: FileContext, annots: Dict[int, Annotation]
) -> ClassRecord:
    guarded: Dict[str, GuardedAttr] = {}
    mutated: Dict[str, int] = {}
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        construction = item.name in _CONSTRUCTION_METHODS
        for stmt in ast.walk(item):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            for attr, line in _self_attr_targets(stmt):
                ann = annots.get(line)
                if ann is not None and ann.guard not in (None, "caller"):
                    guarded.setdefault(
                        attr, GuardedAttr(attr=attr, lock=ann.guard, line=line)
                    )
                elif not construction and attr not in mutated:
                    mutated[attr] = line
    annotation = annots.get(node.lineno)
    return ClassRecord(
        path=ctx.path,
        line=node.lineno,
        name=node.name,
        annotation=annotation,
        guarded=tuple(sorted(guarded.values(), key=lambda g: g.attr)),
        mutated_attrs=tuple(
            (attr, mutated[attr])
            for attr in sorted(mutated)
            if attr not in guarded
        ),
    )


def build_project_index(files: Iterable[Path]) -> ProjectIndex:
    """Parse and inventory every file; unparseable files are skipped
    here (RL000 reports them during the lint pass proper)."""
    index = ProjectIndex()
    hostile: Set[str] = set()
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
            module = ast.parse(source, filename=str(path))
        except (OSError, UnicodeDecodeError, SyntaxError, ValueError):
            continue
        ctx = FileContext(path=str(path), source=source)
        symbols = collect_symbols(module, ctx)
        index.files.append(symbols)
        for record in symbols.classes:
            if record.annotation is not None and (
                record.annotation.kind == "thread-hostile"
            ):
                hostile.add(record.name)
    index.files.sort(key=lambda s: s.path)
    index.thread_hostile_classes = frozenset(hostile)
    return index


# ---------------------------------------------------------------------------
# Manifest rendering
# ---------------------------------------------------------------------------


def render_manifest(index: ProjectIndex) -> str:
    """The committed ``CONCURRENCY.md`` content for a project index."""
    lines: List[str] = [
        "# Concurrency manifest",
        "",
        "Generated by `python -m tools.reprolint --concurrency-manifest"
        " src tools`.",
        "Do not edit by hand: CI regenerates this file and fails when the"
        " committed",
        "copy is stale. See `docs/architecture.md` (Concurrency model) for"
        " the",
        "annotation vocabulary and `docs/development.md` for rules"
        " RL009-RL012.",
        "",
        "## Module-level mutable state",
        "",
        "Every module-scope binding that is a mutable container/ndarray or"
        " is",
        "rebound through `global`, with its declared discipline (RL009"
        " requires",
        "one; RL010 enforces `guarded-by` declarations).",
        "",
        "| Binding | Kind | Declared | Where |",
        "|---|---|---|---|",
    ]
    bindings = sorted(
        (b for f in index.files for b in f.bindings),
        key=lambda b: (b.path, b.line),
    )
    for b in bindings:
        declared = b.annotation.render() if b.annotation else "**UNDECLARED**"
        lines.append(
            f"| `{b.name}` | {b.kind} | {declared} | `{b.path}:{b.line}` |"
        )
    if not bindings:
        lines.append("| _none_ | | | |")

    lines += [
        "",
        "## Lock-guarded class state",
        "",
        "Attributes declared `# guarded-by: <lock>`; RL010 proves every"
        " access",
        "sits inside a `with self.<lock>:` block (or a `# guarded-by:"
        " caller`",
        "helper asserting ownership via `repro.concurrency.assert_owned`).",
        "",
        "| Class | Attribute | Lock | Where |",
        "|---|---|---|---|",
    ]
    rows = 0
    for f in index.files:
        for record in f.classes:
            for g in record.guarded:
                lines.append(
                    f"| `{record.name}` | `{g.attr}` | `self.{g.lock}` "
                    f"| `{record.path}:{g.line}` |"
                )
                rows += 1
    if rows == 0:
        lines.append("| _none_ | | | |")

    lines += [
        "",
        "## Class concurrency declarations",
        "",
        "| Class | Concurrency | Where |",
        "|---|---|---|",
    ]
    rows = 0
    for f in index.files:
        for record in f.classes:
            if record.annotation is not None:
                lines.append(
                    f"| `{record.name}` | {record.annotation.render()} "
                    f"| `{record.path}:{record.line}` |"
                )
                rows += 1
    if rows == 0:
        lines.append("| _none_ | | | |")

    lines += [
        "",
        "## Classes with attributes rebound outside `__init__`",
        "",
        "The remaining stateful surface: instances of an *undeclared* class",
        "here must be treated as confined to one thread until annotated.",
        "",
        "| Class | Declared | Rebound attributes | Where |",
        "|---|---|---|---|",
    ]
    rows = 0
    for f in index.files:
        for record in f.classes:
            if not record.mutated_attrs:
                continue
            attrs = ", ".join(f"`{a}`" for a, _ in record.mutated_attrs)
            declared = (
                record.annotation.render() if record.annotation else "—"
            )
            lines.append(
                f"| `{record.name}` | {declared} | {attrs} "
                f"| `{record.path}:{record.line}` |"
            )
            rows += 1
    if rows == 0:
        lines.append("| _none_ | | | |")
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Shared traversal helpers
# ---------------------------------------------------------------------------

#: A held lock: ("self", attr) for ``with self.X:``, ("", name) for
#: ``with X:``.
_LockKey = Tuple[str, str]


def _lock_key(expr: ast.expr) -> Optional[_LockKey]:
    if isinstance(expr, ast.Name):
        return ("", expr.id)
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        if expr.value.id == "self":
            return ("self", expr.attr)
        return ("", f"{expr.value.id}.{expr.attr}")
    return None


def _looks_like_lock(key: Optional[_LockKey]) -> bool:
    return key is not None and "lock" in key[1].lower()


def _call_leaf(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _call_base_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id
    return None


def _local_bound_names(func: ast.AST) -> Set[str]:
    """Names bound locally in ``func`` (params + assignments), minus
    those declared ``global``/``nonlocal``."""
    bound: Set[str] = set()
    escaped: Set[str] = set()
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = func.args
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            bound.add(a.arg)
        if args.vararg is not None:
            bound.add(args.vararg.arg)
        if args.kwarg is not None:
            bound.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            escaped.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    bound.add(target.id)
    return bound - escaped


# ---------------------------------------------------------------------------
# RL009 — undeclared module-level mutable state
# ---------------------------------------------------------------------------


class UndeclaredMutableStateRule(Rule):
    """RL009: module-level mutable bindings must declare a discipline."""

    rule_id = "RL009"
    name = "undeclared-mutable-state"
    description = "module-level mutable state with no concurrency annotation"
    rationale = (
        "Module-level dicts/lists/sets/ndarrays and global-rebound names "
        "are process-wide shared state; the async service and streaming "
        "multiplexer will touch them from many threads. Declare "
        "'# guarded-by: <lock>' or '# concurrency: <kind>' on the "
        "definition line so the discipline is explicit and enforced."
    )

    def check(self, module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        symbols = collect_symbols(module, ctx)
        for binding in symbols.bindings:
            node = _LineNode(binding.line)
            if binding.annotation is None:
                yield self.finding(
                    ctx,
                    node,
                    f"module-level mutable state {binding.name!r} "
                    f"({binding.kind}) has no concurrency annotation; "
                    "declare '# guarded-by: <lock>' or "
                    "'# concurrency: immutable-after-init|process-local|"
                    "thread-hostile' on this line",
                )
            elif not binding.annotation.valid:
                yield self.finding(
                    ctx,
                    node,
                    f"unknown concurrency annotation "
                    f"{binding.annotation.kind!r} on {binding.name!r}; "
                    f"valid kinds: {', '.join(sorted(VALID_KINDS))}",
                )


class _LineNode:
    """Minimal stand-in so Rule.finding can address a bare line."""

    def __init__(self, lineno: int, col_offset: int = 0) -> None:
        self.lineno = lineno
        self.col_offset = col_offset


# ---------------------------------------------------------------------------
# RL010 — lock discipline
# ---------------------------------------------------------------------------


class LockDisciplineRule(Rule):
    """RL010: guarded state is only touched with its lock held."""

    rule_id = "RL010"
    name = "lock-discipline"
    description = "guarded-by state accessed outside its lock"
    rationale = (
        "A '# guarded-by: <lock>' declaration is a contract: every read "
        "and write happens inside 'with <lock>:' (or in a "
        "'# guarded-by: caller' helper that asserts ownership). "
        "Accesses outside the lock are exactly the races the annotation "
        "exists to prevent; deliberate lock-free fast paths (double-"
        "checked publication) carry a reasoned suppression."
    )

    def check(self, module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        annots = parse_annotations(ctx.lines)
        yield from self._check_classes(module, ctx, annots)
        yield from self._check_module_bindings(module, ctx, annots)

    # -- class attributes ---------------------------------------------------

    def _check_classes(
        self,
        module: ast.Module,
        ctx: FileContext,
        annots: Dict[int, Annotation],
    ) -> Iterator[Finding]:
        for cls in module.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            record = _collect_class(cls, ctx, annots)
            guarded = {g.attr: g.lock for g in record.guarded}
            if not guarded:
                continue
            for item in cls.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name in _CONSTRUCTION_METHODS:
                    continue
                ann = annots.get(item.lineno)
                if ann is not None and ann.guard == "caller":
                    continue  # contract: caller holds the lock
                yield from self._walk_scope(
                    ctx, item.body, guarded, frozenset(), item.name
                )

    def _walk_scope(
        self,
        ctx: FileContext,
        body: Sequence[ast.stmt],
        guarded: Dict[str, str],
        held: FrozenSet[_LockKey],
        where: str,
    ) -> Iterator[Finding]:
        for stmt in body:
            yield from self._walk_node(ctx, stmt, guarded, held, where)

    def _walk_node(
        self,
        ctx: FileContext,
        node: ast.AST,
        guarded: Dict[str, str],
        held: FrozenSet[_LockKey],
        where: str,
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                key = _lock_key(item.context_expr)
                if key is not None:
                    acquired.add(key)
            for stmt in node.body:
                yield from self._walk_node(
                    ctx, stmt, guarded, frozenset(acquired), where
                )
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            lock = guarded.get(node.attr)
            if lock is not None and ("self", lock) not in held:
                yield self.finding(
                    ctx,
                    node,
                    f"'self.{node.attr}' is guarded by 'self.{lock}' but "
                    f"is accessed in {where}() without holding it; wrap "
                    f"the access in 'with self.{lock}:' (or mark the "
                    "method '# guarded-by: caller')",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._walk_node(ctx, child, guarded, held, where)

    # -- module-level bindings ----------------------------------------------

    def _check_module_bindings(
        self,
        module: ast.Module,
        ctx: FileContext,
        annots: Dict[int, Annotation],
    ) -> Iterator[Finding]:
        guarded: Dict[str, str] = {}
        for stmt in module.body:
            ann = annots.get(stmt.lineno)
            if ann is None or ann.guard in (None, "caller"):
                continue
            for name, _value in _module_scope_targets(stmt):
                guarded[name] = ann.guard
        if not guarded:
            return
        for func in module.body:
            yield from self._check_function_globals(ctx, func, guarded, annots)

    def _check_function_globals(
        self,
        ctx: FileContext,
        func: ast.AST,
        guarded: Dict[str, str],
        annots: Dict[int, Annotation],
    ) -> Iterator[Finding]:
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        ann = annots.get(func.lineno)
        if ann is not None and ann.guard == "caller":
            return
        shadowed = _local_bound_names(func)
        relevant = {
            name: lock
            for name, lock in guarded.items()
            if name not in shadowed
        }
        if not relevant:
            return
        yield from self._walk_globals(ctx, func.body, relevant, frozenset(),
                                      func.name)

    def _walk_globals(
        self,
        ctx: FileContext,
        body: Sequence[ast.stmt],
        guarded: Dict[str, str],
        held: FrozenSet[_LockKey],
        where: str,
    ) -> Iterator[Finding]:
        for stmt in body:
            yield from self._walk_global_node(ctx, stmt, guarded, held, where)

    def _walk_global_node(
        self,
        ctx: FileContext,
        node: ast.AST,
        guarded: Dict[str, str],
        held: FrozenSet[_LockKey],
        where: str,
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                key = _lock_key(item.context_expr)
                if key is not None:
                    acquired.add(key)
            for stmt in node.body:
                yield from self._walk_global_node(
                    ctx, stmt, guarded, frozenset(acquired), where
                )
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested scope: analysed on its own, with its own shadows
        if isinstance(node, ast.Name) and node.id in guarded:
            lock = guarded[node.id]
            if ("", lock) not in held:
                yield self.finding(
                    ctx,
                    node,
                    f"module binding {node.id!r} is guarded by {lock!r} "
                    f"but is accessed in {where}() without holding it; "
                    f"wrap the access in 'with {lock}:'",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._walk_global_node(ctx, child, guarded, held, where)


# ---------------------------------------------------------------------------
# RL011 — thread-hostile escape
# ---------------------------------------------------------------------------


class ThreadHostileEscapeRule(Rule):
    """RL011: thread-hostile instances must not escape their thread."""

    rule_id = "RL011"
    name = "thread-hostile-escape"
    description = "thread-hostile instance escaping into shared storage"
    rationale = (
        "A class marked '# concurrency: thread-hostile' (unsynchronized "
        "scratch buffers, per-stream state) is only safe confined to one "
        "thread. Storing an instance in a module global or a shared "
        "container, or submitting it to an executor, publishes it to "
        "other threads — the exact sharing bug the hot-path scratch had."
    )

    def check(self, module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        hostile = self._hostile_classes(module, ctx)
        if not hostile:
            return
        for stmt in module.body:
            for name, value in _module_scope_targets(stmt):
                cls = self._hostile_call(value, hostile)
                if cls is not None:
                    yield self._finding(
                        ctx, stmt, cls, f"stored in module global {name!r}"
                    )
        for func in ast.walk(module):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, func, hostile)

    def _hostile_classes(
        self, module: ast.Module, ctx: FileContext
    ) -> FrozenSet[str]:
        annots = parse_annotations(ctx.lines)
        names: Set[str] = set()
        for node in ast.walk(module):
            if isinstance(node, ast.ClassDef):
                ann = annots.get(node.lineno)
                if ann is not None and ann.kind == "thread-hostile":
                    names.add(node.name)
        project = getattr(ctx, "project", None)
        if project is not None:
            names.update(project.thread_hostile_classes)
        return frozenset(names)

    @staticmethod
    def _hostile_call(
        value: ast.expr, hostile: FrozenSet[str]
    ) -> Optional[str]:
        """The hostile class name a call expression instantiates."""
        if not isinstance(value, ast.Call):
            return None
        leaf = _call_leaf(value)
        return leaf if leaf in hostile else None

    def _check_function(
        self,
        ctx: FileContext,
        func: ast.AST,
        hostile: FrozenSet[str],
    ) -> Iterator[Finding]:
        globals_declared: Set[str] = set()
        bound: Dict[str, str] = {}  # local name -> hostile class
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
            elif isinstance(node, ast.Assign):
                cls = self._hostile_call(node.value, hostile)
                if cls is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bound[target.id] = cls

        def refers_hostile(expr: ast.expr) -> Optional[str]:
            if isinstance(expr, ast.Name):
                return bound.get(expr.id)
            if isinstance(expr, ast.Attribute):
                return refers_hostile(expr.value)  # bound method / field
            return self._hostile_call(expr, hostile)

        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                cls = self._hostile_call(node.value, hostile)
                value_cls = cls if cls is not None else (
                    refers_hostile(node.value)
                    if isinstance(node.value, ast.Name)
                    else None
                )
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in globals_declared
                        and value_cls is not None
                    ):
                        yield self._finding(
                            ctx, node, value_cls,
                            f"stored in module global {target.id!r}",
                        )
                    elif isinstance(target, ast.Subscript) and (
                        value_cls is not None
                    ):
                        yield self._finding(
                            ctx, node, value_cls,
                            "stored into a shared container",
                        )
            elif isinstance(node, ast.Call):
                leaf = _call_leaf(node)
                if leaf not in _EXECUTOR_LEAVES:
                    continue
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    cls = refers_hostile(arg)
                    if cls is not None:
                        yield self._finding(
                            ctx, node, cls,
                            f"submitted to an executor via .{leaf}()",
                        )
                        break

    def _finding(
        self, ctx: FileContext, node: ast.AST, cls: str, how: str
    ) -> Finding:
        return self.finding(
            ctx,
            node,
            f"instance of thread-hostile class {cls!r} {how}; confine it "
            "to one thread (threading.local) or make the class safe to "
            "share",
        )


# ---------------------------------------------------------------------------
# RL012 — blocking while locked
# ---------------------------------------------------------------------------


class BlockingWhileLockedRule(Rule):
    """RL012: expensive work stays outside lock-held regions."""

    rule_id = "RL012"
    name = "blocking-while-locked"
    description = "expensive/blocking call inside a lock-held block"
    rationale = (
        "Holding a lock across a kernel compile, backend load, warmup, "
        "or file I/O serializes every other thread behind one slow "
        "caller — the stall PR 6 removed from ModelRegistry.get by "
        "double-checked locking. Do the expensive work outside, then "
        "re-take the lock to publish."
    )

    def check(self, module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for stmt in module.body:
            yield from self._walk(ctx, stmt, locked=False)

    def _walk(
        self, ctx: FileContext, node: ast.AST, locked: bool
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            takes_lock = any(
                _looks_like_lock(_lock_key(item.context_expr))
                for item in node.items
            )
            inner = locked or takes_lock
            for stmt in node.body:
                yield from self._walk(ctx, stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            if locked:
                return  # deferred execution: not run under this lock
            for child in ast.iter_child_nodes(node):
                yield from self._walk(ctx, child, locked=False)
            return
        if locked and isinstance(node, ast.Call):
            leaf = _call_leaf(node)
            if leaf is not None and self._is_blocking(leaf, node):
                yield self.finding(
                    ctx,
                    node,
                    f"call to {leaf!r} while a lock is held; move the "
                    "expensive work outside the lock and re-take it to "
                    "publish the result (double-checked locking)",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._walk(ctx, child, locked)

    @staticmethod
    def _is_blocking(leaf: str, node: ast.Call) -> bool:
        if leaf in _BLOCKING_LEAVES:
            return True
        if "compile" in leaf.lower():
            return True
        return leaf == "run" and _call_base_name(node) == "subprocess"


CONCURRENCY_RULES: Tuple[Rule, ...] = (
    UndeclaredMutableStateRule(),
    LockDisciplineRule(),
    ThreadHostileEscapeRule(),
    BlockingWhileLockedRule(),
)
