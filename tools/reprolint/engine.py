"""Rule engine: file discovery, suppression parsing, and finding collection.

The engine is deliberately small.  A :class:`~tools.reprolint.rules.Rule`
receives a parsed module plus a :class:`FileContext` and yields
:class:`Finding` objects; the engine filters those through per-line
suppression comments and per-rule path allowlists, then aggregates them
into a :class:`LintResult` for the CLI to render.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: Rule id reserved for files the engine itself cannot parse.
PARSE_ERROR_ID = "RL000"

#: Directory names never descended into during discovery.  ``fixtures``
#: is excluded because the self-test fixtures under ``tests/tools/``
#: contain deliberately-bad code that must not fail a repo-wide run.
DEFAULT_EXCLUDED_DIRS = frozenset(
    {
        ".git",
        ".hg",
        ".mypy_cache",
        ".ruff_cache",
        ".pytest_cache",
        ".tox",
        ".venv",
        "venv",
        "build",
        "dist",
        "node_modules",
        "__pycache__",
        "fixtures",
    }
)

#: Per-rule path allowlists (fnmatch patterns against the posix path).
#: A finding whose rule id maps to a matching pattern is dropped.  The
#: parity/regression suites intentionally assert exact float equality
#: against deterministic pipelines — bit-exactness there is the
#: reproducibility *contract*, not a hazard — so RL005 stays quiet for
#: test and benchmark code and bites only in production control flow.
DEFAULT_ALLOWLIST: Dict[str, Tuple[str, ...]] = {  # concurrency: immutable-after-init
    "RL005": (
        "tests/*",
        "*/tests/*",
        "benchmarks/*",
        "*/benchmarks/*",
    ),
    # Parity tests legitimately probe the C-kernel internals directly.
    "RL008": (
        "tests/*",
        "*/tests/*",
    ),
    # Test fixtures, benchmarks, and examples are single-threaded
    # harness code by construction; demanding concurrency annotations
    # on every helper dict there is noise, not safety.  Production
    # packages (src/, tools/, scripts/) get no such pass.
    "RL009": (
        "tests/*",
        "*/tests/*",
        "benchmarks/*",
        "*/benchmarks/*",
        "examples/*",
        "*/examples/*",
    ),
    # The race-stress harness deliberately shares hostile objects and
    # holds locks across slow calls to provoke the bugs these rules
    # exist to prevent in production code.
    "RL011": (
        "tests/*",
        "*/tests/*",
    ),
    "RL012": (
        "tests/*",
        "*/tests/*",
        "benchmarks/*",
        "*/benchmarks/*",
    ),
}

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable|disable-next)\s*=\s*"
    r"(?P<rules>all|[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"(?:\s*(?:--|—)\s*(?P<reason>.*\S))?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """A single lint finding, ordered for stable output."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule may consult about the file under analysis.

    ``project`` carries the cross-file symbol index
    (:class:`tools.reprolint.concurrency.ProjectIndex`) when the engine
    was invoked over a path set; it is ``None`` for single-source lints
    so per-file fixture tests stay self-contained.
    """

    path: str
    source: str
    lines: List[str] = field(default_factory=list)
    project: Optional[Any] = None

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


class Rule:
    """Base class: subclasses set the metadata and implement ``check``.

    Lives in the engine (rather than ``rules.py``) so that rule modules
    — ``rules.py`` for the reproduction invariants, ``concurrency.py``
    for the lock-discipline pass — can both subclass it without
    importing each other.
    """

    rule_id: str = "RL???"
    name: str = ""
    description: str = ""
    rationale: str = ""

    def check(self, module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


@dataclass
class LintResult:
    """Aggregated findings across one engine invocation."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.files_checked += other.files_checked
        self.suppressed += other.suppressed


@dataclass(frozen=True, order=True)
class SuppressionRecord:
    """One ``# reprolint: disable`` comment, for the audit trail."""

    path: str
    line: int
    rules: Tuple[str, ...]
    reason: str

    def render(self) -> str:
        reason = self.reason or "(no reason given)"
        return f"{self.path}:{self.line}: {', '.join(self.rules)} -- {reason}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rules": list(self.rules),
            "reason": self.reason,
        }


class Suppressions:
    """Per-line ``# reprolint: disable=...`` comment index.

    ``disable`` acts on the physical line carrying the comment;
    ``disable-next`` acts on the following physical line.  ``all``
    suppresses every rule.  Trailing prose after the rule list — a
    justification introduced with ``--`` — is captured as the
    suppression's *reason* and surfaced by ``--show-suppressions``.
    """

    def __init__(self, lines: Sequence[str], path: str = "<string>") -> None:
        self._by_line: Dict[int, Set[str]] = {}
        self.records: List[SuppressionRecord] = []
        for lineno, text in enumerate(lines, start=1):
            if "reprolint" not in text:
                continue
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = {r.strip() for r in match.group("rules").split(",")}
            target = lineno + 1 if match.group("kind") == "disable-next" else lineno
            self._by_line.setdefault(target, set()).update(rules)
            self.records.append(
                SuppressionRecord(
                    path=path,
                    line=lineno,
                    rules=tuple(sorted(rules)),
                    reason=(match.group("reason") or "").strip(),
                )
            )

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self._by_line.get(finding.line)
        if not rules:
            return False
        return "all" in rules or finding.rule_id in rules


def collect_suppressions(paths: Iterable[Path]) -> List[SuppressionRecord]:
    """Every suppression comment under ``paths`` (the audit trail)."""
    records: List[SuppressionRecord] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        records.extend(Suppressions(source.splitlines(), path=str(path)).records)
    records.sort()
    return records


def _is_allowlisted(
    rule_id: str, path: str, allowlist: Dict[str, Tuple[str, ...]]
) -> bool:
    pure = Path(path)
    if "fixtures" in pure.parts:
        # Fixture files are deliberately-bad seeded code; linting one
        # explicitly must report its findings even under tests/.
        return False
    posix = pure.as_posix()
    return any(
        fnmatch.fnmatch(posix, pattern) for pattern in allowlist.get(rule_id, ())
    )


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence["Rule"]] = None,
    allowlist: Optional[Dict[str, Tuple[str, ...]]] = None,
    project: Optional[Any] = None,
) -> LintResult:
    """Lint a source string; the core entry point everything else wraps."""
    from .rules import ALL_RULES  # local import to avoid a cycle

    active: Sequence["Rule"] = ALL_RULES if rules is None else rules
    allow = DEFAULT_ALLOWLIST if allowlist is None else allowlist
    result = LintResult(files_checked=1)
    try:
        module = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        col = (getattr(exc, "offset", 1) or 1) - 1
        detail = exc.msg if isinstance(exc, SyntaxError) else str(exc)
        result.findings.append(
            Finding(path, line, max(col, 0), PARSE_ERROR_ID, f"parse error: {detail}")
        )
        return result

    ctx = FileContext(path=path, source=source, project=project)
    suppressions = Suppressions(ctx.lines, path=path)
    for rule in active:
        for finding in rule.check(module, ctx):
            if _is_allowlisted(finding.rule_id, path, allow):
                continue
            if suppressions.is_suppressed(finding):
                result.suppressed += 1
                continue
            result.findings.append(finding)
    result.findings.sort()
    return result


def lint_file(
    path: Path,
    rules: Optional[Sequence["Rule"]] = None,
    allowlist: Optional[Dict[str, Tuple[str, ...]]] = None,
    project: Optional[Any] = None,
) -> LintResult:
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        result = LintResult(files_checked=1)
        result.findings.append(
            Finding(str(path), 1, 0, PARSE_ERROR_ID, f"unreadable file: {exc}")
        )
        return result
    return lint_source(
        source, path=str(path), rules=rules, allowlist=allowlist, project=project
    )


def iter_python_files(
    paths: Iterable[Path],
    excluded_dirs: FrozenSet[str] = DEFAULT_EXCLUDED_DIRS,
) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: Set[Path] = set()
    out: List[Path] = []

    def _want_dir(p: Path) -> bool:
        return p.name not in excluded_dirs and not p.name.endswith(".egg-info")

    def _add(p: Path) -> None:
        if p not in seen:
            seen.add(p)
            out.append(p)

    for path in paths:
        if path.is_file():
            _add(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.relative_to(path).parts
                if all(
                    _want_dir(Path(part)) for part in parts[:-1]
                ) and _want_dir(path):
                    _add(candidate)
    return out


def lint_paths(
    paths: Iterable[Path],
    rules: Optional[Sequence["Rule"]] = None,
    allowlist: Optional[Dict[str, Tuple[str, ...]]] = None,
) -> LintResult:
    from .concurrency import build_project_index  # local: avoids a cycle

    files = iter_python_files(paths)
    project = build_project_index(files)
    result = LintResult()
    for path in files:
        result.extend(
            lint_file(path, rules=rules, allowlist=allowlist, project=project)
        )
    result.findings.sort()
    return result
