"""The eight reproduction-invariant rules.

Each rule is a small :mod:`ast` visitor grounded in a hazard this repo
has actually hit (or deliberately guards against):

========  ====================================================================
RL001     falsy ``or``-defaulting of parameters (the ``window or 90`` bug
          class fixed by hand in PR 1: an explicit ``0``/empty value is
          silently replaced by the default)
RL002     unseeded randomness (legacy ``np.random.*`` global state, stdlib
          ``random``, seedless ``default_rng()``) — irreproducible pipelines
          are the field's main evaluation hazard
RL003     ambiguous ndarray truthiness (``if arr:`` raises for size>1 and
          silently means ``len``/value otherwise)
RL004     mutable default arguments (state leaks across calls)
RL005     exact float equality outside the parity-test allowlist (bit-exact
          checks belong in the parity suites; elsewhere they rot silently)
RL006     silently-swallowed exceptions (bare ``except`` / handlers that
          neither re-raise nor call anything)
RL007     imports of the split enrollment internals
          (``repro.core.models`` / ``negatives`` / ``enroll``) from
          outside ``repro.core`` — external code must go through the
          ``repro.core.enrollment`` façade or ``repro.core`` itself
RL008     direct use of the ``repro.features._ckernel`` build/compile
          internals outside ``repro/features/`` or a warmup path — the
          module compiles a shared library on first touch, so stray
          callers move that one-off cost into the authenticate hot path
========  ====================================================================

The concurrency rules RL009–RL012 (undeclared mutable state, lock
discipline, thread-hostile escape, blocking-while-locked) live in
:mod:`tools.reprolint.concurrency` and are appended to
:data:`ALL_RULES` below.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import FileContext, Finding, Rule

__all__ = ["ALL_RULES", "RULES_BY_ID", "Rule"]


def _function_params(node: ast.AST) -> Set[str]:
    """Parameter names of a function node (excluding self/cls)."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return set()
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return {n for n in names if n not in ("self", "cls")}


class FalsyDefaultRule(Rule):
    """RL001: ``param or <default>`` silently replaces 0/empty values.

    PR 1 fixed exactly this in ``PreprocessedTrial.segment`` — a caller
    passing ``window=0`` never reached validation because ``window or 90``
    rewrote it to the default.  The rule fires when the first operand of
    an ``or`` is a parameter of the enclosing function and the second is
    a literal or a call (i.e. a default being materialised), regardless
    of where the expression appears.
    """

    rule_id = "RL001"
    name = "falsy-default"
    description = "`param or <default>` replaces legitimate falsy values"
    rationale = (
        "0, 0.0, '' and empty containers are valid inputs; `x or d` maps "
        "them all to the default. Use `if x is None`."
    )

    def check(self, module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        # Walk function scopes so we know which names are parameters.
        scopes: List[Tuple[ast.AST, Set[str]]] = [(module, set())]
        for func in ast.walk(module):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                scopes.append((func, _function_params(func)))
        for scope, params in scopes:
            if not params:
                continue
            for node in self._boolops_in_scope(scope):
                first = node.values[0]
                if not (isinstance(first, ast.Name) and first.id in params):
                    continue
                default = node.values[1]
                if isinstance(default, (ast.Constant, ast.Call)) and not (
                    isinstance(default, ast.Constant) and default.value is None
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"parameter {first.id!r} defaulted with 'or'; an "
                        f"explicit 0/empty value would be silently replaced "
                        f"— use 'if {first.id} is None' instead",
                    )

    @staticmethod
    def _boolops_in_scope(scope: ast.AST) -> Iterator[ast.BoolOp]:
        """Or-expressions directly inside ``scope`` (not nested functions)."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # handled by its own scope entry
            if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
                yield node
            stack.extend(ast.iter_child_nodes(node))


#: Legacy module-level numpy.random functions that mutate hidden global
#: state.  Anything in this set reached as ``numpy.random.<fn>`` fires.
_NP_LEGACY_FUNCS = frozenset(
    {
        "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
        "exponential", "f", "gamma", "geometric", "get_state", "gumbel",
        "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
        "multinomial", "multivariate_normal", "negative_binomial",
        "noncentral_chisquare", "noncentral_f", "normal", "pareto",
        "permutation", "poisson", "power", "rand", "randint", "randn",
        "random", "random_integers", "random_sample", "ranf", "rayleigh",
        "sample", "seed", "set_state", "shuffle", "standard_cauchy",
        "standard_exponential", "standard_gamma", "standard_normal",
        "standard_t", "triangular", "uniform", "vonmises", "wald",
        "weibull", "zipf",
    }
)

#: numpy.random constructors that are deterministic only when seeded.
_NP_SEEDABLE_CTORS = frozenset(
    {"default_rng", "RandomState", "SeedSequence", "PCG64", "Philox",
     "MT19937", "SFC64"}
)

#: stdlib random constructors; ``Random()`` without a seed and
#: ``SystemRandom`` (never seedable) both fire.
_STDLIB_RANDOM_FUNCS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)


class _ImportTracker(ast.NodeVisitor):
    """Resolve local aliases to the modules/names they denote."""

    def __init__(self) -> None:
        #: alias -> dotted module path ("numpy", "numpy.random", "random")
        self.modules: Dict[str, str] = {}
        #: alias -> fully qualified imported name ("numpy.random.default_rng")
        self.names: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.modules[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports cannot be numpy/random
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            qualified = f"{node.module}.{alias.name}"
            self.names[local] = qualified
            # a submodule import (`from numpy import random`) also acts
            # as a module alias
            self.modules.setdefault(local, qualified)


def _resolve_call_target(
    node: ast.Call, imports: _ImportTracker
) -> Optional[str]:
    """Fully-qualified dotted name of a call target, if resolvable."""
    func = node.func
    parts: List[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        base = func.id
        if not parts:
            return imports.names.get(base, None)
        if base in imports.modules:
            return ".".join([imports.modules[base]] + list(reversed(parts)))
    return None


def _call_has_arguments(node: ast.Call) -> bool:
    return bool(node.args) or bool(node.keywords)


class UnseededRandomRule(Rule):
    """RL002: randomness that does not flow from an explicit seed."""

    rule_id = "RL002"
    name = "unseeded-random"
    description = "unseeded / global-state randomness"
    rationale = (
        "Every stochastic path must derive from an explicit seed or a "
        "passed-in Generator, or parallel rows stop matching serial rows."
    )

    def check(self, module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        imports = _ImportTracker()
        imports.visit(module)
        for node in ast.walk(module):
            if not isinstance(node, ast.Call):
                continue
            target = _resolve_call_target(node, imports)
            if target is None:
                continue
            yield from self._check_target(ctx, node, target)

    def _check_target(
        self, ctx: FileContext, node: ast.Call, target: str
    ) -> Iterator[Finding]:
        if target.startswith("numpy.random."):
            leaf = target.rsplit(".", 1)[1]
            if leaf in _NP_LEGACY_FUNCS:
                yield self.finding(
                    ctx,
                    node,
                    f"numpy.random.{leaf} uses hidden global state; "
                    f"use a seeded np.random.default_rng(...) Generator",
                )
            elif leaf in _NP_SEEDABLE_CTORS and not _call_has_arguments(node):
                yield self.finding(
                    ctx,
                    node,
                    f"{leaf}() without a seed draws OS entropy and is "
                    f"irreproducible; pass an explicit seed",
                )
        elif target.startswith("random."):
            leaf = target.rsplit(".", 1)[1]
            if leaf in _STDLIB_RANDOM_FUNCS:
                yield self.finding(
                    ctx,
                    node,
                    f"stdlib random.{leaf} uses hidden global state; "
                    f"use a seeded np.random.default_rng(...) Generator",
                )
            elif leaf == "Random" and not _call_has_arguments(node):
                yield self.finding(
                    ctx, node, "random.Random() without a seed is irreproducible"
                )
            elif leaf == "SystemRandom":
                yield self.finding(
                    ctx,
                    node,
                    "random.SystemRandom draws OS entropy and can never be "
                    "seeded; experiments cannot be replayed",
                )


#: numpy callables whose result is (almost always) an ndarray; names
#: assigned from these are treated as array-typed by RL003.
_NP_ARRAY_PRODUCERS = frozenset(
    {
        "abs", "arange", "array", "asarray", "ascontiguousarray", "atleast_1d",
        "atleast_2d", "atleast_3d", "concatenate", "convolve", "copy", "cumsum",
        "diff", "empty", "empty_like", "full", "full_like", "hstack", "linspace",
        "ones", "ones_like", "sort", "stack", "vstack", "where", "zeros",
        "zeros_like",
    }
)

_ARRAY_ANNOTATION_MARKERS = ("ndarray", "NDArray", "ArrayLike")


class ArrayTruthinessRule(Rule):
    """RL003: bare truthiness tests on names that look array-typed."""

    rule_id = "RL003"
    name = "ndarray-truthiness"
    description = "ambiguous truthiness of an ndarray-typed name"
    rationale = (
        "`if arr:` raises for size>1 arrays and silently changes meaning "
        "for size 0/1; use arr.size / arr is None / explicit comparisons."
    )

    def check(self, module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for scope in ast.walk(module):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, scope)

    def _check_scope(
        self, ctx: FileContext, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        array_names = self._array_names(func)
        if not array_names:
            return
        for node in ast.walk(func):
            test: Optional[ast.expr] = None
            if isinstance(node, (ast.If, ast.While)):
                test = node.test
            elif isinstance(node, ast.Assert):
                test = node.test
            elif isinstance(node, ast.IfExp):
                test = node.test
            if test is None:
                continue
            for name in self._bare_names_in_test(test):
                if name.id in array_names:
                    yield self.finding(
                        ctx,
                        name,
                        f"truth value of array {name.id!r} is ambiguous; "
                        f"test {name.id}.size (or '{name.id} is not None') "
                        f"explicitly",
                    )

    @staticmethod
    def _bare_names_in_test(test: ast.expr) -> Iterator[ast.Name]:
        """Names whose own truthiness decides the test."""
        if isinstance(test, ast.Name):
            yield test
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            yield from ArrayTruthinessRule._bare_names_in_test(test.operand)
        elif isinstance(test, ast.BoolOp):
            for value in test.values:
                yield from ArrayTruthinessRule._bare_names_in_test(value)

    @staticmethod
    def _array_names(func: ast.FunctionDef) -> Set[str]:
        names: Set[str] = set()
        args = func.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is not None and _mentions_array(arg.annotation):
                names.add(arg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _mentions_array(node.annotation):
                    names.add(node.target.id)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                func_node = node.value.func
                if (
                    isinstance(func_node, ast.Attribute)
                    and isinstance(func_node.value, ast.Name)
                    and func_node.value.id in ("np", "numpy")
                    and func_node.attr in _NP_ARRAY_PRODUCERS
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names


def _mentions_array(annotation: ast.expr) -> bool:
    try:
        text = ast.unparse(annotation)
    except ValueError:  # pragma: no cover - unparse is total on valid ASTs
        return False
    # Optional[np.ndarray] params legitimately use `is None` checks; a
    # bare-name truthiness test on them is still ambiguous, so Optional
    # does not exempt the name.
    return any(marker in text for marker in _ARRAY_ANNOTATION_MARKERS)


class MutableDefaultRule(Rule):
    """RL004: mutable default arguments persist across calls."""

    rule_id = "RL004"
    name = "mutable-default"
    description = "mutable default argument"
    rationale = (
        "A list/dict/set default is created once at def-time; state then "
        "leaks between calls and between experiments."
    )

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})

    def check(self, module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(module):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in {node.name}(); "
                        f"use None and materialise inside the function",
                    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._MUTABLE_CALLS
        return False


class FloatEqualityRule(Rule):
    """RL005: exact float equality outside the parity allowlist."""

    rule_id = "RL005"
    name = "float-equality"
    description = "exact ==/!= against a float literal"
    rationale = (
        "Bit-exact comparisons are the parity suites' job; elsewhere an "
        "innocent refactor (e.g. re-associating a sum) breaks them "
        "silently. Use math.isclose/np.isclose, or suppress with a "
        "justification when the value is an exact sentinel."
    )

    def check(self, module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(module):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, (lhs, rhs) in zip(node.ops, zip(operands, operands[1:])):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_float_literal(lhs) or self._is_float_literal(rhs):
                    yield self.finding(
                        ctx,
                        node,
                        "exact float equality; use a tolerance "
                        "(math.isclose / np.isclose) or justify via "
                        "'# reprolint: disable=RL005 -- <why exact>'",
                    )
                    break

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return FloatEqualityRule._is_float_literal(node.operand)
        return False


class SilentExceptRule(Rule):
    """RL006: exceptions swallowed without re-raise, log, or narrow type."""

    rule_id = "RL006"
    name = "silent-except"
    description = "bare/broad except that silently swallows"
    rationale = (
        "A broad handler that neither re-raises nor reports turned the "
        "C-kernel fallback into a silent 17x slowdown risk; every such "
        "site needs a narrow type or an explicit justification."
    )

    _BROAD = ("Exception", "BaseException")

    def check(self, module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(module):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare 'except:' also catches SystemExit/KeyboardInterrupt;"
                    " name the exceptions this site can actually handle",
                )
                continue
            if self._is_broad(node.type) and self._swallows(node.body):
                yield self.finding(
                    ctx,
                    node,
                    "broad except swallows the error without re-raising or "
                    "reporting; narrow the type, or suppress with a "
                    "justification if the fallback is intended",
                )

    def _is_broad(self, type_node: ast.expr) -> bool:
        if isinstance(type_node, ast.Name):
            return type_node.id in self._BROAD
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(elt) for elt in type_node.elts)
        return False

    @staticmethod
    def _swallows(body: Sequence[ast.stmt]) -> bool:
        """True when the handler neither raises nor calls anything."""
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Raise, ast.Call)):
                    return False
        return True


class EnrollmentInternalsRule(Rule):
    """RL007: enrollment split internals imported from outside repro.core."""

    rule_id = "RL007"
    name = "enrollment-internals-import"
    description = "import of repro.core.{models,negatives,enroll} internals"
    rationale = (
        "The enrollment monolith was split into models/negatives/enroll "
        "behind the repro.core.enrollment façade; importing the "
        "submodules directly from outside repro.core couples callers to "
        "the split and defeats the façade's compatibility guarantee."
    )

    _INTERNAL = ("models", "negatives", "enroll")

    def check(self, module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        if "repro/core/" in ctx.path.replace("\\", "/"):
            return
        for node in ast.walk(module):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    sub = self._internal_of(alias.name, absolute=True)
                    if sub is not None:
                        yield self._finding(ctx, node, sub)
            elif isinstance(node, ast.ImportFrom):
                module_name = node.module or ""
                sub = self._internal_of(
                    module_name, absolute=node.level == 0
                )
                if sub is not None:
                    yield self._finding(ctx, node, sub)
                    continue
                if self._is_core_package(module_name, node.level):
                    for alias in node.names:
                        if alias.name in self._INTERNAL:
                            yield self._finding(ctx, node, alias.name)

    def _internal_of(self, module_name: str, absolute: bool) -> Optional[str]:
        """The internal submodule a dotted module path points into."""
        parts = module_name.split(".") if module_name else []
        prefixes = [("repro", "core")] if absolute else [("repro", "core"), ("core",)]
        for prefix in prefixes:
            n = len(prefix)
            if (
                len(parts) > n
                and tuple(parts[:n]) == prefix
                and parts[n] in self._INTERNAL
            ):
                return parts[n]
        return None

    @staticmethod
    def _is_core_package(module_name: str, level: int) -> bool:
        if level == 0:
            return module_name == "repro.core"
        return module_name in ("repro.core", "core")

    def _finding(self, ctx: FileContext, node: ast.AST, sub: str) -> Finding:
        return self.finding(
            ctx,
            node,
            f"'repro.core.{sub}' is an internal of the enrollment split; "
            "import through 'repro.core.enrollment' (or 'repro.core') "
            "instead",
        )


class CKernelInternalsRule(Rule):
    """RL008: C-kernel build internals reached from outside features/."""

    rule_id = "RL008"
    name = "ckernel-internals"
    description = "direct use of repro.features._ckernel build internals"
    rationale = (
        "repro.features._ckernel compiles and dlopens a shared library on "
        "first touch. Reaching it from outside repro/features/ (or a "
        "warmup path) moves that one-off build cost into the "
        "authenticate hot path and bypasses the MiniRocket engine "
        "fallback; go through repro.features (MiniRocket, warm_engine, "
        "c_kernel_available) instead."
    )

    def check(self, module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        if "repro/features/" in ctx.path.replace("\\", "/"):
            return
        warm_nodes = self._nodes_in_warm_functions(module)
        for node in ast.walk(module):
            if id(node) in warm_nodes:
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._names_ckernel(alias.name):
                        yield self._finding(ctx, node)
            elif isinstance(node, ast.ImportFrom):
                module_name = node.module or ""
                if self._names_ckernel(module_name):
                    yield self._finding(ctx, node)
                elif module_name.rpartition(".")[2] == "features" and any(
                    alias.name == "_ckernel" for alias in node.names
                ):
                    yield self._finding(ctx, node)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and self._is_ckernel_ref(func.value)
                ):
                    yield self._finding(ctx, node)

    @staticmethod
    def _names_ckernel(module_name: str) -> bool:
        return "_ckernel" in module_name.split(".")

    @staticmethod
    def _is_ckernel_ref(node: ast.expr) -> bool:
        """True for ``_ckernel`` / ``anything._ckernel`` expressions."""
        if isinstance(node, ast.Name):
            return node.id == "_ckernel"
        if isinstance(node, ast.Attribute):
            return node.attr == "_ckernel"
        return False

    @staticmethod
    def _nodes_in_warm_functions(module: ast.Module) -> Set[int]:
        """ids of every node inside a function whose name says 'warm'.

        Warmup helpers are exactly where eagerly touching the build
        internals is the point, so they are exempt wherever they live.
        """
        exempt: Set[int] = set()
        for func in ast.walk(module):
            if (
                isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
                and "warm" in func.name.lower()
            ):
                for child in ast.walk(func):
                    exempt.add(id(child))
        return exempt

    def _finding(self, ctx: FileContext, node: ast.AST) -> Finding:
        return self.finding(
            ctx,
            node,
            "'repro.features._ckernel' is a build/compile internal; use "
            "the repro.features API (MiniRocket, warm_engine, "
            "c_kernel_available) or confine the call to a warmup helper",
        )


# Imported at the bottom so the concurrency module can subclass
# engine.Rule without a rules<->concurrency cycle.
from .concurrency import CONCURRENCY_RULES  # noqa: E402

ALL_RULES: Tuple[Rule, ...] = (
    FalsyDefaultRule(),
    UnseededRandomRule(),
    ArrayTruthinessRule(),
    MutableDefaultRule(),
    FloatEqualityRule(),
    SilentExceptRule(),
    EnrollmentInternalsRule(),
    CKernelInternalsRule(),
) + CONCURRENCY_RULES

RULES_BY_ID: Dict[str, Rule] = {  # concurrency: immutable-after-init
    rule.rule_id: rule for rule in ALL_RULES
}
