"""reprolint — repo-specific static analysis for reproduction invariants.

This repo's headline claim is *bit-exact* reproducibility: the tiered
MiniRocket engines assert ``rtol=0/atol=0`` parity and the experiment
fan-out promises "parallel rows == serial rows".  ``reprolint`` encodes
the bug classes that have silently broken (or could silently break)
those guarantees as AST lint rules, so they are caught at review time
instead of at benchmark time.

The linter is intentionally dependency-free: it uses only the standard
library (``ast``, ``argparse``, ``json``), so it runs anywhere the test
suite runs and never drifts out of sync with a third-party tool's rule
numbering.

Usage::

    python -m tools.reprolint src tests scripts
    python -m tools.reprolint --format json src
    python -m tools.reprolint --list-rules

Findings can be suppressed per line with a justification comment::

    risky_call()  # reprolint: disable=RL006 -- fallback is benign here

or for the following line::

    # reprolint: disable-next=RL005 -- exact sentinel, not a tolerance
    scale[scale == 0.0] = 1.0
"""

from .engine import Finding, LintResult, lint_file, lint_paths, lint_source
from .rules import ALL_RULES, Rule

__version__ = "1.0.0"

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintResult",
    "Rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "__version__",
]
