"""Shared third-party negatives: preprocess and featurize the store once.

Enrolling many users against the same third-party store repeats none of
the store-side preprocessing or feature extraction when the negatives
are packaged as a :class:`NegativeBank` — the extractors are fitted on
the negatives alone (``SHAREABLE_FEATURE_METHODS``), so the bank is
independent of any particular enrolling user.

Import from :mod:`repro.core.enrollment` (the façade) or
:mod:`repro.core` — the split submodules are an implementation detail
(enforced by reprolint rule RL007).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..config import PipelineConfig
from ..errors import EnrollmentError
from ..features import MiniRocket
from ..types import PinEntryTrial
from .models import (
    EnrollmentOptions,
    _collect_segments,
    extract_full_waveform,
    extract_fused_waveform,
)
from .pipeline import PreprocessedTrial, preprocess_trials

#: Minimum same-key third-party segments before a per-key model uses
#: them instead of falling back to the whole store.
MIN_SAME_KEY_NEGATIVES = 10


@dataclass(frozen=True)
class SharedNegativeSet:
    """Featurized third-party negatives for one model slot.

    Attributes:
        feature_method: the method the features were produced with.
        extractor: the MiniRocket fitted on the negatives ("rocket"
            method; ``None`` for "raw").
        features: the featurized negatives — ``(n_neg, n_features)``
            for "rocket", the raw ``(n_neg, channels, window)`` stack
            for "raw".
    """

    feature_method: str
    extractor: Optional[MiniRocket]
    features: np.ndarray


@dataclass(frozen=True)
class NegativeBank:
    """Third-party negatives preprocessed and featurized once.

    Built by :func:`build_negative_bank` from a third-party store and
    passed to :func:`~repro.core.enroll.enroll_models` (via
    ``shared_negatives=``) so that enrolling many users against the
    same store repeats none of the store-side preprocessing or feature
    extraction. The extractors are fitted on the negatives alone, so
    the bank is independent of any particular enrolling user.

    Attributes:
        full: negatives for the full-waveform model.
        fused: negatives for the privacy-boost fused model (``None``
            when the bank was built without privacy boost or no store
            trial had a detected keystroke).
        key_sets: per-key negatives, only for keys with at least
            ``MIN_SAME_KEY_NEGATIVES`` same-key segments in the store.
        key_fallback: all store segments pooled — used for keys not in
            ``key_sets`` (mirrors the unshared fallback rule).
        config: pipeline configuration the store was preprocessed with.
        options: enrollment options the bank was featurized under.
    """

    full: SharedNegativeSet
    fused: Optional[SharedNegativeSet]
    key_sets: Dict[str, SharedNegativeSet]
    key_fallback: Optional[SharedNegativeSet]
    config: PipelineConfig
    options: EnrollmentOptions


def _fit_shared_set(
    stack: np.ndarray, options: EnrollmentOptions
) -> SharedNegativeSet:
    """Fit an extractor on a negative stack and featurize it."""
    if options.feature_method == "rocket":
        rocket = MiniRocket(
            num_features=options.num_features, seed=options.seed
        )
        rocket.fit(stack)
        return SharedNegativeSet(
            feature_method="rocket",
            extractor=rocket,
            features=rocket.transform(stack),
        )
    if options.feature_method == "raw":
        return SharedNegativeSet(
            feature_method="raw", extractor=None, features=stack
        )
    raise EnrollmentError(
        f"feature method {options.feature_method!r} cannot share negatives: "
        f"its extractor is fitted on the positive class"
    )


def build_negative_bank(
    third_party_trials: Sequence[PinEntryTrial],
    config: Optional[PipelineConfig] = None,
    options: Optional[EnrollmentOptions] = None,
    preprocessed: Optional[Sequence[PreprocessedTrial]] = None,
) -> NegativeBank:
    """Preprocess and featurize a third-party store once.

    Args:
        third_party_trials: the store's trials.
        config: pipeline constants.
        options: enrollment options; ``feature_method`` must be one of
            ``SHAREABLE_FEATURE_METHODS``.
        preprocessed: already-preprocessed store trials (e.g. from the
            evaluation feature cache); skips the preprocessing pass.

    Returns:
        The reusable negative bank.
    """
    if config is None:
        config = PipelineConfig()
    if options is None:
        options = EnrollmentOptions()
    if preprocessed is None:
        if not third_party_trials:
            raise EnrollmentError("no third-party trials supplied")
        preprocessed = preprocess_trials(list(third_party_trials), config)
    elif not preprocessed:
        raise EnrollmentError("no preprocessed third-party trials supplied")

    full_neg = [
        extract_full_waveform(p, options.full_window, options.full_margin)
        for p in preprocessed
    ]
    full = _fit_shared_set(np.stack(full_neg), options)

    fused: Optional[SharedNegativeSet] = None
    if options.privacy_boost:
        fused_neg = [
            extract_fused_waveform(p, config)
            for p in preprocessed
            if p.detected_count > 0
        ]
        if fused_neg:
            fused = _fit_shared_set(np.stack(fused_neg), options)

    by_key = _collect_segments(preprocessed, config)
    all_segments = [s for segs in by_key.values() for s in segs]
    key_sets = {
        key: _fit_shared_set(np.stack(segs), options)
        for key, segs in by_key.items()
        if len(segs) >= MIN_SAME_KEY_NEGATIVES
    }
    key_fallback = (
        _fit_shared_set(np.stack(all_segments), options)
        if all_segments
        else None
    )

    return NegativeBank(
        full=full,
        fused=fused,
        key_sets=key_sets,
        key_fallback=key_fallback,
        config=config,
        options=options,
    )


def _check_bank(
    bank: NegativeBank, config: PipelineConfig, options: EnrollmentOptions
) -> None:
    """Reject a bank built under incompatible settings."""
    if bank.config != config:
        raise EnrollmentError(
            "shared negative bank was built with a different pipeline config"
        )
    relevant = (
        "feature_method",
        "num_features",
        "seed",
        "full_window",
        "full_margin",
    )
    for name in relevant:
        if getattr(bank.options, name) != getattr(options, name):
            raise EnrollmentError(
                f"shared negative bank was built with {name}="
                f"{getattr(bank.options, name)!r} but enrollment uses "
                f"{getattr(options, name)!r}"
            )
