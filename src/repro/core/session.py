"""Session management: the paper's deployment story as a state machine.

Section VI sketches how P2Auth is used in practice: the user
authenticates at the moment of putting the watch on; afterwards,
continued wear is tracked from the heart-rate status; removing the
watch invalidates the session, and sensitive actions (payments)
require a fresh authentication regardless.

:class:`SessionManager` encodes that lifecycle::

    OFF_WRIST ──wear detected──► WORN ──entry accepted──► AUTHENTICATED
        ▲                         │  ▲                        │
        └───────wear lost─────────┘  └──reauth required───────┘
        ▲                                                     │
        └──────────────────wear lost──────────────────────────┘

On top of the lifecycle sits a bounded re-prompt ladder
(:class:`RetryPolicy`): consecutive failed entries back off
exponentially, and too many failures lock the session until an
explicit :meth:`SessionManager.unlock` (the deployment's fallback
authentication path). Degradation-ladder rungs taken by the
authenticator (gap repair, channel fallback, quality gate — see
:mod:`repro.core.degradation`) are copied into the session audit log as
structured :class:`SessionEvent` entries.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import (
    AuthenticationError,
    BackoffError,
    ConfigurationError,
    LockoutError,
    QualityError,
)
from ..types import PinEntryTrial, PPGRecording
from .authentication import AuthDecision
from .authenticator import P2Auth
from .wear import WearStatus, detect_wear


class SessionState(enum.Enum):
    """Lifecycle states of a wearable authentication session."""

    OFF_WRIST = "off_wrist"
    WORN = "worn"
    AUTHENTICATED = "authenticated"
    LOCKED = "locked"


@dataclass(frozen=True)
class SessionEvent:
    """One entry in the session audit log.

    Attributes:
        kind: "wear_check", "entry", "reauth_required", "degradation",
            "backoff", "lockout", or "unlock".
        state: the state *after* the event.
        detail: human-readable description.
    """

    kind: str
    state: SessionState
    detail: str


@dataclass(frozen=True)
class LockoutStatus:
    """Queryable snapshot of the retry ladder (no event-log parsing).

    Attributes:
        locked: whether the ladder has locked the session.
        failures: consecutive failed entries since the last success or
            unlock.
        max_failures: the policy's lockout threshold, or ``None`` when
            no retry policy is configured (unlimited retries).
        not_before: earliest time (session clock) the next entry may be
            submitted; ``0.0`` when no backoff is pending.
        retry_after_s: seconds until the next entry is admissible, as
            of the query's ``now``: ``0.0`` when an entry may be
            submitted immediately, finite during a backoff window, and
            ``math.inf`` while locked (a lockout only clears through
            :meth:`SessionManager.unlock`). This is the number a
            transport puts in a 429 ``Retry-After`` header.
    """

    locked: bool
    failures: int
    max_failures: Optional[int]
    not_before: float
    retry_after_s: float


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded re-prompt ladder for failed PIN entries.

    Attributes:
        max_failures: consecutive failed entries (rejections or quality
            rejections) before the session locks.
        backoff_base_s: delay imposed after the first failure, seconds.
        backoff_factor: multiplier applied per additional failure.
        max_backoff_s: backoff ceiling, seconds.
    """

    max_failures: int = 5
    backoff_base_s: float = 1.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 60.0

    def __post_init__(self) -> None:
        if self.max_failures < 1:
            raise ConfigurationError("max_failures must be >= 1")
        if self.backoff_base_s < 0 or self.max_backoff_s < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")

    def backoff(self, failures: int) -> float:
        """Delay before the next attempt after ``failures`` consecutive
        failures (exponential, capped)."""
        if failures <= 0:
            return 0.0
        delay = self.backoff_base_s * self.backoff_factor ** (failures - 1)
        return float(min(self.max_backoff_s, delay))


class SessionManager:  # concurrency: thread-hostile
    """Drives an enrolled authenticator through the session lifecycle.

    A manager models one user's session state machine and is not
    thread-safe; drive it from a single thread (the wrapped ``P2Auth``
    may still be shared elsewhere).

    Args:
        auth: an enrolled :class:`P2Auth`.
        wear_threshold: confidence threshold forwarded to
            :func:`~repro.core.wear.detect_wear`.
        retry: bounded re-prompt ladder; ``None`` (the default)
            preserves the unlimited-retry behaviour.

    The manager is deliberately conservative: any loss of wear —
    however brief — drops the session to ``OFF_WRIST``, and PIN entries
    are only evaluated while the watch is worn (an off-wrist trial is
    by definition not the wearer's biometric). With a retry policy, a
    locked session stays locked through wear changes until
    :meth:`unlock` — re-wearing the watch must not reset the ladder.

    Entry timing for the backoff ladder comes from the ``now`` argument
    of :meth:`submit_entry` (wall-clock seconds); when omitted, an
    internal logical clock advancing one second per submission stands
    in, keeping tests and simulations deterministic.
    """

    def __init__(
        self,
        auth: P2Auth,
        wear_threshold: float = 0.25,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if not auth.enrolled:
            raise AuthenticationError("enroll a user before starting a session")
        self._auth = auth
        self._wear_threshold = wear_threshold
        self._retry = retry
        self._state = SessionState.OFF_WRIST
        self._log: List[SessionEvent] = []
        self._failures = 0
        self._not_before = 0.0
        self._clock = 0.0
        self._last_now = 0.0

    @property
    def state(self) -> SessionState:
        """Current session state."""
        return self._state

    @property
    def authenticated(self) -> bool:
        """Whether the session is currently authenticated."""
        return self._state is SessionState.AUTHENTICATED

    @property
    def locked(self) -> bool:
        """Whether the retry ladder has locked the session."""
        return self._state is SessionState.LOCKED

    @property
    def consecutive_failures(self) -> int:
        """Failed entries since the last success (or unlock)."""
        return self._failures

    @property
    def retry_not_before(self) -> float:
        """Earliest time the next entry may be submitted (backoff)."""
        return self._not_before

    @property
    def log(self) -> Tuple[SessionEvent, ...]:
        """The session audit trail, oldest first."""
        return tuple(self._log)

    def lockout_status(self, now: Optional[float] = None) -> LockoutStatus:
        """The retry ladder's state as a queryable snapshot.

        A pure query: neither the session clock nor the ladder moves.
        ``now`` defaults to the last time observed by
        :meth:`submit_entry` (the session's monotone watermark), so a
        caller that always supplies wall-clock times gets wall-clock
        ``retry_after_s`` values; like the submission path, a ``now``
        behind the watermark is clamped up to it.

        This is the API transports use to populate a 429
        ``Retry-After`` header — it replaces parsing "backoff" /
        "lockout" events out of :attr:`log`.
        """
        if now is None:
            effective = self._last_now
        elif not math.isfinite(now):
            raise ConfigurationError(f"query time must be finite, got {now!r}")
        else:
            effective = max(float(now), self._last_now)
        if self._state is SessionState.LOCKED:
            retry_after = math.inf
        elif self._retry is None:
            retry_after = 0.0
        else:
            retry_after = max(0.0, self._not_before - effective)
        return LockoutStatus(
            locked=self._state is SessionState.LOCKED,
            failures=self._failures,
            max_failures=(
                None if self._retry is None else self._retry.max_failures
            ),
            not_before=self._not_before,
            retry_after_s=retry_after,
        )

    def restore_lockout(self, status: LockoutStatus) -> None:
        """Re-arm the retry ladder from a :class:`LockoutStatus` snapshot.

        The inverse of :meth:`lockout_status`, for hosts that bound how
        many live sessions they keep (the service layer's session-slot
        LRU): evicting a session must not forget its ladder, or an
        attacker could reset a lockout by cycling enough other users
        through the host. Restoring a locked snapshot locks this
        session; restoring counters re-arms backoff at the recorded
        ``not_before``. Wear state is deliberately untouched — only the
        ladder survives eviction.
        """
        if status.failures < 0:
            raise ConfigurationError(
                f"failures must be >= 0, got {status.failures}"
            )
        if not math.isfinite(status.not_before) or status.not_before < 0:
            raise ConfigurationError(
                f"not_before must be finite and >= 0, got {status.not_before!r}"
            )
        # The watermark is NOT advanced to ``not_before``: the snapshot
        # puts that instant in the future, and clamping queries up to it
        # would make the restored backoff window appear already elapsed.
        self._failures = status.failures
        self._not_before = status.not_before
        if status.locked:
            self._state = SessionState.LOCKED
            self._record(
                "lockout", "restored locked ladder from snapshot"
            )
        elif status.failures or status.not_before:
            self._record(
                "backoff",
                f"restored ladder snapshot ({status.failures} failures, "
                f"not before {status.not_before:.1f})",
            )

    def assume_worn(self, detail: str = "transport-attested wear") -> None:
        """Trusted ``OFF_WRIST -> WORN`` transition without a recording.

        For transports whose wear detection runs device-side (the HTTP
        service trusts the watch's own on-wrist attestation rather than
        shipping quiescent PPG stretches per request). A ``LOCKED``
        session stays locked — attestation must not bypass the retry
        ladder — and any other state is left unchanged.
        """
        if self._state is SessionState.OFF_WRIST:
            self._state = SessionState.WORN
            self._record("wear_check", f"assumed worn: {detail}")
        else:
            self._record(
                "wear_check", f"assume_worn no-op in {self._state.value}"
            )

    def _record(self, kind: str, detail: str) -> None:
        self._log.append(SessionEvent(kind=kind, state=self._state, detail=detail))

    def process_wear_check(self, recording: PPGRecording) -> WearStatus:
        """Feed a periodic quiescent PPG stretch through wear detection.

        Transitions: gaining wear moves ``OFF_WRIST -> WORN``; losing
        wear drops any state to ``OFF_WRIST`` (ending an authenticated
        session, as the paper's removal rule requires). A ``LOCKED``
        session records the check but never transitions — re-wearing
        the watch must not bypass the retry ladder.
        """
        status = detect_wear(
            recording, self._auth.config, threshold=self._wear_threshold
        )
        if self._state is SessionState.LOCKED:
            self._record(
                "wear_check",
                f"ignored while locked (worn={status.worn})",
            )
        elif status.worn and self._state is SessionState.OFF_WRIST:
            self._state = SessionState.WORN
            self._record(
                "wear_check",
                f"wear detected (hr ~{status.heart_rate_bpm:.0f} bpm)",
            )
        elif not status.worn and self._state is not SessionState.OFF_WRIST:
            was_authenticated = self._state is SessionState.AUTHENTICATED
            self._state = SessionState.OFF_WRIST
            self._record(
                "wear_check",
                "wear lost"
                + ("; authenticated session ended" if was_authenticated else ""),
            )
        else:
            self._record(
                "wear_check",
                f"no change (worn={status.worn}, "
                f"confidence {status.confidence:.2f})",
            )
        return status

    def _register_failure(self, now: float) -> None:
        """Advance the retry ladder after a failed entry."""
        self._failures += 1
        if self._retry is None:
            return
        if self._failures >= self._retry.max_failures:
            self._state = SessionState.LOCKED
            self._record(
                "lockout",
                f"{self._failures} consecutive failures; session locked "
                "until explicit unlock",
            )
            return
        delay = self._retry.backoff(self._failures)
        if delay > 0:
            self._not_before = now + delay
            self._record(
                "backoff",
                f"failure {self._failures}/{self._retry.max_failures}; "
                f"next entry no earlier than +{delay:.1f}s",
            )

    def submit_entry(
        self,
        trial: PinEntryTrial,
        claimed_pin: Optional[str] = None,
        now: Optional[float] = None,
    ) -> AuthDecision:
        """Evaluate a PIN entry within the session.

        Args:
            trial: the PIN-entry trial.
            claimed_pin: the PIN the typist entered; defaults to the
                digits recorded in the trial.
            now: wall-clock time of the attempt, seconds, for the
                backoff ladder; defaults to an internal logical clock
                advancing 1 s per submission. Over a long session the
                clock is kept monotone: a ``now`` earlier than a
                previously observed time (clock adjustment, suspend
                skew) is clamped up to it, so a stale timestamp can
                neither re-open an elapsed backoff window nor rewind
                the ladder.

        Raises:
            ConfigurationError: on a non-finite ``now`` — a NaN would
                silently disarm every backoff comparison and poison
                ``retry_not_before`` for the rest of the session.
            AuthenticationError: when the watch is not worn (an
                off-wrist entry cannot carry the wearer's biometric).
            LockoutError: when the session is locked (sticky until
                :meth:`unlock`; maps to HTTP 429 without Retry-After).
            BackoffError: when the attempt lands inside a retry
                backoff window; carries the remaining delay as
                ``retry_after_s`` (maps to HTTP 429 + Retry-After).
            QualityError: when the authenticator's degradation policy
                refuses the trial; counts as a failed attempt on the
                retry ladder (the user is re-prompted, not rejected).
        """
        if now is None:
            now = self._clock
        elif not math.isfinite(now):
            raise ConfigurationError(
                f"entry time must be finite, got {now!r}"
            )
        now = max(float(now), self._last_now)
        self._last_now = now
        self._clock = max(self._clock, now) + 1.0
        if self._state is SessionState.LOCKED:
            self._record("entry", "refused: session is locked")
            raise LockoutError(
                "session is locked after too many failed entries; unlock "
                "through the fallback authentication path"
            )
        if self._retry is not None and now < self._not_before:
            remaining = self._not_before - now
            self._record(
                "entry",
                f"refused: retry backoff for another {remaining:.1f}s",
            )
            raise BackoffError(
                f"retry backoff in effect; wait another {remaining:.1f}s",
                retry_after_s=remaining,
            )
        if self._state is SessionState.OFF_WRIST:
            raise AuthenticationError(
                "cannot authenticate while the watch is off-wrist"
            )
        try:
            decision = self._auth.authenticate(trial, claimed_pin=claimed_pin)
        except QualityError as err:
            self._record("entry", f"quality rejection: {err}")
            self._register_failure(now)
            raise
        for event in decision.degradation:
            self._record(
                "degradation", f"{event.stage}: {event.action} ({event.detail})"
            )
        if decision.accepted:
            self._failures = 0
            self._not_before = 0.0
            self._state = SessionState.AUTHENTICATED
            self._record("entry", f"accepted: {decision.reason}")
        else:
            self._record("entry", f"rejected: {decision.reason}")
            self._register_failure(now)
        return decision

    def unlock(self, reason: str = "fallback authentication") -> None:
        """Clear a lockout after out-of-band verification.

        The deployment story's escape hatch: the phone-side fallback
        (e.g. account password) vouches for the user, the ladder
        resets, and the session returns to ``OFF_WRIST`` — wear and a
        fresh PIN entry are still required.
        """
        if self._state is not SessionState.LOCKED:
            self._record("unlock", f"no-op: not locked ({reason})")
            return
        self._failures = 0
        self._not_before = 0.0
        self._state = SessionState.OFF_WRIST
        self._record("unlock", reason)

    def require_reauth(self, reason: str = "sensitive action") -> None:
        """Demote an authenticated session to WORN (step-up auth).

        The paper's payments example: routine wear keeps the session,
        but sensitive actions demand a fresh PIN entry.
        """
        if self._state is SessionState.AUTHENTICATED:
            self._state = SessionState.WORN
        self._record("reauth_required", reason)
