"""Session management: the paper's deployment story as a state machine.

Section VI sketches how P2Auth is used in practice: the user
authenticates at the moment of putting the watch on; afterwards,
continued wear is tracked from the heart-rate status; removing the
watch invalidates the session, and sensitive actions (payments)
require a fresh authentication regardless.

:class:`SessionManager` encodes that lifecycle::

    OFF_WRIST ──wear detected──► WORN ──entry accepted──► AUTHENTICATED
        ▲                         │  ▲                        │
        └───────wear lost─────────┘  └──reauth required───────┘
        ▲                                                     │
        └──────────────────wear lost──────────────────────────┘
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import AuthenticationError
from ..types import PinEntryTrial, PPGRecording
from .authentication import AuthDecision
from .authenticator import P2Auth
from .wear import WearStatus, detect_wear


class SessionState(enum.Enum):
    """Lifecycle states of a wearable authentication session."""

    OFF_WRIST = "off_wrist"
    WORN = "worn"
    AUTHENTICATED = "authenticated"


@dataclass(frozen=True)
class SessionEvent:
    """One entry in the session audit log.

    Attributes:
        kind: "wear_check", "entry", or "reauth_required".
        state: the state *after* the event.
        detail: human-readable description.
    """

    kind: str
    state: SessionState
    detail: str


class SessionManager:
    """Drives an enrolled authenticator through the session lifecycle.

    Args:
        auth: an enrolled :class:`P2Auth`.
        wear_threshold: confidence threshold forwarded to
            :func:`~repro.core.wear.detect_wear`.

    The manager is deliberately conservative: any loss of wear —
    however brief — drops the session to ``OFF_WRIST``, and PIN entries
    are only evaluated while the watch is worn (an off-wrist trial is
    by definition not the wearer's biometric).
    """

    def __init__(self, auth: P2Auth, wear_threshold: float = 0.25) -> None:
        if not auth.enrolled:
            raise AuthenticationError("enroll a user before starting a session")
        self._auth = auth
        self._wear_threshold = wear_threshold
        self._state = SessionState.OFF_WRIST
        self._log: List[SessionEvent] = []

    @property
    def state(self) -> SessionState:
        """Current session state."""
        return self._state

    @property
    def authenticated(self) -> bool:
        """Whether the session is currently authenticated."""
        return self._state is SessionState.AUTHENTICATED

    @property
    def log(self) -> Tuple[SessionEvent, ...]:
        """The session audit trail, oldest first."""
        return tuple(self._log)

    def _record(self, kind: str, detail: str) -> None:
        self._log.append(SessionEvent(kind=kind, state=self._state, detail=detail))

    def process_wear_check(self, recording: PPGRecording) -> WearStatus:
        """Feed a periodic quiescent PPG stretch through wear detection.

        Transitions: gaining wear moves ``OFF_WRIST -> WORN``; losing
        wear drops any state to ``OFF_WRIST`` (ending an authenticated
        session, as the paper's removal rule requires).
        """
        status = detect_wear(
            recording, self._auth.config, threshold=self._wear_threshold
        )
        if status.worn and self._state is SessionState.OFF_WRIST:
            self._state = SessionState.WORN
            self._record(
                "wear_check",
                f"wear detected (hr ~{status.heart_rate_bpm:.0f} bpm)",
            )
        elif not status.worn and self._state is not SessionState.OFF_WRIST:
            was_authenticated = self._state is SessionState.AUTHENTICATED
            self._state = SessionState.OFF_WRIST
            self._record(
                "wear_check",
                "wear lost"
                + ("; authenticated session ended" if was_authenticated else ""),
            )
        else:
            self._record(
                "wear_check",
                f"no change (worn={status.worn}, "
                f"confidence {status.confidence:.2f})",
            )
        return status

    def submit_entry(self, trial: PinEntryTrial,
                     claimed_pin: Optional[str] = None) -> AuthDecision:
        """Evaluate a PIN entry within the session.

        Raises:
            AuthenticationError: when the watch is not worn — an
                off-wrist entry cannot carry the wearer's biometric and
                must not even be scored.
        """
        if self._state is SessionState.OFF_WRIST:
            raise AuthenticationError(
                "cannot authenticate while the watch is off-wrist"
            )
        decision = self._auth.authenticate(trial, claimed_pin=claimed_pin)
        if decision.accepted:
            self._state = SessionState.AUTHENTICATED
            self._record("entry", f"accepted: {decision.reason}")
        else:
            self._record("entry", f"rejected: {decision.reason}")
        return decision

    def require_reauth(self, reason: str = "sensitive action") -> None:
        """Demote an authenticated session to WORN (step-up auth).

        The paper's payments example: routine wear keeps the session,
        but sensitive actions demand a fresh PIN entry.
        """
        if self._state is SessionState.AUTHENTICATED:
            self._state = SessionState.WORN
        self._record("reauth_required", reason)
