"""Session management: the paper's deployment story as a state machine.

Section VI sketches how P2Auth is used in practice: the user
authenticates at the moment of putting the watch on; afterwards,
continued wear is tracked from the heart-rate status; removing the
watch invalidates the session, and sensitive actions (payments)
require a fresh authentication regardless.

:class:`SessionManager` encodes that lifecycle::

    OFF_WRIST ──wear detected──► WORN ──entry accepted──► AUTHENTICATED
        ▲                         │  ▲                        │
        └───────wear lost─────────┘  └──reauth required───────┘
        ▲                                                     │
        └──────────────────wear lost──────────────────────────┘

On top of the lifecycle sits a bounded re-prompt ladder
(:class:`RetryPolicy`): consecutive failed entries back off
exponentially, and too many failures lock the session until an
explicit :meth:`SessionManager.unlock` (the deployment's fallback
authentication path). Degradation-ladder rungs taken by the
authenticator (gap repair, channel fallback, quality gate — see
:mod:`repro.core.degradation`) are copied into the session audit log as
structured :class:`SessionEvent` entries.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import AuthenticationError, ConfigurationError, QualityError
from ..types import PinEntryTrial, PPGRecording
from .authentication import AuthDecision
from .authenticator import P2Auth
from .wear import WearStatus, detect_wear


class SessionState(enum.Enum):
    """Lifecycle states of a wearable authentication session."""

    OFF_WRIST = "off_wrist"
    WORN = "worn"
    AUTHENTICATED = "authenticated"
    LOCKED = "locked"


@dataclass(frozen=True)
class SessionEvent:
    """One entry in the session audit log.

    Attributes:
        kind: "wear_check", "entry", "reauth_required", "degradation",
            "backoff", "lockout", or "unlock".
        state: the state *after* the event.
        detail: human-readable description.
    """

    kind: str
    state: SessionState
    detail: str


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded re-prompt ladder for failed PIN entries.

    Attributes:
        max_failures: consecutive failed entries (rejections or quality
            rejections) before the session locks.
        backoff_base_s: delay imposed after the first failure, seconds.
        backoff_factor: multiplier applied per additional failure.
        max_backoff_s: backoff ceiling, seconds.
    """

    max_failures: int = 5
    backoff_base_s: float = 1.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 60.0

    def __post_init__(self) -> None:
        if self.max_failures < 1:
            raise ConfigurationError("max_failures must be >= 1")
        if self.backoff_base_s < 0 or self.max_backoff_s < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")

    def backoff(self, failures: int) -> float:
        """Delay before the next attempt after ``failures`` consecutive
        failures (exponential, capped)."""
        if failures <= 0:
            return 0.0
        delay = self.backoff_base_s * self.backoff_factor ** (failures - 1)
        return float(min(self.max_backoff_s, delay))


class SessionManager:  # concurrency: thread-hostile
    """Drives an enrolled authenticator through the session lifecycle.

    A manager models one user's session state machine and is not
    thread-safe; drive it from a single thread (the wrapped ``P2Auth``
    may still be shared elsewhere).

    Args:
        auth: an enrolled :class:`P2Auth`.
        wear_threshold: confidence threshold forwarded to
            :func:`~repro.core.wear.detect_wear`.
        retry: bounded re-prompt ladder; ``None`` (the default)
            preserves the unlimited-retry behaviour.

    The manager is deliberately conservative: any loss of wear —
    however brief — drops the session to ``OFF_WRIST``, and PIN entries
    are only evaluated while the watch is worn (an off-wrist trial is
    by definition not the wearer's biometric). With a retry policy, a
    locked session stays locked through wear changes until
    :meth:`unlock` — re-wearing the watch must not reset the ladder.

    Entry timing for the backoff ladder comes from the ``now`` argument
    of :meth:`submit_entry` (wall-clock seconds); when omitted, an
    internal logical clock advancing one second per submission stands
    in, keeping tests and simulations deterministic.
    """

    def __init__(
        self,
        auth: P2Auth,
        wear_threshold: float = 0.25,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if not auth.enrolled:
            raise AuthenticationError("enroll a user before starting a session")
        self._auth = auth
        self._wear_threshold = wear_threshold
        self._retry = retry
        self._state = SessionState.OFF_WRIST
        self._log: List[SessionEvent] = []
        self._failures = 0
        self._not_before = 0.0
        self._clock = 0.0
        self._last_now = 0.0

    @property
    def state(self) -> SessionState:
        """Current session state."""
        return self._state

    @property
    def authenticated(self) -> bool:
        """Whether the session is currently authenticated."""
        return self._state is SessionState.AUTHENTICATED

    @property
    def locked(self) -> bool:
        """Whether the retry ladder has locked the session."""
        return self._state is SessionState.LOCKED

    @property
    def consecutive_failures(self) -> int:
        """Failed entries since the last success (or unlock)."""
        return self._failures

    @property
    def retry_not_before(self) -> float:
        """Earliest time the next entry may be submitted (backoff)."""
        return self._not_before

    @property
    def log(self) -> Tuple[SessionEvent, ...]:
        """The session audit trail, oldest first."""
        return tuple(self._log)

    def _record(self, kind: str, detail: str) -> None:
        self._log.append(SessionEvent(kind=kind, state=self._state, detail=detail))

    def process_wear_check(self, recording: PPGRecording) -> WearStatus:
        """Feed a periodic quiescent PPG stretch through wear detection.

        Transitions: gaining wear moves ``OFF_WRIST -> WORN``; losing
        wear drops any state to ``OFF_WRIST`` (ending an authenticated
        session, as the paper's removal rule requires). A ``LOCKED``
        session records the check but never transitions — re-wearing
        the watch must not bypass the retry ladder.
        """
        status = detect_wear(
            recording, self._auth.config, threshold=self._wear_threshold
        )
        if self._state is SessionState.LOCKED:
            self._record(
                "wear_check",
                f"ignored while locked (worn={status.worn})",
            )
        elif status.worn and self._state is SessionState.OFF_WRIST:
            self._state = SessionState.WORN
            self._record(
                "wear_check",
                f"wear detected (hr ~{status.heart_rate_bpm:.0f} bpm)",
            )
        elif not status.worn and self._state is not SessionState.OFF_WRIST:
            was_authenticated = self._state is SessionState.AUTHENTICATED
            self._state = SessionState.OFF_WRIST
            self._record(
                "wear_check",
                "wear lost"
                + ("; authenticated session ended" if was_authenticated else ""),
            )
        else:
            self._record(
                "wear_check",
                f"no change (worn={status.worn}, "
                f"confidence {status.confidence:.2f})",
            )
        return status

    def _register_failure(self, now: float) -> None:
        """Advance the retry ladder after a failed entry."""
        self._failures += 1
        if self._retry is None:
            return
        if self._failures >= self._retry.max_failures:
            self._state = SessionState.LOCKED
            self._record(
                "lockout",
                f"{self._failures} consecutive failures; session locked "
                "until explicit unlock",
            )
            return
        delay = self._retry.backoff(self._failures)
        if delay > 0:
            self._not_before = now + delay
            self._record(
                "backoff",
                f"failure {self._failures}/{self._retry.max_failures}; "
                f"next entry no earlier than +{delay:.1f}s",
            )

    def submit_entry(
        self,
        trial: PinEntryTrial,
        claimed_pin: Optional[str] = None,
        now: Optional[float] = None,
    ) -> AuthDecision:
        """Evaluate a PIN entry within the session.

        Args:
            trial: the PIN-entry trial.
            claimed_pin: the PIN the typist entered; defaults to the
                digits recorded in the trial.
            now: wall-clock time of the attempt, seconds, for the
                backoff ladder; defaults to an internal logical clock
                advancing 1 s per submission. Over a long session the
                clock is kept monotone: a ``now`` earlier than a
                previously observed time (clock adjustment, suspend
                skew) is clamped up to it, so a stale timestamp can
                neither re-open an elapsed backoff window nor rewind
                the ladder.

        Raises:
            ConfigurationError: on a non-finite ``now`` — a NaN would
                silently disarm every backoff comparison and poison
                ``retry_not_before`` for the rest of the session.
            AuthenticationError: when the watch is not worn (an
                off-wrist entry cannot carry the wearer's biometric),
                when the session is locked, or when the attempt lands
                inside a retry backoff window.
            QualityError: when the authenticator's degradation policy
                refuses the trial; counts as a failed attempt on the
                retry ladder (the user is re-prompted, not rejected).
        """
        if now is None:
            now = self._clock
        elif not math.isfinite(now):
            raise ConfigurationError(
                f"entry time must be finite, got {now!r}"
            )
        now = max(float(now), self._last_now)
        self._last_now = now
        self._clock = max(self._clock, now) + 1.0
        if self._state is SessionState.LOCKED:
            self._record("entry", "refused: session is locked")
            raise AuthenticationError(
                "session is locked after too many failed entries; unlock "
                "through the fallback authentication path"
            )
        if self._retry is not None and now < self._not_before:
            remaining = self._not_before - now
            self._record(
                "entry",
                f"refused: retry backoff for another {remaining:.1f}s",
            )
            raise AuthenticationError(
                f"retry backoff in effect; wait another {remaining:.1f}s"
            )
        if self._state is SessionState.OFF_WRIST:
            raise AuthenticationError(
                "cannot authenticate while the watch is off-wrist"
            )
        try:
            decision = self._auth.authenticate(trial, claimed_pin=claimed_pin)
        except QualityError as err:
            self._record("entry", f"quality rejection: {err}")
            self._register_failure(now)
            raise
        for event in decision.degradation:
            self._record(
                "degradation", f"{event.stage}: {event.action} ({event.detail})"
            )
        if decision.accepted:
            self._failures = 0
            self._not_before = 0.0
            self._state = SessionState.AUTHENTICATED
            self._record("entry", f"accepted: {decision.reason}")
        else:
            self._record("entry", f"rejected: {decision.reason}")
            self._register_failure(now)
        return decision

    def unlock(self, reason: str = "fallback authentication") -> None:
        """Clear a lockout after out-of-band verification.

        The deployment story's escape hatch: the phone-side fallback
        (e.g. account password) vouches for the user, the ladder
        resets, and the session returns to ``OFF_WRIST`` — wear and a
        fresh PIN entry are still required.
        """
        if self._state is not SessionState.LOCKED:
            self._record("unlock", f"no-op: not locked ({reason})")
            return
        self._failures = 0
        self._not_before = 0.0
        self._state = SessionState.OFF_WRIST
        self._record("unlock", reason)

    def require_reauth(self, reason: str = "sensitive action") -> None:
        """Demote an authenticated session to WORN (step-up auth).

        The paper's payments example: routine wear keeps the session,
        but sensitive actions demand a fresh PIN entry.
        """
        if self._state is SessionState.AUTHENTICATED:
            self._state = SessionState.WORN
        self._record("reauth_required", reason)
