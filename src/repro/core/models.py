"""Model layer of enrollment: waveform extraction and learning units.

This module holds the *data-facing* half of the enrollment phase: the
fixed-window waveform extractors of Section IV-B.2 and the
:class:`WaveformModel` learning unit (feature extractor + scaler +
binary classifier) together with the :class:`EnrolledModels` bundle a
finished enrollment produces. Orchestration (quality gates, the
per-key training loop) lives in :mod:`repro.core.enroll`; shared
negative banks live in :mod:`repro.core.negatives`.

Import from :mod:`repro.core.enrollment` (the façade) or
:mod:`repro.core` — the split submodules are an implementation detail
(enforced by reprolint rule RL007).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import PipelineConfig
from ..errors import EnrollmentError, NotFittedError, SignalError
from ..features import ManualFeatureExtractor, MiniRocket
from ..ml import RidgeClassifier, StandardScaler
from ..ml.base import BinaryClassifier
from ..types import SegmentedKeystroke
from .fusion import fuse_waveforms
from .pipeline import PreprocessedTrial

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .negatives import SharedNegativeSet

#: Feature methods supported by :class:`WaveformModel`.
FEATURE_METHODS = ("rocket", "manual", "raw")

#: Feature methods whose extractor can be fitted on the negative class
#: alone, making the featurized negatives shareable across victims.
#: "manual" fits its extractor on the positives, so it cannot share.
SHAREABLE_FEATURE_METHODS = ("rocket", "raw")


@dataclass(frozen=True)
class EnrollmentOptions:
    """Knobs of the enrollment phase.

    Attributes:
        privacy_boost: also train the fused-waveform model and use it
            for one-handed authentication (Section IV-B.2.2).
        num_features: total MiniRocket feature budget (paper: ~10K).
        full_window: length of the fixed one-handed waveform window in
            samples (covers all four keystrokes at typical rhythm).
        full_margin: samples kept before the first keystroke in the
            full window.
        feature_method: "rocket" (paper default), "manual"
            (statistical + DTW baseline), or "raw" (hand the raw series
            to the classifier — used by the neural baselines).
        classifier_factory: builds a fresh binary classifier per model.
        seed: seed for the MiniRocket bias sampling.
        min_positive_samples: minimum legitimate samples a model needs.
        quality_gate: refuse to train on enrollment trials whose
            :class:`~repro.signal.quality.QualityReport` is unusable —
            a model fitted on garbage silently degrades every later
            decision, so a bad trial raises
            :class:`~repro.errors.EnrollmentError` instead.
        min_quality_artifact_ratio: keystroke-artifact visibility
            threshold the gate forwards to
            :func:`~repro.signal.quality.assess_recording`.
    """

    privacy_boost: bool = False
    num_features: int = 9996
    full_window: int = 480
    full_margin: int = 45
    feature_method: str = "rocket"
    classifier_factory: Callable[[], BinaryClassifier] = RidgeClassifier
    seed: int = 0
    min_positive_samples: int = 3
    quality_gate: bool = True
    min_quality_artifact_ratio: float = 3.0

    def __post_init__(self) -> None:
        if self.feature_method not in FEATURE_METHODS:
            raise EnrollmentError(
                f"feature_method must be one of {FEATURE_METHODS}, "
                f"got {self.feature_method!r}"
            )
        if self.full_window < 8 or self.full_margin < 0:
            raise EnrollmentError("invalid full-window geometry")
        if self.min_positive_samples < 1:
            raise EnrollmentError("min_positive_samples must be >= 1")


def fixed_window(samples: np.ndarray, start: int, window: int) -> np.ndarray:
    """Cut ``window`` columns starting at ``start``, edge-padding.

    Unlike :func:`repro.signal.segment_around`, the window is anchored
    (not centered) and the signal may be shorter than the window — the
    missing tail is edge-replicated, modelling a capture buffer that
    holds the last sample until the window fills.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim == 1:
        samples = samples[np.newaxis, :]
    n = samples.shape[1]
    start = int(np.clip(start, 0, max(0, n - 1)))
    end = start + window
    chunk = samples[:, start:min(end, n)]
    if chunk.shape[1] < window:
        pad = window - chunk.shape[1]
        chunk = np.pad(chunk, ((0, 0), (0, pad)), mode="edge")
    return chunk


def extract_full_waveform(
    preprocessed: PreprocessedTrial, window: int = 480, margin: int = 45
) -> np.ndarray:
    """The one-handed "whole PPG sample": a fixed window from just
    before the first calibrated keystroke, shape ``(channels, window)``.
    """
    first = min(preprocessed.keystroke_indices)
    return fixed_window(preprocessed.detrended, first - margin, window)


def extract_segments(
    preprocessed: PreprocessedTrial, config: PipelineConfig
) -> List[SegmentedKeystroke]:
    """Single-keystroke segments for every *detected* keystroke."""
    return [
        preprocessed.segment(pos, config.segment_window)
        for pos in preprocessed.detected_positions()
    ]


def extract_fused_waveform(
    preprocessed: PreprocessedTrial, config: PipelineConfig
) -> np.ndarray:
    """Privacy-boost fused waveform (Eq. 4) of the detected keystrokes."""
    segments = extract_segments(preprocessed, config)
    if not segments:
        raise SignalError("no detected keystrokes to fuse")
    return fuse_waveforms(segments)


class WaveformModel:
    """One binary authentication model over fixed-length waveforms.

    Args:
        feature_method: see :class:`EnrollmentOptions`.
        num_features: MiniRocket feature budget (rocket method only).
        classifier_factory: builds the classifier.
        seed: MiniRocket bias seed.
    """

    def __init__(
        self,
        feature_method: str = "rocket",
        num_features: int = 9996,
        classifier_factory: Callable[[], BinaryClassifier] = RidgeClassifier,
        seed: int = 0,
        balanced: bool = False,
    ) -> None:
        if feature_method not in FEATURE_METHODS:
            raise EnrollmentError(f"unknown feature method: {feature_method!r}")
        self.feature_method = feature_method
        self.num_features = num_features
        self.seed = seed
        self.balanced = balanced
        self._classifier = classifier_factory()
        self._rocket: Optional[MiniRocket] = None
        self._manual: Optional[ManualFeatureExtractor] = None
        self._scaler: Optional[StandardScaler] = None
        self._fitted = False

    def _featurize(
        self, x: np.ndarray, fit: bool, positives: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if self.feature_method == "rocket":
            if fit:
                self._rocket = MiniRocket(
                    num_features=self.num_features, seed=self.seed
                )
                self._rocket.fit(x)
            if self._rocket is None:
                raise NotFittedError("WaveformModel.fit has not been called")
            features = self._rocket.transform(x)
        elif self.feature_method == "manual":
            if fit:
                # Stride 2 halves the DTW cost while keeping the
                # manual baseline one to two orders of magnitude
                # slower than the ROCKET path (Table I's comparison).
                self._manual = ManualFeatureExtractor(dtw_stride=2)
                self._manual.fit(positives if positives is not None else x)
            if self._manual is None:
                raise NotFittedError("WaveformModel.fit has not been called")
            features = self._manual.transform(x)
        else:  # raw
            return x
        if fit:
            self._scaler = StandardScaler().fit(features)
        if self._scaler is None:
            raise NotFittedError("WaveformModel.fit has not been called")
        return self._scaler.transform(features)

    def fit(self, positives: np.ndarray, negatives: np.ndarray) -> "WaveformModel":
        """Train on legitimate (``positives``) vs third-party samples.

        Both inputs have shape ``(n, channels, window)``.
        """
        positives = np.asarray(positives, dtype=np.float64)
        negatives = np.asarray(negatives, dtype=np.float64)
        if positives.ndim != 3 or negatives.ndim != 3:
            raise EnrollmentError(
                "expected 3-D (n, channels, window) training arrays, got "
                f"{positives.shape} and {negatives.shape}"
            )
        if positives.shape[0] == 0 or negatives.shape[0] == 0:
            raise EnrollmentError("both classes need at least one sample")
        x = np.concatenate([positives, negatives], axis=0)
        y = np.concatenate(
            [np.ones(positives.shape[0]), -np.ones(negatives.shape[0])]
        )
        features = self._featurize(x, fit=True, positives=positives)
        if self.balanced:
            n_pos = positives.shape[0]
            n_neg = negatives.shape[0]
            n = n_pos + n_neg
            weights = np.where(y > 0, n / (2.0 * n_pos), n / (2.0 * n_neg))
            try:
                self._classifier.fit(features, y, sample_weight=weights)
            except TypeError:
                # Classifier without weight support: fall back silently;
                # balance is an optimization, not a correctness need.
                self._classifier.fit(features, y)
        else:
            self._classifier.fit(features, y)
        self._fitted = True
        return self

    def fit_shared(
        self, positives: np.ndarray, shared: "SharedNegativeSet"
    ) -> "WaveformModel":
        """Train against a pre-featurized shared negative set.

        The extractor comes pre-fitted (on the negatives alone) from
        the :class:`~repro.core.negatives.NegativeBank`, so only the
        positives are featurized here; the negative features are reused
        verbatim across every user enrolled against the same bank.
        """
        positives = np.asarray(positives, dtype=np.float64)
        if positives.ndim != 3:
            raise EnrollmentError(
                f"expected a 3-D (n, channels, window) positive array, "
                f"got {positives.shape}"
            )
        if positives.shape[0] == 0:
            raise EnrollmentError("both classes need at least one sample")
        if shared.feature_method != self.feature_method:
            raise EnrollmentError(
                f"shared negatives were featurized with "
                f"{shared.feature_method!r} but this model uses "
                f"{self.feature_method!r}"
            )
        if self.feature_method == "rocket":
            if shared.extractor is None:
                raise EnrollmentError("shared negative set has no extractor")
            self._rocket = shared.extractor
            pos_features = self._rocket.transform(positives)
        elif self.feature_method == "raw":
            pos_features = positives
        else:
            raise EnrollmentError(
                f"feature method {self.feature_method!r} cannot use shared "
                f"negatives (its extractor is fitted on the positives)"
            )
        features = np.concatenate([pos_features, shared.features], axis=0)
        n_pos = positives.shape[0]
        n_neg = shared.features.shape[0]
        y = np.concatenate([np.ones(n_pos), -np.ones(n_neg)])
        if self.feature_method == "rocket":
            self._scaler = StandardScaler().fit(features)
            features = self._scaler.transform(features)
        if self.balanced:
            n = n_pos + n_neg
            weights = np.where(y > 0, n / (2.0 * n_pos), n / (2.0 * n_neg))
            try:
                self._classifier.fit(features, y, sample_weight=weights)
            except TypeError:
                self._classifier.fit(features, y)
        else:
            self._classifier.fit(features, y)
        self._fitted = True
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed scores for waveforms of shape ``(n, channels, window)``
        or a single ``(channels, window)`` waveform."""
        if not self._fitted:
            raise NotFittedError("WaveformModel.fit has not been called")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2:
            x = x[np.newaxis]
        features = self._featurize(x, fit=False)
        return np.asarray(self._classifier.decision_function(features))

    def accepts(self, waveform: np.ndarray) -> bool:
        """Accept/reject a single waveform (Eq. 9)."""
        return bool(self.decision_function(waveform)[0] > 0.0)


@dataclass
class EnrolledModels:
    """The trained models of one enrolled user.

    Attributes:
        full_model: one-handed full-waveform classifier.
        fused_model: privacy-boost classifier, if enabled.
        key_models: per-key single-waveform classifiers.
        options: the enrollment options used.
        config: the pipeline configuration used.
    """

    full_model: Optional[WaveformModel]
    fused_model: Optional[WaveformModel]
    key_models: Dict[str, WaveformModel]
    options: EnrollmentOptions
    config: PipelineConfig
    keys_enrolled: Tuple[str, ...] = field(default_factory=tuple)


def _collect_segments(
    preprocessed: Sequence[PreprocessedTrial], config: PipelineConfig
) -> Dict[str, List[np.ndarray]]:
    """Group detected single-keystroke waveforms by key."""
    by_key: Dict[str, List[np.ndarray]] = {}
    for pre in preprocessed:
        for segment in extract_segments(pre, config):
            by_key.setdefault(segment.key, []).append(segment.samples)
    return by_key
