"""Population-scale registry backends over the packed template format.

:class:`~repro.core.registry.NpzDirectoryBackend` is fine for a lab
device; at registry scale (ROADMAP item 2: 10k–1M users) it loses on
every axis — one compressed archive per user, the shared extractor
duplicated at float64 into each, and a cold load that re-inflates the
whole archive. The two backends here store
:mod:`repro.core.packing` blobs instead:

- :class:`ShardedPackedBackend` — one small ``.p2u`` record per user
  under an N-way hashed shard directory (bounded directory fan-out),
  extractor blobs content-addressed and written once in a shared
  ``extractors/`` store.
- :class:`PackedArenaBackend` — every record in a single append-only
  arena file. Cold loads are an ``mmap`` slice + zero-copy
  ``np.frombuffer`` views; deletes append tombstones; ``compact()``
  rewrites live frames and drops unreferenced extractors.

Both satisfy the :class:`~repro.core.registry.RegistryBackend`
protocol (store / load / delete / user_ids / exists) and tolerate
concurrent calls, including for the same user id: the sharded backend
leans on atomic ``os.replace``; the arena serializes its index and
append tail under one lock while keeping packing/unpacking (the
expensive part) outside it.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import tempfile
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from ..concurrency import assert_owned, checked_rlock
from ..errors import ConfigurationError, PersistenceError
from ..features import MiniRocket
from .authenticator import P2Auth
from .packing import (
    QUANT_DTYPES,
    Buffer,
    PackedAuthenticator,
    decode_extractor,
    pack_authenticator,
    record_extractor_refs,
    unpack_record,
)
from .registry import _USER_ID_RE, _check_user_id


class _ExtractorPool:  # concurrency: thread-safe
    """Fingerprint → decoded shared extractor, memoized per backend.

    A packed backend resolves every record's extractor references
    through one pool, so an extractor shared by a million users is
    decoded once per process no matter which user loads first. Decoding
    runs outside the lock (double-checked publish): two racing threads
    may both decode, one result wins via ``setdefault``.
    """

    def __init__(self) -> None:
        self._lock = checked_rlock("_ExtractorPool._lock")
        self._cache: Dict[str, MiniRocket] = {}  # guarded-by: _lock

    def resolve(
        self, fingerprint: str, build: Callable[[], MiniRocket]
    ) -> MiniRocket:
        with self._lock:
            rocket = self._cache.get(fingerprint)
        if rocket is not None:
            return rocket
        rocket = build()
        with self._lock:
            return self._cache.setdefault(fingerprint, rocket)

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)


def _write_atomic(path: Path, data: bytes, tmp_dir: Path) -> None:
    """Publish ``data`` at ``path`` via a same-filesystem ``os.replace``.

    Concurrent writers of the same path each publish a complete file;
    readers never observe a partial write. The temp directory lives
    inside the backend root so stray temp files can never collide with
    the backend's own globs.
    """
    fd, tmp_name = tempfile.mkstemp(dir=tmp_dir)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except FileNotFoundError:
            pass
        raise


class ShardedPackedBackend:  # concurrency: thread-safe
    """Packed per-user records under an N-way hashed shard directory.

    Layout::

        root/backend.json          # n_shards + dtype manifest
        root/shards/0042/<user>.p2u
        root/extractors/<fp>.p2x   # content-addressed, write-once
        root/.tmp/                 # atomic-replace staging

    The shard of a user is a stable hash of the id, so ``n_shards`` is
    fixed at creation and adopted from the manifest on reopen —
    constructor arguments only apply to a fresh root. All operations
    are lock-free over atomic filesystem primitives; same-id races
    resolve to one complete winner via ``os.replace``.

    Args:
        root: backend directory (created if missing).
        n_shards: directory fan-out for a fresh root.
        dtype: packing dtype for a fresh root — see
            :data:`~repro.core.packing.QUANT_DTYPES`.
    """

    def __init__(
        self,
        root: Union[str, Path],
        n_shards: int = 64,
        dtype: str = "float32",
    ) -> None:
        if n_shards < 1:
            raise ConfigurationError("n_shards must be >= 1")
        if dtype not in QUANT_DTYPES:
            raise ConfigurationError(
                f"unknown packing dtype {dtype!r}; expected one of "
                f"{sorted(QUANT_DTYPES)}"
            )
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._tmp = self._root / ".tmp"
        self._tmp.mkdir(exist_ok=True)
        self._ext_dir = self._root / "extractors"
        self._ext_dir.mkdir(exist_ok=True)
        manifest = self._root / "backend.json"
        if manifest.exists():
            stored = json.loads(manifest.read_text())
            if stored.get("format") != "p2auth-sharded":
                raise ConfigurationError(
                    f"{manifest} is not a sharded packed backend manifest"
                )
            self._n_shards = int(stored["n_shards"])
            self._dtype = str(stored["dtype"])
        else:
            self._n_shards = n_shards
            self._dtype = dtype
            _write_atomic(
                manifest,
                json.dumps(
                    {
                        "format": "p2auth-sharded",
                        "version": 1,
                        "n_shards": n_shards,
                        "dtype": dtype,
                    },
                    sort_keys=True,
                ).encode("utf-8"),
                self._tmp,
            )
        self._extractors = _ExtractorPool()

    @property
    def dtype(self) -> str:
        return self._dtype

    @property
    def n_shards(self) -> int:
        return self._n_shards

    def _shard_dir(self, user_id: str) -> Path:
        digest = hashlib.blake2b(
            user_id.encode("utf-8"), digest_size=8
        ).digest()
        shard = int.from_bytes(digest, "big") % self._n_shards
        return self._root / "shards" / f"{shard:04d}"

    def _path(self, user_id: str) -> Path:
        return self._shard_dir(_check_user_id(user_id)) / f"{user_id}.p2u"

    def store(self, user_id: str, auth: P2Auth) -> None:
        """Pack and persist one enrolled authenticator."""
        self.store_packed(user_id, pack_authenticator(auth, self._dtype))

    def store_packed(self, user_id: str, packed: PackedAuthenticator) -> None:
        """Persist an already-packed template (bulk-enrollment path).

        Extractor blobs are content-addressed: a fingerprint already on
        disk is skipped, so materializing a population that shares one
        :class:`~repro.core.negatives.NegativeBank` writes the
        extractor exactly once.
        """
        path = self._path(user_id)
        for fingerprint, blob in packed.extractors.items():
            ext_path = self._ext_dir / f"{fingerprint}.p2x"
            if not ext_path.exists():
                _write_atomic(ext_path, blob, self._tmp)
        path.parent.mkdir(parents=True, exist_ok=True)
        _write_atomic(path, packed.record, self._tmp)

    def _resolve_extractor(self, fingerprint: str) -> MiniRocket:
        def build() -> MiniRocket:
            ext_path = self._ext_dir / f"{fingerprint}.p2x"
            try:
                return decode_extractor(ext_path.read_bytes())
            except FileNotFoundError:
                raise PersistenceError(
                    f"extractor blob {fingerprint} is missing from "
                    f"{self._ext_dir}"
                ) from None

        return self._extractors.resolve(fingerprint, build)

    def load(self, user_id: str) -> P2Auth:
        """Reload a stored authenticator (KeyError when absent)."""
        try:
            record = self._path(user_id).read_bytes()
        except FileNotFoundError:
            raise KeyError(user_id) from None
        return unpack_record(record, self._resolve_extractor)

    def delete(self, user_id: str) -> None:
        """Forget a stored user (no-op when absent)."""
        self._path(user_id).unlink(missing_ok=True)

    def exists(self, user_id: str) -> bool:
        """Whether ``user_id`` is stored, without loading any model."""
        if not _USER_ID_RE.match(user_id):
            return False
        return self._path(user_id).exists()

    def __contains__(self, user_id: str) -> bool:
        return self.exists(user_id)

    def user_ids(self) -> List[str]:
        """All stored user ids."""
        return sorted(
            p.stem
            for p in self._root.glob("shards/*/*.p2u")
            if _USER_ID_RE.match(p.stem)
        )

    def size_bytes(self) -> int:
        """Total bytes on disk: records + shared extractors + manifest."""
        return sum(
            p.stat().st_size for p in self._root.rglob("*") if p.is_file()
        )


# --- arena framing ---------------------------------------------------------

_ARENA_MAGIC = b"P2AR"
_FRAME = struct.Struct("<4sBBHQ")  # magic, kind, pad, id_len, payload_len
_KIND_USER = 1
_KIND_EXTRACTOR = 2
_KIND_TOMBSTONE = 3


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _frame(kind: int, ident: str, payload: bytes) -> bytes:
    ident_bytes = ident.encode("utf-8")
    frame = bytearray(
        _FRAME.size + _align8(len(ident_bytes)) + _align8(len(payload))
    )
    _FRAME.pack_into(
        frame, 0, _ARENA_MAGIC, kind, 0, len(ident_bytes), len(payload)
    )
    frame[_FRAME.size:_FRAME.size + len(ident_bytes)] = ident_bytes
    payload_at = _FRAME.size + _align8(len(ident_bytes))
    frame[payload_at:payload_at + len(payload)] = payload
    return bytes(frame)


class PackedArenaBackend:  # concurrency: thread-safe
    """Every packed record in one append-only memory-mapped arena file.

    Layout: ``root/arena.json`` (dtype manifest) plus ``root/arena.bin``,
    a sequence of 8-aligned frames::

        magic "P2AR" | kind u8 | pad u8 | id_len u16 | payload_len u64 |
        id bytes (padded to 8) | payload (padded to 8)

    ``kind`` is a user record, a content-addressed extractor blob, or a
    tombstone. Stores append frames; a cold :meth:`load` is an in-memory
    index hit plus :func:`~repro.core.packing.unpack_record` over an
    ``mmap`` slice — no archive parsing, no per-user file open. The
    opening scan tolerates a truncated tail (a crash mid-append) by
    truncating back to the last complete frame.

    ``store`` / ``load`` / ``delete`` / ``user_ids`` / ``exists`` are
    thread-safe: the index and append tail are serialized under one
    lock, while packing and unpacking (the expensive part) run outside
    it. :meth:`compact` is an exclusive maintenance operation — do not
    run it concurrently with loads whose authenticators are still being
    rebuilt.
    """

    def __init__(self, root: Union[str, Path], dtype: str = "float32") -> None:
        if dtype not in QUANT_DTYPES:
            raise ConfigurationError(
                f"unknown packing dtype {dtype!r}; expected one of "
                f"{sorted(QUANT_DTYPES)}"
            )
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._path = self._root / "arena.bin"
        manifest = self._root / "arena.json"
        if manifest.exists():
            stored = json.loads(manifest.read_text())
            if stored.get("format") != "p2auth-arena":
                raise ConfigurationError(
                    f"{manifest} is not a packed-arena manifest"
                )
            self._dtype = str(stored["dtype"])
        else:
            self._dtype = dtype
            manifest.write_text(
                json.dumps(
                    {"format": "p2auth-arena", "version": 1, "dtype": dtype},
                    sort_keys=True,
                )
            )
        self._lock = checked_rlock("PackedArenaBackend._lock")
        # (payload offset, payload length) per live user / extractor.
        self._index: Dict[str, Tuple[int, int]] = {}  # guarded-by: _lock
        self._ext_index: Dict[str, Tuple[int, int]] = {}  # guarded-by: _lock
        self._size = 0  # guarded-by: _lock
        self._mmap: Optional[mmap.mmap] = None  # guarded-by: _lock
        self._mapped = 0  # guarded-by: _lock
        self._append = open(self._path, "ab")  # guarded-by: _lock
        self._extractors = _ExtractorPool()
        with self._lock:
            self._scan()

    @property
    def dtype(self) -> str:
        return self._dtype

    def _scan(self) -> None:  # guarded-by: caller
        """Rebuild the indexes from the arena file (open-time only).

        Reads frame headers and ids only, seeking past payloads, so
        opening a multi-GB arena touches kilobytes per record instead
        of paging the whole file through memory. A partial trailing
        frame — the footprint of a crash mid-append — is cut off so the
        arena reopens at the last complete frame.
        """
        assert_owned(self._lock, "PackedArenaBackend._scan")
        file_len = self._path.stat().st_size
        pos = 0
        with open(self._path, "rb") as handle:
            while pos + _FRAME.size <= file_len:
                head = handle.read(_FRAME.size)
                if len(head) < _FRAME.size:
                    break
                magic, kind, _pad, id_len, payload_len = _FRAME.unpack(head)
                if magic != _ARENA_MAGIC:
                    break
                payload_at = pos + _FRAME.size + _align8(id_len)
                end = payload_at + _align8(payload_len)
                if end > file_len:
                    break
                ident = handle.read(id_len).decode("utf-8")
                if kind == _KIND_USER:
                    self._index[ident] = (payload_at, payload_len)
                elif kind == _KIND_EXTRACTOR:
                    self._ext_index[ident] = (payload_at, payload_len)
                elif kind == _KIND_TOMBSTONE:
                    self._index.pop(ident, None)
                handle.seek(end)
                pos = end
        if pos != file_len:
            # Truncated or foreign tail: drop it so appends restart at
            # a frame boundary.
            self._append.truncate(pos)
        self._size = pos

    def _buffer(self) -> Buffer:  # guarded-by: caller
        """The arena contents up to ``_size`` as a zero-copy buffer.

        Remaps lazily when the file has grown past the current window.
        The returned ``mmap`` stays valid for readers even after later
        remaps or compactions: old maps are dropped, not closed, so
        in-flight ``np.frombuffer`` views keep their pages.
        """
        assert_owned(self._lock, "PackedArenaBackend._buffer")
        if self._size == 0:
            return b""
        if self._mmap is None or self._mapped < self._size:
            self._append.flush()
            with open(self._path, "rb") as handle:
                self._mmap = mmap.mmap(
                    handle.fileno(), self._size, access=mmap.ACCESS_READ
                )
            self._mapped = self._size
        assert self._mmap is not None
        return self._mmap

    def store(self, user_id: str, auth: P2Auth) -> None:
        """Pack and append one enrolled authenticator."""
        self.store_packed(user_id, pack_authenticator(auth, self._dtype))

    def store_packed(self, user_id: str, packed: PackedAuthenticator) -> None:
        """Append an already-packed template (bulk-enrollment path)."""
        _check_user_id(user_id)
        with self._lock:
            frames: List[Tuple[int, str, bytes]] = [
                (_KIND_EXTRACTOR, fingerprint, blob)
                for fingerprint, blob in packed.extractors.items()
                if fingerprint not in self._ext_index
            ]
            frames.append((_KIND_USER, user_id, packed.record))
            self._append_frames(frames)

    def _append_frames(self, frames: List[Tuple[int, str, bytes]]) -> None:  # guarded-by: caller
        assert_owned(self._lock, "PackedArenaBackend._append_frames")
        encoded = bytearray()
        pos = self._size
        for kind, ident, payload in frames:
            frame = _frame(kind, ident, payload)
            payload_at = (
                pos + len(encoded) + _FRAME.size
                + _align8(len(ident.encode("utf-8")))
            )
            if kind == _KIND_USER:
                self._index[ident] = (payload_at, len(payload))
            elif kind == _KIND_EXTRACTOR:
                self._ext_index[ident] = (payload_at, len(payload))
            elif kind == _KIND_TOMBSTONE:
                self._index.pop(ident, None)
            encoded += frame
        self._append.write(encoded)
        self._append.flush()
        self._size = pos + len(encoded)

    def _resolve_extractor_from(
        self, buf: Buffer, ext_index: Dict[str, Tuple[int, int]]
    ) -> Callable[[str], MiniRocket]:
        def resolve(fingerprint: str) -> MiniRocket:
            def build() -> MiniRocket:
                entry = ext_index.get(fingerprint)
                if entry is None:
                    raise PersistenceError(
                        f"extractor blob {fingerprint} is missing from "
                        f"{self._path}"
                    )
                return decode_extractor(buf, base=entry[0])

            return self._extractors.resolve(fingerprint, build)

        return resolve

    def load(self, user_id: str) -> P2Auth:
        """Rebuild a stored authenticator from its mmap slice.

        The index hit, the mmap window, and an extractor-offset
        snapshot are taken under the lock; the model rebuild — the
        expensive part — runs outside it.
        """
        with self._lock:
            entry = self._index.get(user_id)
            if entry is None:
                raise KeyError(user_id)
            buf = self._buffer()
            ext_index = dict(self._ext_index)
        return unpack_record(
            buf, self._resolve_extractor_from(buf, ext_index), base=entry[0]
        )

    def delete(self, user_id: str) -> None:
        """Append a tombstone for ``user_id`` (no-op when absent)."""
        with self._lock:
            if user_id in self._index:
                self._append_frames([(_KIND_TOMBSTONE, user_id, b"")])

    def exists(self, user_id: str) -> bool:
        """Whether ``user_id`` is live in the arena (index hit only)."""
        with self._lock:
            return user_id in self._index

    def __contains__(self, user_id: str) -> bool:
        return self.exists(user_id)

    def user_ids(self) -> List[str]:
        """All live user ids."""
        with self._lock:
            return sorted(self._index)

    def size_bytes(self) -> int:
        """Bytes in the arena file, tombstones and garbage included."""
        with self._lock:
            return self._size

    def compact(self) -> int:
        """Rewrite the arena with only live frames; returns bytes freed.

        Tombstoned users, superseded re-stores, and extractors no live
        record references are all dropped. Exclusive maintenance: must
        not run concurrently with other backend calls.
        """
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:  # guarded-by: caller
        assert_owned(self._lock, "PackedArenaBackend._compact_locked")
        old_size = self._size
        buf = self._buffer()
        referenced: Set[str] = set()
        users = sorted(self._index.items())
        for _user_id, (offset, _length) in users:
            referenced.update(record_extractor_refs(buf, base=offset))
        tmp_path = self._path.with_name("arena.bin.tmp")
        new_index: Dict[str, Tuple[int, int]] = {}
        new_ext: Dict[str, Tuple[int, int]] = {}
        pos = 0
        with open(tmp_path, "wb") as out:
            for fingerprint in sorted(referenced):
                offset, length = self._ext_index[fingerprint]
                payload = bytes(buf[offset:offset + length])
                frame = _frame(_KIND_EXTRACTOR, fingerprint, payload)
                payload_at = (
                    pos + _FRAME.size + _align8(len(fingerprint.encode()))
                )
                new_ext[fingerprint] = (payload_at, length)
                out.write(frame)
                pos += len(frame)
            for user_id, (offset, length) in users:
                payload = bytes(buf[offset:offset + length])
                frame = _frame(_KIND_USER, user_id, payload)
                payload_at = (
                    pos + _FRAME.size + _align8(len(user_id.encode()))
                )
                new_index[user_id] = (payload_at, length)
                out.write(frame)
                pos += len(frame)
        self._append.close()
        os.replace(tmp_path, self._path)
        self._append = open(self._path, "ab")
        # Old mmap windows stay alive for in-flight readers; new calls
        # remap against the compacted file.
        self._mmap = None
        self._mapped = 0
        self._index = new_index
        self._ext_index = new_ext
        self._size = pos
        return old_size - pos

    def close(self) -> None:
        """Release file handles (loads already in flight stay valid)."""
        with self._lock:
            self._append.close()
            if self._mmap is not None:
                self._mmap = None
            self._mapped = 0


__all__ = [
    "PackedArenaBackend",
    "ShardedPackedBackend",
]
