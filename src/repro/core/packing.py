"""Packed binary templates: shared extractors, quantized per-user state.

The ``.npz`` format in :mod:`repro.core.persistence` re-stores the full
MiniRocket bias tables for every user at float64 — fine for one device,
ruinous for a million-user registry, where every user enrolled against
the same :class:`~repro.core.negatives.NegativeBank` carries an
identical copy of the shared extractor. This module splits a serialized
authenticator into:

- **extractor blobs** (magic ``P2EX``): the fitted MiniRocket state,
  always float64, content-addressed by a BLAKE2b fingerprint so each
  distinct extractor is stored *once per arena* no matter how many
  users reference it;
- **user records** (magic ``P2PK``): everything user-specific — ridge
  coefficient vector, scaler mean/scale, scalars, PIN digest, options —
  optionally quantized to float32 or float16.

Both blobs share one self-describing layout::

    magic(4) | version(u16) flags(u16) header_len(u32) | JSON header |
    pad-to-8 | 8-aligned C-contiguous array payloads

Array offsets in the header are relative to the payload base, so a
record can be decoded in place from any ``bytes``-like buffer — in
particular an ``mmap`` slice, where :func:`unpack_record` costs one
JSON parse plus zero-copy ``np.frombuffer`` views.

Quantization contract (verified by ``tests/core/test_packing.py`` and
the registry benchmark's parity section): float64 records reproduce
scores bit-identically; float32/float16 records must reproduce the
*decisions* of the standard probe battery exactly, with score drift
bounded by the documented tolerances in docs/performance.md.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..errors import ConfigurationError, PersistenceError
from ..features import MiniRocket
from ..ml import RidgeClassifier, StandardScaler
from .authenticator import P2Auth
from .models import WaveformModel
from .persistence import (
    _require_rocket_ridge,
    authenticator_meta,
    restore_authenticator,
)

#: Format version written into every blob.
PACK_VERSION = 1

#: Magic prefix of a per-user record blob.
RECORD_MAGIC = b"P2PK"

#: Magic prefix of a shared-extractor blob.
EXTRACTOR_MAGIC = b"P2EX"

#: Supported quantization dtypes for per-user arrays.
QUANT_DTYPES: Dict[str, np.dtype] = {  # concurrency: immutable-after-init
    "float64": np.dtype(np.float64),
    "float32": np.dtype(np.float32),
    "float16": np.dtype(np.float16),
}

_PRELUDE = struct.Struct("<HHI")  # version, flags, header_len
_PRELUDE_LEN = 4 + _PRELUDE.size

Buffer = Union[bytes, bytearray, memoryview, mmap.mmap]


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _encode_blob(
    magic: bytes, meta: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
) -> bytes:
    """Serialize ``meta`` + named arrays into one self-describing blob."""
    payloads: List[np.ndarray] = []
    entries: List[Dict[str, Any]] = []
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _align8(offset)
        entries.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": array.nbytes,
            }
        )
        payloads.append(array)
        offset += array.nbytes
    header = json.dumps(
        {"meta": dict(meta), "arrays": entries}, sort_keys=True
    ).encode("utf-8")
    payload_base = _align8(_PRELUDE_LEN + len(header))
    blob = bytearray(payload_base + _align8(offset))
    blob[:4] = magic
    _PRELUDE.pack_into(blob, 4, PACK_VERSION, 0, len(header))
    blob[_PRELUDE_LEN:_PRELUDE_LEN + len(header)] = header
    for entry, array in zip(entries, payloads):
        start = payload_base + int(entry["offset"])
        blob[start:start + array.nbytes] = array.tobytes()
    return bytes(blob)


def _decode_blob(
    buf: Buffer, magic: bytes, base: int = 0
) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Decode a blob at ``base`` into ``(meta, arrays)``.

    Arrays are zero-copy read-only views into ``buf`` whenever numpy
    allows it (always, for ``bytes`` and ``mmap`` buffers).
    """
    if bytes(buf[base:base + 4]) != magic:
        raise PersistenceError(
            f"bad blob magic {bytes(buf[base:base + 4])!r}; "
            f"expected {magic!r}"
        )
    version, _flags, header_len = _PRELUDE.unpack_from(buf, base + 4)
    if version != PACK_VERSION:
        raise PersistenceError(f"unsupported packed version: {version}")
    header_start = base + _PRELUDE_LEN
    header = json.loads(bytes(buf[header_start:header_start + header_len]))
    payload_base = base + _align8(_PRELUDE_LEN + header_len)
    arrays: Dict[str, np.ndarray] = {}
    for entry in header["arrays"]:
        count = int(np.prod(entry["shape"], dtype=np.int64))
        arrays[entry["name"]] = np.frombuffer(
            buf,
            dtype=np.dtype(entry["dtype"]),
            count=count,
            offset=payload_base + int(entry["offset"]),
        ).reshape(entry["shape"])
    return header["meta"], arrays


def encode_extractor(rocket: MiniRocket) -> Tuple[str, bytes]:
    """Serialize a fitted extractor; returns ``(fingerprint, blob)``.

    The fingerprint is a BLAKE2b digest of the blob itself, so two
    extractors fingerprint equal exactly when their fitted state is
    byte-identical — the basis for content-addressed dedup in the
    packed backends.
    """
    header, arrays = rocket.get_state()
    blob = _encode_blob(EXTRACTOR_MAGIC, header, arrays)
    return hashlib.blake2b(blob, digest_size=16).hexdigest(), blob


def decode_extractor(blob: Buffer, base: int = 0) -> MiniRocket:
    """Rebuild a fitted :class:`MiniRocket` from an extractor blob."""
    meta, arrays = _decode_blob(blob, EXTRACTOR_MAGIC, base)
    return MiniRocket.from_state(meta, arrays)


def _quantize(array: np.ndarray, dtype: np.dtype, clamp_zero: bool) -> np.ndarray:
    """Cast a per-user vector down to the storage dtype.

    ``clamp_zero`` protects divisors (the scaler scale): values small
    enough to underflow to zero in the target dtype are clamped to its
    smallest normal so the reloaded transform never divides by zero.
    """
    quantized = np.asarray(array, dtype=np.float64).astype(dtype)
    if clamp_zero:
        # reprolint: disable-next=RL005 -- exact underflow sentinel, not a tolerance
        quantized[quantized == 0.0] = np.finfo(dtype).tiny
    return quantized


@dataclass(frozen=True)
class PackedAuthenticator:
    """One user's packed template plus the extractor blobs it references.

    Attributes:
        record: the ``P2PK`` user record.
        extractors: fingerprint → ``P2EX`` blob for every extractor the
            record's models reference. Backends store these
            content-addressed, so handing the same dict for many users
            writes each blob once.
    """

    record: bytes
    extractors: Dict[str, bytes]

    @property
    def record_nbytes(self) -> int:
        return len(self.record)


def pack_authenticator(auth: P2Auth, dtype: str = "float32") -> PackedAuthenticator:
    """Pack an enrolled authenticator into the shared-extractor format.

    Args:
        auth: the enrolled authenticator (rocket + ridge only, like
            :func:`~repro.core.persistence.save_authenticator`).
        dtype: storage dtype for the per-user vectors — one of
            ``"float64"`` (bit-exact), ``"float32"`` (default), or
            ``"float16"``.

    Raises:
        ConfigurationError: for an unknown ``dtype``.
        PersistenceError: for non-serializable model configurations.
    """
    if dtype not in QUANT_DTYPES:
        raise ConfigurationError(
            f"unknown packing dtype {dtype!r}; expected one of "
            f"{sorted(QUANT_DTYPES)}"
        )
    target = QUANT_DTYPES[dtype]
    models = auth.models  # raises EnrollmentError when not enrolled

    slots: List[Tuple[str, WaveformModel]] = []
    if models.full_model is not None:
        slots.append(("full", models.full_model))
    if models.fused_model is not None:
        slots.append(("fused", models.fused_model))
    for key, model in models.key_models.items():
        slots.append((f"key/{key}", model))

    extractors: Dict[str, bytes] = {}
    encoded: Dict[int, str] = {}  # id(rocket) -> fingerprint memo
    model_meta: Dict[str, Dict[str, Any]] = {}
    arrays: Dict[str, np.ndarray] = {}
    for slot, model in slots:
        _require_rocket_ridge(model, slot)
        rocket = model._rocket
        scaler: Optional[StandardScaler] = model._scaler
        clf: RidgeClassifier = model._classifier
        if rocket is None or scaler is None or clf.coef_ is None:
            raise PersistenceError(f"model {slot!r} is not fitted")
        fingerprint = encoded.get(id(rocket))
        if fingerprint is None:
            fingerprint, blob = encode_extractor(rocket)
            encoded[id(rocket)] = fingerprint
            extractors.setdefault(fingerprint, blob)
        arrays[f"{slot}/coef"] = _quantize(clf.coef_, target, clamp_zero=False)
        arrays[f"{slot}/scaler_mean"] = _quantize(
            scaler._mean, target, clamp_zero=False
        )
        arrays[f"{slot}/scaler_scale"] = _quantize(
            scaler._scale, target, clamp_zero=True
        )
        model_meta[slot] = {
            "extractor": fingerprint,
            "num_features": model.num_features,
            "seed": model.seed,
            "balanced": model.balanced,
            "intercept": float(clf.intercept_),
            "alpha": float(clf.alpha_),
            "alphas": list(clf.alphas),
        }

    meta = {
        "format": "p2auth-packed",
        "version": PACK_VERSION,
        "dtype": dtype,
        "auth": authenticator_meta(auth),
        "models": model_meta,
    }
    record = _encode_blob(RECORD_MAGIC, meta, arrays)
    return PackedAuthenticator(record=record, extractors=extractors)


def record_extractor_refs(buf: Buffer, base: int = 0) -> Tuple[str, ...]:
    """The extractor fingerprints a user record references.

    Lets a backend check blob availability (or garbage-collect
    extractors at compaction) without rebuilding any model.
    """
    meta, _arrays = _decode_blob(buf, RECORD_MAGIC, base)
    return tuple(
        sorted({m["extractor"] for m in meta["models"].values()})
    )


def _as_float64(array: np.ndarray) -> np.ndarray:
    # Already-float64 views stay zero-copy; quantized vectors widen back
    # so the runtime math path is dtype-identical to a fresh enrollment.
    return np.asarray(array, dtype=np.float64)


def unpack_record(
    buf: Buffer,
    resolve_extractor: Callable[[str], MiniRocket],
    base: int = 0,
) -> P2Auth:
    """Rebuild a ready-to-authenticate :class:`P2Auth` from a record.

    Args:
        buf: buffer holding a ``P2PK`` record at ``base`` — ``bytes``
            or an ``mmap``; arrays are read via zero-copy views.
        resolve_extractor: fingerprint → fitted shared extractor. The
            callable owns caching, so a warm pool makes unpacking a
            user O(per-user vectors) regardless of extractor size.
        base: byte offset of the record inside ``buf``.
    """
    meta, arrays = _decode_blob(buf, RECORD_MAGIC, base)
    if meta.get("format") != "p2auth-packed":
        raise PersistenceError("buffer is not a packed P2Auth record")

    unpacked: Dict[str, WaveformModel] = {}
    for slot, m in meta["models"].items():
        model = WaveformModel(
            feature_method="rocket",
            num_features=int(m["num_features"]),
            seed=int(m["seed"]),
            balanced=bool(m["balanced"]),
        )
        model._rocket = resolve_extractor(m["extractor"])
        scaler = StandardScaler()
        scaler._mean = _as_float64(arrays[f"{slot}/scaler_mean"])
        scaler._scale = _as_float64(arrays[f"{slot}/scaler_scale"])
        clf = RidgeClassifier(alphas=m["alphas"])
        clf.coef_ = _as_float64(arrays[f"{slot}/coef"])
        clf.intercept_ = float(m["intercept"])
        clf.alpha_ = float(m["alpha"])
        model._scaler = scaler
        model._classifier = clf
        model._fitted = True
        unpacked[slot] = model

    key_models = {
        slot[len("key/"):]: model
        for slot, model in unpacked.items()
        if slot.startswith("key/")
    }
    return restore_authenticator(
        meta["auth"],
        unpacked.get("full"),
        unpacked.get("fused"),
        key_models,
    )


def unpack_authenticator(packed: PackedAuthenticator) -> P2Auth:
    """Self-contained unpack of :func:`pack_authenticator` output."""
    cache: Dict[str, MiniRocket] = {}

    def resolve(fingerprint: str) -> MiniRocket:
        rocket = cache.get(fingerprint)
        if rocket is None:
            rocket = decode_extractor(packed.extractors[fingerprint])
            cache[fingerprint] = rocket
        return rocket

    return unpack_record(packed.record, resolve)
