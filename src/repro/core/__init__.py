"""P2Auth core: the paper's primary contribution.

The workflow of Fig. 4, end to end: preprocessing (`pipeline`), input
case identification (`input_case`), privacy-boost waveform fusion
(`fusion`), PIN verification (`pin`), enrollment (`enrollment`),
authentication with results integration (`authentication`), the
:class:`P2Auth` facade (`authenticator`), and the attack models
(`attacks`).
"""

from .attacks import EmulatingAttacker, RandomAttacker
from .authentication import AuthDecision, authenticate_preprocessed
from .authenticator import P2Auth
from .degradation import DegradationEvent, DegradationPolicy, apply_policy
from .persistence import load_authenticator, save_authenticator
from .session import RetryPolicy, SessionEvent, SessionManager, SessionState
from .streaming import DetectedKeystroke, StreamingKeystrokeDetector
from .wear import WearStatus, detect_wear
from .enrollment import (
    EnrolledModels,
    EnrollmentOptions,
    NegativeBank,
    SharedNegativeSet,
    WaveformModel,
    build_negative_bank,
    check_enrollment_quality,
    enroll_models,
    extract_full_waveform,
    extract_fused_waveform,
    extract_segments,
)
from .fusion import fuse_waveforms
from .input_case import identify_input_case
from .pin import PinVerifier
from .pipeline import PreprocessedTrial, preprocess_trial, preprocess_trials

__all__ = [
    "AuthDecision",
    "DegradationEvent",
    "DegradationPolicy",
    "DetectedKeystroke",
    "EmulatingAttacker",
    "EnrolledModels",
    "EnrollmentOptions",
    "NegativeBank",
    "P2Auth",
    "RetryPolicy",
    "SharedNegativeSet",
    "PinVerifier",
    "PreprocessedTrial",
    "RandomAttacker",
    "SessionEvent",
    "SessionManager",
    "SessionState",
    "StreamingKeystrokeDetector",
    "WaveformModel",
    "WearStatus",
    "apply_policy",
    "authenticate_preprocessed",
    "build_negative_bank",
    "check_enrollment_quality",
    "detect_wear",
    "enroll_models",
    "load_authenticator",
    "extract_full_waveform",
    "extract_fused_waveform",
    "extract_segments",
    "fuse_waveforms",
    "identify_input_case",
    "preprocess_trial",
    "preprocess_trials",
    "save_authenticator",
]
