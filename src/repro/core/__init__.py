"""P2Auth core: the paper's primary contribution.

The workflow of Fig. 4, end to end: preprocessing (`pipeline`), input
case identification (`input_case`), privacy-boost waveform fusion
(`fusion`), PIN verification (`pin`), enrollment (`enrollment`, a
façade over the `models` / `negatives` / `enroll` split),
authentication through the staged engine (`stages`), the
:class:`P2Auth` facade (`authenticator`), the multi-user
:class:`ModelRegistry` (`registry`), and the attack models (`attacks`).
"""

from .attacks import EmulatingAttacker, RandomAttacker
from .authentication import AuthDecision, authenticate_preprocessed
from .authenticator import P2Auth
from .backends import PackedArenaBackend, ShardedPackedBackend
from .degradation import DegradationEvent, DegradationPolicy, apply_policy
from .hotpath import HotAuthPipeline
from .packing import (
    PackedAuthenticator,
    pack_authenticator,
    unpack_authenticator,
)
from .persistence import (
    load_authenticator,
    load_session,
    save_authenticator,
)
from .registry import (
    ModelRegistry,
    NpzDirectoryBackend,
    RegistryBackend,
    backend_exists,
)
from .session import (
    LockoutStatus,
    RetryPolicy,
    SessionEvent,
    SessionManager,
    SessionState,
)
from .stages import (
    AuthPipeline,
    ClassifyStage,
    DecideStage,
    FeatureBlock,
    Features,
    FeaturizeStage,
    Preprocessed,
    PreprocessStage,
    Recording,
    Repaired,
    RepairStage,
    Scores,
    SegmentStage,
    Segments,
    Stage,
)
from .streaming import (
    DetectedKeystroke,
    StreamingAuthenticator,
    StreamingKeystrokeDetector,
)
from .wear import WearStatus, detect_wear
from .enrollment import (
    EnrolledModels,
    EnrollmentOptions,
    NegativeBank,
    SharedNegativeSet,
    WaveformModel,
    build_negative_bank,
    check_enrollment_quality,
    enroll_models,
    extract_full_waveform,
    extract_fused_waveform,
    extract_segments,
)
from .fusion import fuse_waveforms
from .input_case import identify_input_case
from .pin import PinVerifier
from .pipeline import PreprocessedTrial, preprocess_trial, preprocess_trials

__all__ = [
    "AuthDecision",
    "AuthPipeline",
    "ClassifyStage",
    "DecideStage",
    "DegradationEvent",
    "DegradationPolicy",
    "DetectedKeystroke",
    "EmulatingAttacker",
    "EnrolledModels",
    "EnrollmentOptions",
    "FeatureBlock",
    "Features",
    "FeaturizeStage",
    "HotAuthPipeline",
    "ModelRegistry",
    "NegativeBank",
    "NpzDirectoryBackend",
    "P2Auth",
    "PackedArenaBackend",
    "PackedAuthenticator",
    "ShardedPackedBackend",
    "Preprocessed",
    "PreprocessStage",
    "Recording",
    "RegistryBackend",
    "Repaired",
    "RepairStage",
    "LockoutStatus",
    "RetryPolicy",
    "Scores",
    "SegmentStage",
    "Segments",
    "SharedNegativeSet",
    "Stage",
    "PinVerifier",
    "PreprocessedTrial",
    "RandomAttacker",
    "SessionEvent",
    "SessionManager",
    "SessionState",
    "StreamingAuthenticator",
    "StreamingKeystrokeDetector",
    "WaveformModel",
    "WearStatus",
    "apply_policy",
    "authenticate_preprocessed",
    "backend_exists",
    "build_negative_bank",
    "check_enrollment_quality",
    "detect_wear",
    "enroll_models",
    "load_authenticator",
    "load_session",
    "pack_authenticator",
    "unpack_authenticator",
    "extract_full_waveform",
    "extract_fused_waveform",
    "extract_segments",
    "fuse_waveforms",
    "identify_input_case",
    "preprocess_trial",
    "preprocess_trials",
    "save_authenticator",
]
