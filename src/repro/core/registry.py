"""Multi-user model registry: many enrolled users in one process.

A deployed authentication service holds templates for many users, not
one. :class:`ModelRegistry` separates template storage from the
:class:`~repro.core.authenticator.P2Auth` façade: each user maps to
their own enrolled authenticator, an LRU bound caps how many live in
memory, and a pluggable :class:`RegistryBackend` (the bundled
:class:`NpzDirectoryBackend` reuses :mod:`repro.core.persistence`)
keeps evicted or restarted users loadable. The registry never touches
the authentication path — a user's ``P2Auth`` behaves identically
whether it came from :meth:`ModelRegistry.enroll`, a backend load, or
direct construction.
"""

from __future__ import annotations

import os
import re
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Protocol, Sequence, Tuple, Union

import numpy as np

from ..concurrency import assert_owned, checked_rlock
from ..config import PipelineConfig
from ..errors import (
    AuthenticationError,
    ConfigurationError,
    EnrollmentError,
    NotFittedError,
)
from ..features import transform_stacked
from ..types import PinEntryTrial
from .artifacts import FeatureBlock, Features, Recording
from .authenticator import P2Auth
from .degradation import DegradationPolicy
from .enrollment import EnrollmentOptions, NegativeBank
from .models import WaveformModel
from .stages import AuthDecision

_USER_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def _check_user_id(user_id: str) -> str:
    if not _USER_ID_RE.match(user_id):
        raise ConfigurationError(
            f"invalid user id {user_id!r}: use 1-64 characters from "
            "[A-Za-z0-9._-]"
        )
    return user_id


class RegistryBackend(Protocol):
    """Persistence behind a :class:`ModelRegistry`.

    Implementations store whole enrolled authenticators keyed by user
    id. The registry performs backend I/O *outside* its lock — a slow
    load of one user must not stall authentications of users already
    in memory — so ``load`` may be called concurrently (including for
    the same id when two threads miss at once; the registry keeps one
    winner). Implementations therefore need to tolerate concurrent
    calls; the bundled file-per-user backend does so naturally.
    """

    def store(self, user_id: str, auth: P2Auth) -> None:
        """Persist one enrolled authenticator."""
        ...

    def load(self, user_id: str) -> P2Auth:
        """Reload a stored authenticator (KeyError when absent)."""
        ...

    def delete(self, user_id: str) -> None:
        """Forget a stored user (no-op when absent)."""
        ...

    def user_ids(self) -> List[str]:
        """All stored user ids."""
        ...

    def exists(self, user_id: str) -> bool:
        """Whether ``user_id`` is stored, without loading any model.

        Backends with a cheap membership probe (an index hit, a
        ``stat``) should override this; the default scans
        :meth:`user_ids`.
        """
        return user_id in self.user_ids()

    def __contains__(self, user_id: str) -> bool:
        return self.exists(user_id)


def backend_exists(backend: RegistryBackend, user_id: str) -> bool:
    """Membership probe that tolerates minimal duck-typed backends.

    Uses the backend's ``exists`` when it has one; otherwise falls back
    to scanning ``user_ids()`` — the pre-``exists`` protocol surface —
    so registries keep working with third-party backends that only
    implement store/load/delete/user_ids.
    """
    probe = getattr(backend, "exists", None)
    if callable(probe):
        return bool(probe(user_id))
    return user_id in backend.user_ids()


class NpzDirectoryBackend:
    """One ``.npz`` archive per user in a directory.

    Reuses :func:`~repro.core.persistence.save_authenticator` /
    :func:`~repro.core.persistence.load_authenticator`, so the same
    serializability rules apply (rocket+ridge models only).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._tmp = self._root / ".tmp"
        self._tmp.mkdir(exist_ok=True)

    def _path(self, user_id: str) -> Path:
        return self._root / f"{_check_user_id(user_id)}.npz"

    def store(self, user_id: str, auth: P2Auth) -> None:
        from .persistence import save_authenticator

        # Write-then-rename: a concurrent load of the same id sees
        # either the old complete archive or the new one, never a
        # half-written file. The staging dir keeps temp files out of
        # the ``*.npz`` glob.
        path = self._path(user_id)
        fd, tmp_name = tempfile.mkstemp(suffix=".npz", dir=self._tmp)
        try:
            with os.fdopen(fd, "wb") as handle:
                save_authenticator(auth, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise

    def load(self, user_id: str) -> P2Auth:
        from .persistence import load_authenticator

        # No exists() pre-check: a concurrent delete between the check
        # and the open would surface as FileNotFoundError anyway, so
        # map that directly to the protocol's KeyError.
        try:
            return load_authenticator(self._path(user_id))
        except FileNotFoundError:
            raise KeyError(user_id) from None

    def delete(self, user_id: str) -> None:
        self._path(user_id).unlink(missing_ok=True)

    def exists(self, user_id: str) -> bool:
        """Membership via one ``stat`` — no archive parsing.

        Invalid ids are simply absent (``False``), matching
        :meth:`user_ids` never listing them.
        """
        if not _USER_ID_RE.match(user_id):
            return False
        return self._path(user_id).exists()

    def __contains__(self, user_id: str) -> bool:
        return self.exists(user_id)

    def user_ids(self) -> List[str]:
        # Skip stems that fail the user-id grammar (stray files, or
        # ids load() would reject): every listed id must round-trip.
        return sorted(
            p.stem
            for p in self._root.glob("*.npz")
            if _USER_ID_RE.match(p.stem)
        )


class ModelRegistry:
    """Enrolled authenticators for many users, LRU-bounded in memory.

    Args:
        capacity: maximum authenticators held in memory; ``None`` means
            unbounded. When the bound is hit, the least recently used
            user is dropped from memory (their templates survive in the
            backend, if one is configured).
        backend: optional persistence backend. Enrollments are written
            through immediately; a :meth:`get` for a user not in memory
            falls back to a backend load.
        config: pipeline constants for authenticators built by
            :meth:`enroll`.
        options: enrollment options for :meth:`enroll`.
        policy: degradation policy for :meth:`enroll`-built
            authenticators.

    All public methods are thread-safe; enrollment (the expensive part)
    runs outside the lock, so concurrent enrollments of different users
    proceed in parallel.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        backend: Optional[RegistryBackend] = None,
        config: Optional[PipelineConfig] = None,
        options: Optional[EnrollmentOptions] = None,
        policy: Optional[DegradationPolicy] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ConfigurationError("capacity must be >= 1 (or None)")
        self._capacity = capacity
        self._backend = backend
        self._config = config
        self._options = options
        self._policy = policy
        self._cache: "OrderedDict[str, P2Auth]" = OrderedDict()  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock
        self._lock = checked_rlock("ModelRegistry._lock")

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def __contains__(self, user_id: str) -> bool:
        with self._lock:
            if user_id in self._cache:
                return True
        if self._backend is not None:
            # Membership probe, not a directory scan: O(1) for
            # backends with an exists() (all bundled ones).
            return backend_exists(self._backend, user_id)
        return False

    @property
    def stats(self) -> Dict[str, int]:
        """Cache counters: ``hits`` / ``misses`` / ``evictions``.

        A hit is a :meth:`get` served from memory; a miss is one that
        went to the backend (or raised); an eviction is an LRU drop by
        the capacity bound (explicit :meth:`evict` calls don't count).
        """
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def enroll(
        self,
        user_id: str,
        pin: Optional[str],
        legit_trials: Sequence[PinEntryTrial],
        third_party_trials: Sequence[PinEntryTrial],
        shared_negatives: Optional[NegativeBank] = None,
        salt: Optional[bytes] = None,
    ) -> P2Auth:
        """Enroll (or re-enroll) a user and register their models.

        Builds a fresh :class:`P2Auth` under the registry's config /
        options / policy, trains it, then registers it under
        ``user_id`` (write-through to the backend when one is set).
        """
        _check_user_id(user_id)
        auth = P2Auth(
            pin=pin,
            pipeline_config=self._config,
            options=self._options,
            salt=salt,
            policy=self._policy,
        )
        auth.enroll(
            legit_trials, third_party_trials, shared_negatives=shared_negatives
        )
        self.add(user_id, auth)
        return auth

    def add(self, user_id: str, auth: P2Auth) -> None:
        """Register an already-enrolled authenticator under ``user_id``."""
        _check_user_id(user_id)
        if not auth.enrolled:
            raise ConfigurationError(
                f"cannot register {user_id!r}: the authenticator has no "
                "enrolled models"
            )
        if self._backend is not None:
            self._backend.store(user_id, auth)
        # Warm outside the lock for the same reason loads run outside
        # it: the one-off costs (C-kernel plan marshalling, cached
        # factorizations) must not stall concurrent registry calls.
        auth.warmup()
        with self._lock:
            self._cache[user_id] = auth
            self._cache.move_to_end(user_id)
            self._shrink()

    def get(self, user_id: str) -> P2Auth:
        """The user's authenticator (memory hit or backend load).

        Backend loads — disk reads plus model reconstruction, the slow
        path — run *outside* the registry lock, so two threads missing
        on different users load in parallel instead of serializing
        behind one another (pinned by ``tests/core/test_registry.py``).
        Each loaded authenticator is warmed before it is published:
        the first probe against it pays none of the one-off costs.
        When two threads race on the same user, the first to publish
        wins and the loser's copy is discarded, so every caller sees
        one canonical instance per user.

        Raises:
            KeyError: when the user is in neither memory nor backend.
        """
        with self._lock:
            auth = self._cache.get(user_id)
            if auth is not None:
                self._hits += 1
                self._cache.move_to_end(user_id)
                return auth
            self._misses += 1
            if self._backend is None:
                raise KeyError(user_id)
        loaded = self._backend.load(user_id)
        loaded.warmup()
        with self._lock:
            auth = self._cache.get(user_id)
            if auth is not None:
                # A racing loader (or add) published first; theirs is
                # the canonical instance.
                self._cache.move_to_end(user_id)
                return auth
            self._cache[user_id] = loaded
            self._shrink()
            return loaded

    def authenticate(
        self,
        user_id: str,
        trial: PinEntryTrial,
        claimed_pin: Optional[str] = None,
    ) -> AuthDecision:
        """Authenticate a probe against one user's models."""
        return self.get(user_id).authenticate(trial, claimed_pin=claimed_pin)

    @staticmethod
    def _enqueue_featurize(
        pending: List[Tuple[WaveformModel, np.ndarray]],
        model: WaveformModel,
        x: np.ndarray,
    ) -> int:
        # The pre-transform half of stages._featurize_one, with the
        # transform itself deferred so same-shape tasks can stack.
        if not model._fitted:
            raise NotFittedError("WaveformModel.fit has not been called")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2:
            x = x[np.newaxis]
        pending.append((model, x))
        return len(pending) - 1

    @staticmethod
    def _run_featurize_tasks(
        pending: List[Tuple[WaveformModel, np.ndarray]],
    ) -> List[np.ndarray]:
        """Compute each pending task's standardized feature row.

        Single-instance rocket tasks whose extractors share a fitted
        shape and dilation schedule are stacked into one compiled
        transform call carrying per-instance bias tables
        (:func:`~repro.features.transform_stacked`); everything else —
        manual/raw models, odd shapes, no compiled kernel — falls back
        to the per-task ``_featurize`` the staged engine runs. Either
        way each task's features are bit-identical to its solo call:
        the kernel processes instances independently and the
        standardization is row-wise.
        """
        features_out: List[Optional[np.ndarray]] = [None] * len(pending)
        groups: Dict[tuple, List[int]] = {}
        for ti, (model, x) in enumerate(pending):
            rocket = model._rocket
            if (
                model.feature_method == "rocket"
                and rocket is not None
                and rocket._fitted
                and model._scaler is not None
                and x.shape[0] == 1
            ):
                key = (
                    x.shape,
                    tuple(int(d) for d in rocket._dilations),
                    tuple(int(f) for f in rocket._features_per_dilation),
                )
                groups.setdefault(key, []).append(ti)
            else:
                features_out[ti] = model._featurize(x, fit=False)
        for task_ids in groups.values():
            raw = None
            if len(task_ids) > 1:
                stacked = np.concatenate(
                    [pending[ti][1] for ti in task_ids], axis=0
                )
                raw = transform_stacked(
                    [pending[ti][0]._rocket for ti in task_ids], stacked
                )
            if raw is None:
                for ti in task_ids:
                    model, x = pending[ti]
                    features_out[ti] = model._featurize(x, fit=False)
            else:
                for j, ti in enumerate(task_ids):
                    scaler = pending[ti][0]._scaler
                    assert scaler is not None
                    features_out[ti] = scaler.transform(raw[j : j + 1])
        return [f for f in features_out if f is not None]

    def authenticate_many(
        self,
        user_ids: Sequence[str],
        trials: Sequence[PinEntryTrial],
        claimed_pins: Optional[Sequence[Optional[str]]] = None,
    ) -> List[AuthDecision]:
        """Authenticate a batch of probes, each against its own user.

        Decision-for-decision identical to calling :meth:`authenticate`
        per item (pinned by ``tests/test_stage_parity.py``), but the
        heavy stages batch *across users*:

        - preprocessing groups items by pipeline config, so same-shape
          trials of different users detrend as one banded solve;
        - feature extraction stacks same-schedule probes into a single
          compiled MiniRocket call with per-instance bias tables — one
          kernel invocation serves every user in the batch.

        Wrong-PIN probes short-circuit before any signal processing,
        exactly as in the single-probe path. Errors surface in stage
        order (lookup, PIN, preprocess, featurize) rather than strict
        item order; the decisions themselves never differ from the
        loop.

        Args:
            user_ids: claimed identity per probe, aligned with
                ``trials``.
            trials: the probe trials.
            claimed_pins: entered PINs, aligned with ``trials``; each
                ``None`` entry defaults to that trial's recorded
                digits.
        """
        if len(user_ids) != len(trials):
            raise ConfigurationError(
                f"got {len(trials)} trials but {len(user_ids)} user ids"
            )
        if claimed_pins is None:
            claimed_pins = [None] * len(trials)
        if len(claimed_pins) != len(trials):
            raise EnrollmentError(
                f"got {len(trials)} trials but {len(claimed_pins)} PINs"
            )
        auths = [self.get(user_id) for user_id in user_ids]
        pipelines = [auth.pipeline for auth in auths]
        verdicts = [
            auth._pin_verdict(trial, pin)
            for auth, trial, pin in zip(auths, trials, claimed_pins)
        ]

        results: List[Optional[AuthDecision]] = [None] * len(trials)
        live: List[int] = []
        for i, (pipeline, verdict) in enumerate(zip(pipelines, verdicts)):
            if not pipeline.no_pin_mode:
                if verdict is None:
                    raise AuthenticationError(
                        "pin_ok is required outside NO-PIN mode"
                    )
                if not verdict:
                    results[i] = AuthDecision(
                        accepted=False,
                        reason="PIN verification failed",
                        pin_ok=False,
                    )
                    continue
            live.append(i)

        # Repair per item (each user's own degradation policy) ...
        repaired = {
            i: pipelines[i].repair.run(
                [Recording(trial=trials[i], pin_ok=verdicts[i])]
            )[0]
            for i in live
        }
        # ... then preprocess batched by config: the batch members are
        # per-trial independent (shape-grouped stacked detrend solves
        # each right-hand side on its own), so outputs match the
        # per-item runs bit for bit.
        config_groups: Dict[PipelineConfig, List[int]] = {}
        for i in live:
            config_groups.setdefault(pipelines[i].config, []).append(i)
        pre = {}
        for idxs in config_groups.values():
            outs = pipelines[idxs[0]].preprocess.run(
                [repaired[i] for i in idxs]
            )
            pre.update(zip(idxs, outs))

        # Segment per item, deferring each block's feature transform.
        pending: List[Tuple[WaveformModel, np.ndarray]] = []
        item_blocks: Dict[
            int, List[Tuple[Optional[str], Optional[WaveformModel],
                            Optional[int]]]
        ] = {}
        segs = {}
        for i in live:
            seg = pipelines[i].segment.run([pre[i]])[0]
            segs[i] = seg
            models = pipelines[i].models
            entries: List[
                Tuple[Optional[str], Optional[WaveformModel], Optional[int]]
            ] = []
            if seg.route == "keystrokes":
                for segment in seg.segments:
                    model = models.key_models.get(segment.key)
                    if model is None:
                        entries.append((segment.key, None, None))
                    else:
                        entries.append((
                            segment.key,
                            model,
                            self._enqueue_featurize(
                                pending, model, segment.samples
                            ),
                        ))
            elif seg.route in ("full", "fused"):
                model = (
                    models.fused_model
                    if seg.route == "fused"
                    else models.full_model
                )
                assert model is not None and seg.waveform is not None
                entries.append((
                    None,
                    model,
                    self._enqueue_featurize(pending, model, seg.waveform),
                ))
            item_blocks[i] = entries

        task_features = self._run_featurize_tasks(pending)

        for i in live:
            seg = segs[i]
            blocks = tuple(
                FeatureBlock(
                    key, model, None if ti is None else task_features[ti]
                )
                for key, model, ti in item_blocks[i]
            )
            features = Features(
                case=seg.case,
                route=seg.route,
                detected=seg.detected,
                blocks=blocks,
                label=seg.label,
                pin_ok=seg.pin_ok,
                degradation=seg.degradation,
            )
            scores = pipelines[i].classify.run([features])[0]
            results[i] = pipelines[i].decide.run([scores])[0]
        return [r for r in results if r is not None]

    def evict(self, user_id: str) -> bool:
        """Drop a user from memory (backend copy, if any, is kept).

        Returns:
            whether the user was in memory.
        """
        with self._lock:
            return self._cache.pop(user_id, None) is not None

    def remove(self, user_id: str) -> None:
        """Forget a user entirely: memory and backend."""
        with self._lock:
            self._cache.pop(user_id, None)
        if self._backend is not None:
            self._backend.delete(user_id)

    def list_users(self) -> List[str]:
        """All known user ids (memory plus backend), sorted."""
        with self._lock:
            known = set(self._cache)
        if self._backend is not None:
            known.update(self._backend.user_ids())
        return sorted(known)

    def cached_users(self) -> List[str]:
        """User ids currently in memory, least recently used first."""
        with self._lock:
            return list(self._cache)

    def warm_users(self) -> frozenset:
        """Snapshot of the user ids currently warm (in memory).

        Cheap — one locked set copy, no backend I/O — so benchmarks and
        the service's admin endpoint can split cold-vs-warm traffic
        without perturbing the LRU order (unlike :meth:`get`, this
        never counts as a use).
        """
        with self._lock:
            return frozenset(self._cache)

    def describe(self) -> Dict[str, object]:
        """Admin metadata: capacity, backend kind, occupancy, counters.

        The payload behind the service's ``/admin/stats`` endpoint.
        ``backend`` is the backend class name (``None`` when the
        registry is memory-only); ``stats`` embeds the hit/miss/
        eviction counters of :attr:`stats`.
        """
        with self._lock:
            cached = len(self._cache)
            stats = {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }
        return {
            "capacity": self._capacity,
            "backend": (
                None if self._backend is None else type(self._backend).__name__
            ),
            "cached_users": cached,
            "stats": stats,
        }

    def _shrink(self) -> None:  # guarded-by: caller
        assert_owned(self._lock, "ModelRegistry._shrink")
        if self._capacity is None:
            return
        while len(self._cache) > self._capacity:
            self._cache.popitem(last=False)
            self._evictions += 1


__all__ = [
    "ModelRegistry",
    "NpzDirectoryBackend",
    "RegistryBackend",
    "backend_exists",
]
