"""Multi-user model registry: many enrolled users in one process.

A deployed authentication service holds templates for many users, not
one. :class:`ModelRegistry` separates template storage from the
:class:`~repro.core.authenticator.P2Auth` façade: each user maps to
their own enrolled authenticator, an LRU bound caps how many live in
memory, and a pluggable :class:`RegistryBackend` (the bundled
:class:`NpzDirectoryBackend` reuses :mod:`repro.core.persistence`)
keeps evicted or restarted users loadable. The registry never touches
the authentication path — a user's ``P2Auth`` behaves identically
whether it came from :meth:`ModelRegistry.enroll`, a backend load, or
direct construction.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from pathlib import Path
from typing import List, Optional, Protocol, Sequence, Union

from ..config import PipelineConfig
from ..errors import ConfigurationError
from ..types import PinEntryTrial
from .authenticator import P2Auth
from .degradation import DegradationPolicy
from .enrollment import EnrollmentOptions, NegativeBank
from .stages import AuthDecision

_USER_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def _check_user_id(user_id: str) -> str:
    if not _USER_ID_RE.match(user_id):
        raise ConfigurationError(
            f"invalid user id {user_id!r}: use 1-64 characters from "
            "[A-Za-z0-9._-]"
        )
    return user_id


class RegistryBackend(Protocol):
    """Persistence behind a :class:`ModelRegistry`.

    Implementations store whole enrolled authenticators keyed by user
    id. They need not be thread-safe — the registry serializes access.
    """

    def store(self, user_id: str, auth: P2Auth) -> None:
        """Persist one enrolled authenticator."""
        ...

    def load(self, user_id: str) -> P2Auth:
        """Reload a stored authenticator (KeyError when absent)."""
        ...

    def delete(self, user_id: str) -> None:
        """Forget a stored user (no-op when absent)."""
        ...

    def user_ids(self) -> List[str]:
        """All stored user ids."""
        ...


class NpzDirectoryBackend:
    """One ``.npz`` archive per user in a directory.

    Reuses :func:`~repro.core.persistence.save_authenticator` /
    :func:`~repro.core.persistence.load_authenticator`, so the same
    serializability rules apply (rocket+ridge models only).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    def _path(self, user_id: str) -> Path:
        return self._root / f"{_check_user_id(user_id)}.npz"

    def store(self, user_id: str, auth: P2Auth) -> None:
        from .persistence import save_authenticator

        save_authenticator(auth, self._path(user_id))

    def load(self, user_id: str) -> P2Auth:
        from .persistence import load_authenticator

        path = self._path(user_id)
        if not path.exists():
            raise KeyError(user_id)
        return load_authenticator(path)

    def delete(self, user_id: str) -> None:
        self._path(user_id).unlink(missing_ok=True)

    def user_ids(self) -> List[str]:
        return sorted(p.stem for p in self._root.glob("*.npz"))


class ModelRegistry:
    """Enrolled authenticators for many users, LRU-bounded in memory.

    Args:
        capacity: maximum authenticators held in memory; ``None`` means
            unbounded. When the bound is hit, the least recently used
            user is dropped from memory (their templates survive in the
            backend, if one is configured).
        backend: optional persistence backend. Enrollments are written
            through immediately; a :meth:`get` for a user not in memory
            falls back to a backend load.
        config: pipeline constants for authenticators built by
            :meth:`enroll`.
        options: enrollment options for :meth:`enroll`.
        policy: degradation policy for :meth:`enroll`-built
            authenticators.

    All public methods are thread-safe; enrollment (the expensive part)
    runs outside the lock, so concurrent enrollments of different users
    proceed in parallel.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        backend: Optional[RegistryBackend] = None,
        config: Optional[PipelineConfig] = None,
        options: Optional[EnrollmentOptions] = None,
        policy: Optional[DegradationPolicy] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ConfigurationError("capacity must be >= 1 (or None)")
        self._capacity = capacity
        self._backend = backend
        self._config = config
        self._options = options
        self._policy = policy
        self._cache: "OrderedDict[str, P2Auth]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def __contains__(self, user_id: str) -> bool:
        with self._lock:
            if user_id in self._cache:
                return True
        if self._backend is not None:
            return user_id in self._backend.user_ids()
        return False

    def enroll(
        self,
        user_id: str,
        pin: Optional[str],
        legit_trials: Sequence[PinEntryTrial],
        third_party_trials: Sequence[PinEntryTrial],
        shared_negatives: Optional[NegativeBank] = None,
        salt: Optional[bytes] = None,
    ) -> P2Auth:
        """Enroll (or re-enroll) a user and register their models.

        Builds a fresh :class:`P2Auth` under the registry's config /
        options / policy, trains it, then registers it under
        ``user_id`` (write-through to the backend when one is set).
        """
        _check_user_id(user_id)
        auth = P2Auth(
            pin=pin,
            pipeline_config=self._config,
            options=self._options,
            salt=salt,
            policy=self._policy,
        )
        auth.enroll(
            legit_trials, third_party_trials, shared_negatives=shared_negatives
        )
        self.add(user_id, auth)
        return auth

    def add(self, user_id: str, auth: P2Auth) -> None:
        """Register an already-enrolled authenticator under ``user_id``."""
        _check_user_id(user_id)
        if not auth.enrolled:
            raise ConfigurationError(
                f"cannot register {user_id!r}: the authenticator has no "
                "enrolled models"
            )
        if self._backend is not None:
            self._backend.store(user_id, auth)
        with self._lock:
            self._cache[user_id] = auth
            self._cache.move_to_end(user_id)
            self._shrink()

    def get(self, user_id: str) -> P2Auth:
        """The user's authenticator (memory hit or backend load).

        Raises:
            KeyError: when the user is in neither memory nor backend.
        """
        with self._lock:
            auth = self._cache.get(user_id)
            if auth is not None:
                self._cache.move_to_end(user_id)
                return auth
            if self._backend is None:
                raise KeyError(user_id)
            auth = self._backend.load(user_id)
            self._cache[user_id] = auth
            self._cache.move_to_end(user_id)
            self._shrink()
            return auth

    def authenticate(
        self,
        user_id: str,
        trial: PinEntryTrial,
        claimed_pin: Optional[str] = None,
    ) -> AuthDecision:
        """Authenticate a probe against one user's models."""
        return self.get(user_id).authenticate(trial, claimed_pin=claimed_pin)

    def evict(self, user_id: str) -> bool:
        """Drop a user from memory (backend copy, if any, is kept).

        Returns:
            whether the user was in memory.
        """
        with self._lock:
            return self._cache.pop(user_id, None) is not None

    def remove(self, user_id: str) -> None:
        """Forget a user entirely: memory and backend."""
        with self._lock:
            self._cache.pop(user_id, None)
        if self._backend is not None:
            self._backend.delete(user_id)

    def list_users(self) -> List[str]:
        """All known user ids (memory plus backend), sorted."""
        with self._lock:
            known = set(self._cache)
        if self._backend is not None:
            known.update(self._backend.user_ids())
        return sorted(known)

    def cached_users(self) -> List[str]:
        """User ids currently in memory, least recently used first."""
        with self._lock:
            return list(self._cache)

    def _shrink(self) -> None:
        # Caller holds the lock.
        if self._capacity is None:
            return
        while len(self._cache) > self._capacity:
            self._cache.popitem(last=False)


__all__ = [
    "ModelRegistry",
    "NpzDirectoryBackend",
    "RegistryBackend",
]
