"""Attack models of Section IV-D.

Both attackers are other simulated people trying to pass the victim's
authenticator:

- :class:`RandomAttacker` — knows nothing about the victim; guesses a
  random PIN and types it in their own natural style.
- :class:`EmulatingAttacker` — has shoulder-surfed the victim: knows
  the legitimate PIN and imitates the victim's typing *rhythm*. Their
  physiology (artifact response field, tissue structure, wearing
  geometry) remains their own, which is exactly what the paper argues
  cannot be mimicked through observation.

Neither attacker has access to the stored PPG templates or models.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..physio.ppg import TrialSynthesizer
from ..physio.user import UserProfile
from ..types import PinEntryTrial


class RandomAttacker:
    """Attacker with no knowledge of the victim.

    Args:
        profile: the attacker's own user profile.
        synthesizer: trial synthesizer shared with the study.
        rng: randomness source.
        pin_length: length of guessed PINs.
    """

    def __init__(
        self,
        profile: UserProfile,
        synthesizer: TrialSynthesizer,
        rng: np.random.Generator,
        pin_length: int = 4,
    ) -> None:
        if pin_length < 1:
            raise ConfigurationError("PIN length must be >= 1")
        self.profile = profile
        self._synth = synthesizer
        self._rng = rng
        self.pin_length = pin_length

    def guess_pin(self) -> str:
        """Draw a uniformly random PIN guess."""
        digits = self._rng.integers(0, 10, size=self.pin_length)
        return "".join(str(d) for d in digits)

    def attempt(self, one_handed: bool = True) -> PinEntryTrial:
        """Produce one attack trial with a fresh random PIN guess."""
        return self._synth.synthesize_trial(
            self.profile,
            self.guess_pin(),
            self._rng,
            one_handed=one_handed,
        )


class EmulatingAttacker:
    """Attacker who observed the victim's PIN and typing rhythm.

    Args:
        profile: the attacker's own user profile.
        victim: the observed victim (supplies PIN rhythm only —
            the attacker cannot copy physiology).
        synthesizer: trial synthesizer shared with the study.
        rng: randomness source.
    """

    def __init__(
        self,
        profile: UserProfile,
        victim: UserProfile,
        synthesizer: TrialSynthesizer,
        rng: np.random.Generator,
    ) -> None:
        self.profile = profile
        self.victim = victim
        self._synth = synthesizer
        self._rng = rng

    def attempt(
        self,
        victim_pin: str,
        one_handed: bool = True,
        forced_left_count: Optional[int] = None,
    ) -> PinEntryTrial:
        """Type the victim's PIN while imitating the victim's rhythm."""
        return self._synth.synthesize_trial(
            self.profile,
            victim_pin,
            self._rng,
            one_handed=one_handed,
            forced_left_count=forced_left_count,
            rhythm_from=self.victim,
        )
