"""Privacy-boost waveform fusion (Eq. 4 of the paper).

Keystroke-induced PPG is a biometric: if the per-key waveforms leak,
they are compromised forever. The privacy boost hides them by fusing
the K single-keystroke waveforms additively,

.. math::

    S = \\sum_{h=1}^{K} P^h_{u,s},

so the stored template reveals only the superposition. Fusion loses
some information (the paper accepts a drop from ~98% to ~83% accuracy
for the security gain), which the evaluation reproduces.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SignalError
from ..types import SegmentedKeystroke


def fuse_waveforms(segments: Sequence[SegmentedKeystroke]) -> np.ndarray:
    """Additively fuse single-keystroke waveforms (Eq. 4).

    Args:
        segments: the single-keystroke segments of one trial; all must
            share the same shape.

    Returns:
        Fused waveform of shape ``(n_channels, window)``.

    Raises:
        SignalError: if no segments are given or shapes disagree.
    """
    if not segments:
        raise SignalError("cannot fuse an empty set of waveforms")
    shapes = {segment.samples.shape for segment in segments}
    if len(shapes) != 1:
        raise SignalError(f"segments must share a shape, got {shapes}")
    return np.sum([segment.samples for segment in segments], axis=0)
