"""Saving and loading enrolled authenticators.

A deployed P2Auth keeps its models on the device between sessions.
This module serializes an enrolled :class:`~repro.core.authenticator.
P2Auth` — the ridge coefficients, scaler statistics, MiniRocket bias
tables, enrollment options, and the salted PIN digest — into a single
``.npz`` archive. Only the ROCKET + ridge configuration (the paper's
deployed combination) is serializable; research configurations with
custom classifiers must be re-enrolled.

The stored template is exactly what the paper's privacy analysis talks
about: with the privacy boost enabled, the archive contains only
fused-waveform statistics, never per-key waveforms.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import IO, Any, Dict, Mapping, Optional, Union

import numpy as np

from ..config import PipelineConfig
from ..errors import ConfigurationError, PersistenceError
from ..features import MiniRocket
from ..ml import RidgeClassifier, StandardScaler
from .authenticator import P2Auth
from .degradation import DegradationPolicy
from .enrollment import EnrolledModels, EnrollmentOptions, WaveformModel
from .session import RetryPolicy, SessionManager

#: Format version written into every archive.
FORMAT_VERSION = 1


def _require_rocket_ridge(model: WaveformModel, name: str) -> None:
    classifier = type(model._classifier).__name__
    if model.feature_method != "rocket" or not isinstance(
        model._classifier, RidgeClassifier
    ):
        raise PersistenceError(
            f"model {name!r} uses the unsupported combination "
            f"(feature_method={model.feature_method!r}, "
            f"classifier={classifier!r}); only (feature_method='rocket', "
            "classifier='RidgeClassifier') is serializable"
        )


def _pack_model(model: WaveformModel, prefix: str, arrays: Dict[str, np.ndarray]) -> Dict:
    """Pack one WaveformModel into arrays + a JSON-able header."""
    _require_rocket_ridge(model, prefix)
    rocket: MiniRocket = model._rocket
    scaler: StandardScaler = model._scaler
    clf: RidgeClassifier = model._classifier
    if rocket is None or scaler is None or clf.coef_ is None:
        raise PersistenceError(f"model {prefix!r} is not fitted")

    rocket_header, rocket_arrays = rocket.get_state()
    for name, value in rocket_arrays.items():
        arrays[f"{prefix}/{name}"] = value
    arrays[f"{prefix}/scaler_mean"] = scaler._mean
    arrays[f"{prefix}/scaler_scale"] = scaler._scale
    arrays[f"{prefix}/coef"] = clf.coef_
    return {
        "num_features": rocket_header["num_features"],
        "max_dilations_per_kernel": rocket_header["max_dilations_per_kernel"],
        "rocket_seed": rocket_header["seed"],
        "n_channels": rocket_header["n_channels"],
        "input_length": rocket_header["input_length"],
        "n_bias_dilations": rocket_header["n_bias_dilations"],
        "intercept": float(clf.intercept_),
        "alpha": float(clf.alpha_),
        "alphas": list(clf.alphas),
        "balanced": model.balanced,
    }


def _unpack_model(
    header: Dict[str, Any], prefix: str, arrays: Mapping[str, np.ndarray]
) -> WaveformModel:
    """Rebuild one WaveformModel from arrays + its header."""
    model = WaveformModel(
        feature_method="rocket",
        num_features=int(header["num_features"]),
        seed=int(header["rocket_seed"]),
        balanced=bool(header["balanced"]),
    )
    rocket_header = {
        "num_features": header["num_features"],
        "max_dilations_per_kernel": header["max_dilations_per_kernel"],
        "seed": header["rocket_seed"],
        "n_channels": header["n_channels"],
        "input_length": header["input_length"],
        "n_bias_dilations": header["n_bias_dilations"],
    }
    rocket = MiniRocket.from_state(
        rocket_header,
        {
            name[len(prefix) + 1:]: value
            for name, value in arrays.items()
            if name.startswith(f"{prefix}/")
        },
    )

    scaler = StandardScaler()
    scaler._mean = arrays[f"{prefix}/scaler_mean"]
    scaler._scale = arrays[f"{prefix}/scaler_scale"]

    clf = RidgeClassifier(alphas=header["alphas"])
    clf.coef_ = arrays[f"{prefix}/coef"]
    clf.intercept_ = float(header["intercept"])
    clf.alpha_ = float(header["alpha"])

    model._rocket = rocket
    model._scaler = scaler
    model._classifier = clf
    model._fitted = True
    return model


def authenticator_meta(auth: P2Auth) -> Dict[str, Any]:
    """JSON-able enrollment metadata shared by the npz and packed formats.

    Captures everything *besides* the model arrays that a reload needs
    to behave identically: pipeline constants, enrollment options, the
    salted PIN digest, and the degradation policy. Model headers/arrays
    are format-specific and handled by the caller.
    """
    models = auth.models  # raises EnrollmentError when not enrolled
    options = models.options
    return {
        "no_pin_mode": auth.no_pin_mode,
        "pin_salt": auth._pin._salt.hex(),
        "pin_digest": auth._pin._digest.hex() if auth._pin._digest else None,
        "pipeline": {
            "fs": models.config.fs,
            "median_kernel": models.config.median_kernel,
            "sg_window": models.config.sg_window,
            "sg_polyorder": models.config.sg_polyorder,
            "calibration_window": models.config.calibration_window,
            "detrend_lambda": models.config.detrend_lambda,
            "energy_window": models.config.energy_window,
            "energy_threshold_ratio": models.config.energy_threshold_ratio,
            "segment_window": models.config.segment_window,
        },
        "options": {
            "privacy_boost": options.privacy_boost,
            "num_features": options.num_features,
            "full_window": options.full_window,
            "full_margin": options.full_margin,
            "feature_method": options.feature_method,
            "seed": options.seed,
            "min_positive_samples": options.min_positive_samples,
            "quality_gate": options.quality_gate,
            "min_quality_artifact_ratio": options.min_quality_artifact_ratio,
        },
        "policy": (
            dataclasses.asdict(auth.policy) if auth.policy is not None else None
        ),
    }


def restore_authenticator(
    meta: Mapping[str, Any],
    full_model: Optional[WaveformModel],
    fused_model: Optional[WaveformModel],
    key_models: Dict[str, WaveformModel],
) -> P2Auth:
    """Rebuild a ready-to-authenticate :class:`P2Auth` from
    :func:`authenticator_meta` output plus already-unpacked models."""
    config = PipelineConfig(**meta["pipeline"])
    options = EnrollmentOptions(**meta["options"])
    policy_meta = meta.get("policy")
    policy = (
        DegradationPolicy(**policy_meta) if policy_meta is not None else None
    )
    auth = P2Auth(
        pin=None, pipeline_config=config, options=options, policy=policy
    )
    # Restore the PIN digest without ever knowing the PIN.
    auth._pin._salt = bytes.fromhex(meta["pin_salt"])
    auth._pin._digest = (
        bytes.fromhex(meta["pin_digest"]) if meta["pin_digest"] else None
    )
    auth._models = EnrolledModels(
        full_model=full_model,
        fused_model=fused_model,
        key_models=key_models,
        options=options,
        config=config,
        keys_enrolled=tuple(sorted(key_models)),
    )
    return auth


def save_authenticator(
    auth: P2Auth,
    path: Union[str, Path, IO[bytes]],
    session: Optional[SessionManager] = None,
) -> None:
    """Serialize an enrolled authenticator to ``path`` (.npz).

    The archive carries everything a reload needs to behave
    identically: the models, the pipeline constants, the enrollment
    options (including the quality gate), the salted PIN digest, and
    the :class:`~repro.core.degradation.DegradationPolicy` — a reloaded
    authenticator keeps its recovery ladder instead of failing open to
    the no-policy path.

    Args:
        auth: the enrolled authenticator.
        path: destination ``.npz`` path.
        session: optionally, a :class:`~repro.core.session.
            SessionManager` whose configuration (wear threshold and
            :class:`~repro.core.session.RetryPolicy`) is stored
            alongside, for :func:`load_session`. Session *state* (the
            event log, failure counter) is deliberately not persisted —
            a reload starts a fresh session.

    Raises:
        EnrollmentError: if no user is enrolled.
        PersistenceError: if a model uses a non-serializable
            configuration.
    """
    models = auth.models  # raises EnrollmentError when not enrolled
    arrays: Dict[str, np.ndarray] = {}
    headers: Dict[str, Dict] = {}

    if models.full_model is not None:
        headers["full"] = _pack_model(models.full_model, "full", arrays)
    if models.fused_model is not None:
        headers["fused"] = _pack_model(models.fused_model, "fused", arrays)
    headers["keys"] = {}
    for key, model in models.key_models.items():
        headers["keys"][key] = _pack_model(model, f"key/{key}", arrays)

    meta = {"format_version": FORMAT_VERSION, **authenticator_meta(auth)}
    meta["headers"] = headers
    if session is not None:
        meta["session"] = {
            "wear_threshold": session._wear_threshold,
            "retry": (
                dataclasses.asdict(session._retry)
                if session._retry is not None
                else None
            ),
        }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_authenticator(path: Union[str, Path, IO[bytes]]) -> P2Auth:
    """Load an authenticator previously stored by :func:`save_authenticator`.

    Returns:
        A ready-to-authenticate :class:`P2Auth` (enrollment restored).
    """
    with np.load(path, allow_pickle=False) as archive:
        arrays = {key: archive[key] for key in archive.files}

    if "__meta__" not in arrays:
        raise ConfigurationError(f"{path} is not a P2Auth archive")
    meta = json.loads(bytes(arrays["__meta__"]).decode("utf-8"))
    if meta.get("format_version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported archive version: {meta.get('format_version')}"
        )

    headers = meta["headers"]
    full_model = (
        _unpack_model(headers["full"], "full", arrays) if "full" in headers else None
    )
    fused_model = (
        _unpack_model(headers["fused"], "fused", arrays)
        if "fused" in headers
        else None
    )
    key_models = {
        key: _unpack_model(header, f"key/{key}", arrays)
        for key, header in headers["keys"].items()
    }
    return restore_authenticator(meta, full_model, fused_model, key_models)


def load_session(path: Union[str, Path]) -> SessionManager:
    """Rebuild a session manager from an archive written with
    ``save_authenticator(auth, path, session=...)``.

    The authenticator is loaded exactly as :func:`load_authenticator`
    does (models, policy, PIN digest), then wrapped in a fresh
    :class:`~repro.core.session.SessionManager` with the stored wear
    threshold and retry policy. The session starts OFF_WRIST with an
    empty log — state is lifecycle, not configuration.

    Raises:
        ConfigurationError: if the archive carries no session block.
    """
    with np.load(path, allow_pickle=False) as archive:
        if "__meta__" not in archive.files:
            raise ConfigurationError(f"{path} is not a P2Auth archive")
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
    session_meta = meta.get("session")
    if session_meta is None:
        raise ConfigurationError(
            f"{path} was saved without a session (pass session= to "
            "save_authenticator)"
        )
    auth = load_authenticator(path)
    retry_meta = session_meta.get("retry")
    retry = RetryPolicy(**retry_meta) if retry_meta is not None else None
    return SessionManager(
        auth,
        wear_threshold=float(session_meta["wear_threshold"]),
        retry=retry,
    )
