"""PIN verification (the knowledge factor).

The PIN is never stored in clear: enrollment keeps a salted SHA-256
digest and verification compares digests in constant time. A no-PIN
policy is supported for the paper's NO-PIN mode, where the keystroke
pattern alone authenticates the user (Section IV-B.2.6).
"""

from __future__ import annotations

import hashlib
import hmac
import os
from typing import Optional

from ..errors import ConfigurationError


def _digest(pin: str, salt: bytes) -> bytes:
    return hashlib.sha256(salt + pin.encode("utf-8")).digest()


class PinVerifier:
    """Salted-hash PIN storage and verification.

    Args:
        pin: the enrolled PIN, or ``None`` for the NO-PIN mode.
        salt: optional fixed salt (random by default); exposed for
            deterministic tests.
    """

    def __init__(self, pin: Optional[str], salt: Optional[bytes] = None) -> None:
        if pin is not None and (not pin or not pin.isdigit()):
            raise ConfigurationError(f"PIN must be a non-empty digit string: {pin!r}")
        self._salt = salt if salt is not None else os.urandom(16)
        self._digest = _digest(pin, self._salt) if pin is not None else None

    @property
    def has_pin(self) -> bool:
        """Whether a fixed PIN is enrolled."""
        return self._digest is not None

    def verify(self, pin: Optional[str]) -> bool:
        """Check a claimed PIN against the enrolled one.

        In NO-PIN mode every claim (including ``None``) passes — the
        biometric factor alone decides. With a fixed PIN, a missing or
        wrong claim fails.
        """
        if self._digest is None:
            return True
        if pin is None or not pin.isdigit():
            return False
        return hmac.compare_digest(self._digest, _digest(pin, self._salt))
