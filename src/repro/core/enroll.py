"""Enrollment orchestration: quality gates and the model-training loop.

Turns a handful of legitimate PIN entries plus the third-party sample
store into the binary classifiers of Section IV-B.2: a *full waveform*
model for one-handed entries, an optional *fused waveform* model when
the privacy boost is enabled (Eq. 4), and one *single waveform* model
per key for the two-handed and NO-PIN cases.

Import from :mod:`repro.core.enrollment` (the façade) or
:mod:`repro.core` — the split submodules are an implementation detail
(enforced by reprolint rule RL007).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..config import PipelineConfig
from ..errors import EnrollmentError
from ..signal.quality import assess_recording
from ..types import PinEntryTrial
from .models import (
    EnrolledModels,
    EnrollmentOptions,
    WaveformModel,
    _collect_segments,
    extract_full_waveform,
    extract_fused_waveform,
)
from .negatives import MIN_SAME_KEY_NEGATIVES, NegativeBank, _check_bank
from .pipeline import PreprocessedTrial, preprocess_trials


def check_enrollment_quality(
    trials: Sequence[PinEntryTrial],
    config: PipelineConfig,
    options: EnrollmentOptions,
) -> None:
    """The enrollment quality gate: refuse to train on garbage.

    The quality module has always warned that training on unusable
    recordings is worse than rejecting them; this enforces it. Every
    legitimate enrollment trial must pass
    :func:`~repro.signal.quality.assess_recording` against its own
    keystroke events.

    Raises:
        EnrollmentError: naming the first failing trial and why.
    """
    if not options.quality_gate:
        return
    for index, trial in enumerate(trials):
        if not bool(np.all(np.isfinite(trial.recording.samples))):
            # Enrollment is supervised: missing samples mean re-record,
            # never repair-and-train (repaired signal would teach the
            # model the interpolator, not the user).
            raise EnrollmentError(
                f"enrollment trial {index} contains non-finite samples; "
                "re-prompt the user instead of training on this entry"
            )
        report = assess_recording(
            trial.recording,
            trial.events,
            config,
            min_artifact_ratio=options.min_quality_artifact_ratio,
        )
        if not report.ok:
            ratio = (
                f"{report.artifact_ratio:.2f}"
                if report.artifact_ratio is not None
                else "n/a"
            )
            raise EnrollmentError(
                f"enrollment trial {index} failed the quality gate: "
                f"{report.usable_channels} usable channel(s), keystroke "
                f"artifact ratio {ratio} (need >= "
                f"{options.min_quality_artifact_ratio:.2f}); re-prompt the "
                "user instead of training on this entry"
            )


def _usable(p: PreprocessedTrial) -> bool:
    """Whether an entry qualifies for whole-entry models: (nearly) all
    of its keystrokes were detected (one miss tolerated, so enrollment
    stays possible at the low sampling rates of Fig. 16/17)."""
    return p.detected_count >= max(2, len(p.trial.pin) - 1)


def enroll_models(
    legit_trials: Sequence[PinEntryTrial],
    third_party_trials: Sequence[PinEntryTrial],
    config: Optional[PipelineConfig] = None,
    options: Optional[EnrollmentOptions] = None,
    shared_negatives: Optional[NegativeBank] = None,
) -> EnrolledModels:
    """Run the enrollment phase.

    Args:
        legit_trials: the enrolling user's PIN entries (the paper caps
            usability at 9).
        third_party_trials: samples from the third-party store used as
            negatives (paper default: 100). Ignored when
            ``shared_negatives`` is given.
        config: pipeline constants.
        options: enrollment options.
        shared_negatives: a :class:`~repro.core.negatives.NegativeBank`
            built from the store by
            :func:`~repro.core.negatives.build_negative_bank`; when
            given, the store-side preprocessing and feature extraction
            are skipped entirely and every model trains against the
            bank's pre-featurized negatives (extractors fitted on the
            negatives alone).

    Returns:
        The user's trained models.

    Raises:
        EnrollmentError: when a required model cannot be trained (too
            few usable samples), when an enrollment trial fails the
            quality gate (``options.quality_gate``), or when
            ``shared_negatives`` was built under incompatible settings.
    """
    if config is None:
        config = PipelineConfig()
    if options is None:
        options = EnrollmentOptions()
    if not legit_trials:
        raise EnrollmentError("no legitimate trials supplied")
    if shared_negatives is None and not third_party_trials:
        raise EnrollmentError("no third-party trials supplied")
    if shared_negatives is not None:
        _check_bank(shared_negatives, config, options)
    check_enrollment_quality(legit_trials, config, options)

    legit_pre = preprocess_trials(list(legit_trials), config)
    if shared_negatives is not None:
        return _enroll_shared(legit_pre, shared_negatives, config, options)
    third_pre = preprocess_trials(list(third_party_trials), config)

    def model(balanced: bool = False) -> WaveformModel:
        return WaveformModel(
            feature_method=options.feature_method,
            num_features=options.num_features,
            classifier_factory=options.classifier_factory,
            seed=options.seed,
            balanced=balanced,
        )

    # Full-waveform model: trained on legitimate one-handed entries,
    # vs third-party entries. An entry qualifies when (nearly) all of
    # its keystrokes were detected; tolerating one miss keeps
    # enrollment possible at low sampling rates, where the energy
    # detector occasionally drops a keystroke (Fig. 16/17 regimes).
    full_pos = [
        extract_full_waveform(p, options.full_window, options.full_margin)
        for p in legit_pre
        if _usable(p)
    ]
    full_neg = [
        extract_full_waveform(p, options.full_window, options.full_margin)
        for p in third_pre
    ]
    full_model = None
    if len(full_pos) >= options.min_positive_samples:
        full_model = model().fit(np.stack(full_pos), np.stack(full_neg))

    fused_model = None
    if options.privacy_boost:
        fused_pos = [
            extract_fused_waveform(p, config)
            for p in legit_pre
            if _usable(p)
        ]
        fused_neg = [
            extract_fused_waveform(p, config)
            for p in third_pre
            if p.detected_count > 0
        ]
        if len(fused_pos) < options.min_positive_samples:
            raise EnrollmentError(
                "privacy boost requires at least "
                f"{options.min_positive_samples} fully detected entries"
            )
        fused_model = model().fit(np.stack(fused_pos), np.stack(fused_neg))

    # Single-waveform models: one binary classifier per enrolled key.
    legit_by_key = _collect_segments(legit_pre, config)
    third_by_key = _collect_segments(third_pre, config)
    third_all = [s for segs in third_by_key.values() for s in segs]

    key_models: Dict[str, WaveformModel] = {}
    for key, positives in legit_by_key.items():
        if len(positives) < options.min_positive_samples:
            continue
        negatives = list(third_by_key.get(key, []))
        if len(negatives) < MIN_SAME_KEY_NEGATIVES:
            # Too few same-key third-party samples: fall back to the
            # whole store so the classifier still sees other people.
            negatives = third_all
        # Deliberately NOT negatives: the user's own other keys.
        # Intra-user key discrimination is much harder than inter-user
        # discrimination and dragging those samples into the negative
        # class collapses the margin around the legitimate keystrokes.
        # Security in every mode (including NO-PIN) rests on *user*
        # specificity, which third-party negatives capture.
        if not negatives:
            continue
        # Single-keystroke models are trained class-balanced: a 90-sample
        # waveform carries far less evidence than a full entry, and the
        # ~10:1 negative imbalance would otherwise push the boundary
        # into the legitimate class (every watch-hand keystroke would
        # score near zero and two-handed integration would fail).
        key_models[key] = model(balanced=True).fit(
            np.stack(positives), np.stack(negatives)
        )

    if full_model is None and fused_model is None and not key_models:
        raise EnrollmentError(
            "no model could be trained: too few usable enrollment samples"
        )

    return EnrolledModels(
        full_model=full_model,
        fused_model=fused_model,
        key_models=key_models,
        options=options,
        config=config,
        keys_enrolled=tuple(sorted(key_models)),
    )


def _enroll_shared(
    legit_pre: Sequence[PreprocessedTrial],
    bank: NegativeBank,
    config: PipelineConfig,
    options: EnrollmentOptions,
) -> EnrolledModels:
    """The :func:`enroll_models` flow against a pre-built negative bank.

    Mirrors the unshared path model for model — same positive
    extraction, same usability and minimum-sample rules, same per-key
    fallback behavior — but every ``fit`` is a :meth:`WaveformModel.
    fit_shared` against the bank's pre-featurized negatives.
    """

    def model(balanced: bool = False) -> WaveformModel:
        return WaveformModel(
            feature_method=options.feature_method,
            num_features=options.num_features,
            classifier_factory=options.classifier_factory,
            seed=options.seed,
            balanced=balanced,
        )

    full_pos = [
        extract_full_waveform(p, options.full_window, options.full_margin)
        for p in legit_pre
        if _usable(p)
    ]
    full_model = None
    if len(full_pos) >= options.min_positive_samples:
        full_model = model().fit_shared(np.stack(full_pos), bank.full)

    fused_model = None
    if options.privacy_boost:
        if bank.fused is None:
            raise EnrollmentError(
                "privacy boost requested but the shared negative bank was "
                "built without fused negatives"
            )
        fused_pos = [
            extract_fused_waveform(p, config) for p in legit_pre if _usable(p)
        ]
        if len(fused_pos) < options.min_positive_samples:
            raise EnrollmentError(
                "privacy boost requires at least "
                f"{options.min_positive_samples} fully detected entries"
            )
        fused_model = model().fit_shared(np.stack(fused_pos), bank.fused)

    legit_by_key = _collect_segments(legit_pre, config)
    key_models: Dict[str, WaveformModel] = {}
    for key, positives in legit_by_key.items():
        if len(positives) < options.min_positive_samples:
            continue
        shared = bank.key_sets.get(key, bank.key_fallback)
        if shared is None:
            continue
        key_models[key] = model(balanced=True).fit_shared(
            np.stack(positives), shared
        )

    if full_model is None and fused_model is None and not key_models:
        raise EnrollmentError(
            "no model could be trained: too few usable enrollment samples"
        )

    return EnrolledModels(
        full_model=full_model,
        fused_model=fused_model,
        key_models=key_models,
        options=options,
        config=config,
        keys_enrolled=tuple(sorted(key_models)),
    )
