"""PPG samples preprocessing (the first phase of Fig. 4).

``preprocess_trial`` applies, in order: median-filter noise removal,
fine-grained keystroke time calibration against the channel-average
reference (Eq. 1), smoothness-priors detrending (Eq. 2-3), and
keystroke presence detection by short-time energy thresholding. The
result carries everything the enrollment and authentication phases
need: detrended channels, calibrated per-keystroke indices, and the
per-keystroke detection flags that drive input-case identification.

``preprocess_trials`` is the batched entry point: the median filter is
vectorized across channels, and same-length trials are stacked so all
their channels go through the smoothness-priors detrend as a single
multi-RHS banded solve against one cached factorization.
``preprocess_trial`` delegates to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import PipelineConfig
from ..errors import SignalError
from ..signal import (
    calibrate_trial_indices,
    median_filter_multi,
    segment_around,
    short_time_energy,
    smoothness_priors_detrend_batch,
)
from ..types import PinEntryTrial, SegmentedKeystroke


@dataclass(frozen=True)
class PreprocessedTrial:
    """Output of the preprocessing phase for one PIN-entry trial.

    Attributes:
        trial: the raw input trial.
        filtered: median-filtered channels, ``(n_channels, n)``.
        detrended: detrended filtered channels, ``(n_channels, n)``.
        reference: channel-average detrended signal used for energy
            analysis, shape ``(n,)``.
        keystroke_indices: calibrated sample index per typed digit.
        keystroke_detected: per-digit flag — True when the short-time
            energy around the calibrated index exceeds the threshold.
        energy_threshold: the threshold used (1/2 of the mean
            short-time energy by default).
        config: the pipeline configuration the trial was preprocessed
            with; supplies the default segment window.
    """

    trial: PinEntryTrial
    filtered: np.ndarray
    detrended: np.ndarray
    reference: np.ndarray
    keystroke_indices: Tuple[int, ...]
    keystroke_detected: Tuple[bool, ...]
    energy_threshold: float
    config: Optional[PipelineConfig] = None

    @property
    def detected_count(self) -> int:
        """Number of keystrokes whose artifact was detected."""
        return int(sum(self.keystroke_detected))

    def detected_positions(self) -> List[int]:
        """Digit positions (0-based within the PIN) that were detected."""
        return [i for i, hit in enumerate(self.keystroke_detected) if hit]

    def segment(self, position: int, window: Optional[int] = None) -> SegmentedKeystroke:
        """Cut the single-keystroke waveform for digit ``position``.

        Args:
            position: 0-based index into the typed PIN.
            window: segment length; ``None`` (the default) uses the
                ``segment_window`` of the config the trial was
                preprocessed with. An explicit value — including an
                invalid one like 0, which ``segment_around`` rejects —
                is passed through untouched.
        """
        if not 0 <= position < len(self.trial.pin):
            raise SignalError(
                f"position {position} outside PIN of length {len(self.trial.pin)}"
            )
        if window is None:
            config = self.config if self.config is not None else PipelineConfig()
            window = config.segment_window
        center = self.keystroke_indices[position]
        samples = segment_around(self.detrended, center, window)
        return SegmentedKeystroke(
            samples=samples,
            key=self.trial.pin[position],
            center_index=center,
            fs=self.trial.recording.fs,
        )


def _finalize_trial(
    trial: PinEntryTrial,
    filtered: np.ndarray,
    detrended: np.ndarray,
    config: PipelineConfig,
) -> PreprocessedTrial:
    """Calibration, energy thresholding, and assembly for one trial."""
    # Calibration searches the channel-average of the filtered signal:
    # keystroke artifacts are coherent across channels while sensor
    # noise is not, so averaging raises the artifact contrast.
    calibration_reference = filtered.mean(axis=0)
    indices = calibrate_trial_indices(
        trial.recording, trial.events, config, calibration_reference
    )

    reference = detrended.mean(axis=0)
    energy = short_time_energy(reference, config.energy_window)
    threshold = config.energy_threshold_ratio * float(energy.mean())
    detected = tuple(bool(energy[i] > threshold) for i in indices)

    return PreprocessedTrial(
        trial=trial,
        filtered=filtered,
        detrended=detrended,
        reference=reference,
        keystroke_indices=tuple(int(i) for i in indices),
        keystroke_detected=detected,
        energy_threshold=threshold,
        config=config,
    )


def _validate_probe(trial: PinEntryTrial, config: PipelineConfig) -> None:
    """Input checks shared by the batched and fused preprocessing paths.

    Raising the exact same errors from both entry points is part of the
    hot path's parity contract (``repro.core.hotpath``).
    """
    if abs(trial.recording.fs - config.fs) > 1e-9:
        raise SignalError(
            f"recording at {trial.recording.fs} Hz but pipeline configured "
            f"for {config.fs} Hz; use PipelineConfig.scaled_to"
        )
    if not bool(np.all(np.isfinite(trial.recording.samples))):
        # Fail with a typed error instead of a NaN-poisoned crash
        # deep inside scipy. Known-missing (NaN) samples are the
        # degradation policy's job, upstream of preprocessing.
        raise SignalError(
            "recording contains non-finite samples; repair them first "
            "(e.g. via a DegradationPolicy with gap repair)"
        )


def preprocess_trials(
    trials: Sequence[PinEntryTrial], config: Optional[PipelineConfig] = None
) -> List[PreprocessedTrial]:
    """Run the preprocessing phase on a batch of trials.

    Functionally identical to mapping :func:`preprocess_trial` over
    ``trials``, but the heavy array work is batched: the median filter
    runs vectorized across all channels of a trial, and all trials that
    share a ``(channels, n)`` shape are stacked so their detrend is a
    single multi-RHS banded solve against one cached factorization.

    Args:
        trials: raw PIN-entry trials, any mix of shapes.
        config: pipeline constants; defaults to the paper's values. The
            config's ``fs`` must match every recording's.

    Returns:
        Preprocessed trials, in input order.

    Raises:
        SignalError: on a sampling-rate mismatch, an empty recording, or
            non-finite samples.
    """
    if config is None:
        config = PipelineConfig()
    trials = list(trials)
    for trial in trials:
        _validate_probe(trial, config)

    filtered_list = [
        median_filter_multi(trial.recording.samples, config.median_kernel)
        for trial in trials
    ]

    # Group same-shape trials so each group's detrend is one stacked
    # multi-RHS solve. dict preserves insertion order, and indices within
    # a group stay ascending, so output order is easy to restore.
    groups: Dict[Tuple[int, int], List[int]] = {}
    for idx, filtered in enumerate(filtered_list):
        groups.setdefault(filtered.shape, []).append(idx)

    detrended_list: List[Optional[np.ndarray]] = [None] * len(trials)
    for members in groups.values():
        stack = np.stack([filtered_list[idx] for idx in members])
        detrended_stack = smoothness_priors_detrend_batch(
            stack, config.detrend_lambda
        )
        for pos, idx in enumerate(members):
            detrended_list[idx] = detrended_stack[pos]

    results = []
    for trial, filtered, detrended in zip(trials, filtered_list, detrended_list):
        assert detrended is not None  # every index belongs to one group
        results.append(_finalize_trial(trial, filtered, detrended, config))
    return results


def preprocess_trial(
    trial: PinEntryTrial, config: Optional[PipelineConfig] = None
) -> PreprocessedTrial:
    """Run the full preprocessing phase on one trial.

    Delegates to the batched :func:`preprocess_trials`.

    Args:
        trial: raw PIN-entry trial.
        config: pipeline constants; defaults to the paper's values. The
            config's ``fs`` must match the recording's.

    Returns:
        The preprocessed trial.

    Raises:
        SignalError: on a sampling-rate mismatch or an empty recording.
    """
    return preprocess_trials([trial], config)[0]


def _preprocess_trial_reference(
    trial: PinEntryTrial, config: Optional[PipelineConfig] = None
) -> PreprocessedTrial:
    """Pre-optimization reference path, kept for parity and benchmarks.

    Reproduces the original per-trial cost profile: median-filters each
    channel in a Python loop, calibrates each keystroke with its own
    Savitzky-Golay pass over the full reference (the pre-hoisting
    behavior of ``calibrate_keystroke_index``), and estimates each
    channel's trend with the generic sparse-LU solver. Results match
    :func:`preprocess_trial` to solver precision.
    """
    from ..signal.calibration import calibrate_keystroke_index
    from ..signal.detrend import _estimate_trend_reference
    from ..signal.filters import median_filter

    if config is None:
        config = PipelineConfig()
    recording = trial.recording
    if abs(recording.fs - config.fs) > 1e-9:
        raise SignalError(
            f"recording at {recording.fs} Hz but pipeline configured "
            f"for {config.fs} Hz; use PipelineConfig.scaled_to"
        )

    filtered = np.vstack(
        [median_filter(ch, config.median_kernel) for ch in recording.samples]
    )
    calibration_reference = filtered.mean(axis=0)
    indices = []
    for event in trial.events:
        raw_index = int(
            round((event.reported_time - recording.start_time) * recording.fs)
        )
        raw_index = int(np.clip(raw_index, 0, recording.n_samples - 1))
        indices.append(
            calibrate_keystroke_index(
                calibration_reference,
                raw_index,
                window=config.calibration_window,
                sg_window=config.sg_window,
                sg_polyorder=config.sg_polyorder,
            )
        )

    detrended = filtered - np.vstack(
        [
            _estimate_trend_reference(ch, config.detrend_lambda)
            for ch in filtered
        ]
    )
    reference = detrended.mean(axis=0)
    energy = short_time_energy(reference, config.energy_window)
    threshold = config.energy_threshold_ratio * float(energy.mean())
    detected = tuple(bool(energy[i] > threshold) for i in indices)

    return PreprocessedTrial(
        trial=trial,
        filtered=filtered,
        detrended=detrended,
        reference=reference,
        keystroke_indices=tuple(int(i) for i in indices),
        keystroke_detected=detected,
        energy_threshold=threshold,
        config=config,
    )
