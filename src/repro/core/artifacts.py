"""Typed artifacts flowing through the staged authentication engine.

The data contracts of the Fig. 4 sequence::

    Recording → Repaired → Preprocessed → Segments → Features → Scores
              → AuthDecision

Each artifact is a frozen dataclass produced by one stage of
:mod:`repro.core.stages` and consumed by the next; the PIN verdict and
degradation events ride along the chain so the final decision can
report them. :func:`_integrate` (the Section IV-B.3 results
integration rule) lives here with :class:`AuthDecision` because it is
part of the decision contract, not of any one stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..types import InputCase, SegmentedKeystroke
from .degradation import DegradationEvent



@dataclass(frozen=True)
class Recording:
    """A raw probe entering the pipeline, with its PIN verdict.

    ``pin_ok`` is ``None`` in NO-PIN mode; wrong-PIN probes are decided
    before this artifact is ever built (no signal processing runs on a
    wrong PIN).
    """

    trial: PinEntryTrial
    pin_ok: Optional[bool] = None


@dataclass(frozen=True)
class Repaired:
    """A probe after the graceful-degradation ladder.

    With no policy configured the trial passes through untouched and
    ``degradation`` is empty — the pre-policy behaviour.
    """

    trial: PinEntryTrial
    pin_ok: Optional[bool] = None
    degradation: Tuple[DegradationEvent, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class Preprocessed:
    """A probe after the Section IV-A preprocessing phase."""

    trial: PreprocessedTrial
    pin_ok: Optional[bool] = None
    degradation: Tuple[DegradationEvent, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class Segments:
    """A probe routed by input case, with its waveforms cut out.

    ``route`` selects the downstream model family:

    - ``"reject"`` — fewer than two keystrokes detected;
    - ``"keystrokes"`` — per-key single-waveform models
      (two-handed cases and NO-PIN mode);
    - ``"full"`` / ``"fused"`` — the one-handed whole-entry model
      (``waveform`` holds the extracted window, ``label`` the wording
      used in the decision reason).
    """

    case: InputCase
    route: str
    detected: int
    segments: Tuple[SegmentedKeystroke, ...] = field(default_factory=tuple)
    waveform: Optional[np.ndarray] = None
    label: str = ""
    pin_ok: Optional[bool] = None
    degradation: Tuple[DegradationEvent, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class FeatureBlock:
    """Featurized input for one classifier call.

    ``model`` is ``None`` for a keystroke on a key that was never
    enrolled — it scores ``-inf`` downstream (a failed check, never a
    free pass).
    """

    key: Optional[str]
    model: Optional[WaveformModel]
    features: Optional[np.ndarray]


@dataclass(frozen=True)
class Features:
    """A probe with every model input featurized."""

    case: InputCase
    route: str
    detected: int
    blocks: Tuple[FeatureBlock, ...] = field(default_factory=tuple)
    label: str = ""
    pin_ok: Optional[bool] = None
    degradation: Tuple[DegradationEvent, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class Scores:
    """Classifier verdicts, ready for results integration."""

    case: InputCase
    route: str
    detected: int
    keys: Tuple[str, ...] = field(default_factory=tuple)
    scores: Tuple[float, ...] = field(default_factory=tuple)
    passes: Tuple[bool, ...] = field(default_factory=tuple)
    label: str = ""
    pin_ok: Optional[bool] = None
    degradation: Tuple[DegradationEvent, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class AuthDecision:
    """Outcome of one authentication attempt.

    Attributes:
        accepted: the final verdict.
        reason: short human-readable explanation.
        input_case: the identified input case (None if PIN failed
            before signal analysis).
        pin_ok: result of PIN verification (None in NO-PIN mode).
        scores: classifier scores that contributed to the verdict.
        keys_checked: keys whose single-waveform models ran.
        passes: per-key pass flags aligned with ``keys_checked``.
        degradation: rungs of the degradation ladder taken before the
            decision (empty when no policy ran or nothing was wrong).
        stage_timings: per-stage wall time in seconds, ``(name, s)`` in
            execution order — observability metadata only, attached when
            the pipeline ran with ``profile=True`` and shared by every
            decision of the same batch. Never part of the parity
            contract: the numeric fields above are computed identically
            with and without profiling.
    """

    accepted: bool
    reason: str
    input_case: Optional[InputCase] = None
    pin_ok: Optional[bool] = None
    scores: Tuple[float, ...] = field(default_factory=tuple)
    keys_checked: Tuple[str, ...] = field(default_factory=tuple)
    passes: Tuple[bool, ...] = field(default_factory=tuple)
    degradation: Tuple[DegradationEvent, ...] = field(default_factory=tuple)
    stage_timings: Optional[Tuple[Tuple[str, float], ...]] = None


def _integrate(passes: Tuple[bool, ...]) -> bool:
    """Results integration rule of Section IV-B.3.

    3 keystrokes: pass if >= 2 legal. 2 keystrokes: all must be legal.
    4+ keystrokes (NO-PIN one-handed entry): at most one may fail.
    A single keystroke never authenticates.
    """
    n = len(passes)
    hits = sum(passes)
    if n <= 1:
        return False
    if n == 2:
        return hits == 2
    if n == 3:
        return hits >= 2
    return hits >= n - 1


