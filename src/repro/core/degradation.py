"""Graceful degradation: decide on damaged input instead of crashing.

The batch pipeline assumes clean 100 Hz PPG and trustworthy keystroke
timestamps. Field sessions (BLE loss, channel death, motion — see
:mod:`repro.faults`) violate that, and the pre-policy behaviour was
binary: score the trial as-is or raise deep inside the stack. This
module inserts a principled ladder between the raw trial and the
pipeline::

    gap repair ──► channel fallback ──► quality gate ──► preprocess

- **Gap repair** — samples the receiver marked missing (``NaN``) are
  reconstructed by linear interpolation, but only within a documented
  per-gap budget (``max_gap_s``); a longer gap raises a typed
  :class:`~repro.errors.QualityError` rather than inventing signal.
- **Channel fallback** — dead/saturated/mostly-missing channels are
  imputed from the average of the surviving channels (keystroke
  artifacts are coherent across channels), preserving the channel
  layout the enrolled models were trained on; authentication then
  effectively runs on the surviving channels alone.
- **Quality gate** — the repaired recording must still pass
  :func:`repro.signal.quality.assess_recording` (usable channels,
  visible keystroke artifacts) before any biometric decision is made.

Every rung taken is recorded as a :class:`DegradationEvent`;
:class:`~repro.core.session.SessionManager` copies them into its audit
log, and :class:`~repro.core.authentication.AuthDecision` carries them
to callers.

On a clean trial the ladder is a no-op: ``apply_policy`` returns the
input trial object itself, so enabling a policy changes nothing until
something is actually wrong.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..config import PipelineConfig
from ..errors import QualityError
from ..signal.quality import ChannelQuality, assess_recording, channel_quality
from ..types import PinEntryTrial


@dataclass(frozen=True)
class DegradationEvent:
    """One rung of the degradation ladder, taken or refused.

    Attributes:
        stage: "gap_repair", "channel_fallback", or "quality_gate".
        action: what happened — "repaired", "imputed", "passed",
            "rejected".
        detail: human-readable specifics.
    """

    stage: str
    action: str
    detail: str


@dataclass(frozen=True)
class DegradationPolicy:
    """Knobs of the graceful-degradation ladder.

    Attributes:
        repair_gaps: reconstruct known-missing (NaN) samples by linear
            interpolation within the budget.
        max_gap_s: per-gap repair budget in seconds; a single missing
            run longer than this raises :class:`QualityError`.
        channel_fallback: impute unusable channels from the surviving
            ones instead of failing or scoring poisoned rows.
        min_usable_channels: surviving channels required for a decision.
        min_artifact_ratio: keystroke-artifact visibility threshold
            forwarded to the quality gate.
        gate: run the final quality gate (disable only in evaluation
            harnesses measuring the gate's own contribution).
    """

    repair_gaps: bool = True
    max_gap_s: float = 0.25
    channel_fallback: bool = True
    min_usable_channels: int = 1
    min_artifact_ratio: float = 3.0
    gate: bool = True


def _gap_runs(finite: np.ndarray) -> List[Tuple[int, int]]:
    """Return (start, length) of every non-finite run in a 1-D mask."""
    missing = ~finite
    if not missing.any():
        return []
    edges = np.flatnonzero(np.diff(missing.astype(np.int8)))
    starts = [0] if missing[0] else []
    starts.extend(int(e) + 1 for e in edges if missing[int(e) + 1])
    runs = []
    for start in starts:
        end = start
        while end < missing.size and missing[end]:
            end += 1
        runs.append((start, end - start))
    return runs


def _repair_channel(
    row: np.ndarray, max_gap: int
) -> Tuple[np.ndarray, int, int]:
    """Linearly interpolate NaN gaps in one channel within the budget.

    Returns:
        (repaired row, gaps repaired, samples filled).

    Raises:
        QualityError: when any single gap exceeds ``max_gap`` samples.
    """
    finite = np.isfinite(row)
    runs = _gap_runs(finite)
    if not runs:
        return row, 0, 0
    longest = max(length for _, length in runs)
    if longest > max_gap:
        raise QualityError(
            f"missing-sample gap of {longest} samples exceeds the repair "
            f"budget of {max_gap}"
        )
    idx = np.arange(row.size)
    repaired = row.copy()
    # np.interp edge-holds before the first / after the last finite
    # sample, which is the right call for head/tail gaps.
    repaired[~finite] = np.interp(idx[~finite], idx[finite], row[finite])
    return repaired, len(runs), int((~finite).sum())


def apply_policy(
    trial: PinEntryTrial,
    config: Optional[PipelineConfig] = None,
    policy: Optional[DegradationPolicy] = None,
) -> Tuple[PinEntryTrial, Tuple[DegradationEvent, ...]]:
    """Run the degradation ladder over one trial.

    Args:
        trial: the raw trial, possibly damaged.
        config: pipeline constants (for the quality gate's energy
            analysis).
        policy: the ladder's knobs; defaults to :class:`DegradationPolicy`.

    Returns:
        ``(prepared_trial, events)`` — the repaired trial (the input
        object itself when nothing needed doing) and the ladder's audit
        trail.

    Raises:
        QualityError: when the trial is too damaged to score — a gap
            beyond the repair budget, fewer usable channels than the
            policy requires, or a failed final quality gate.
    """
    if config is None:
        config = PipelineConfig()
    if policy is None:
        policy = DegradationPolicy()

    recording = trial.recording
    samples = recording.samples
    events: List[DegradationEvent] = []
    changed = False

    quality: List[ChannelQuality] = [channel_quality(row) for row in samples]
    usable = [q.usable for q in quality]
    n_usable = sum(usable)
    if n_usable < policy.min_usable_channels:
        raise QualityError(
            f"only {n_usable} usable channel(s); the policy requires "
            f"{policy.min_usable_channels}"
        )

    # Rung 1: bounded repair of known-missing samples on usable channels.
    if policy.repair_gaps:
        max_gap = max(1, int(round(policy.max_gap_s * recording.fs)))
        repaired = samples.copy()
        total_gaps = 0
        total_filled = 0
        demoted: List[str] = []
        for i, row in enumerate(samples):
            if not usable[i]:
                continue  # unusable channels are the fallback rung's job
            try:
                repaired[i], gaps, filled = _repair_channel(row, max_gap)
            except QualityError:
                # A gap beyond the budget is not worth inventing signal
                # for — but with channel fallback available, losing one
                # channel's tail should cost that channel, not the
                # whole trial. Demote it to the fallback rung.
                if not policy.channel_fallback:
                    raise
                usable[i] = False
                n_usable -= 1
                if n_usable < policy.min_usable_channels:
                    raise QualityError(
                        f"only {n_usable} usable channel(s) after gap-"
                        "budget demotions; the policy requires "
                        f"{policy.min_usable_channels}"
                    )
                demoted.append(recording.channels[i].label)
                continue
            total_gaps += gaps
            total_filled += filled
        if demoted:
            events.append(
                DegradationEvent(
                    stage="gap_repair",
                    action="demoted",
                    detail=(
                        f"channel(s) {', '.join(demoted)} exceeded the "
                        f"{max_gap}-sample gap budget; deferred to "
                        "channel fallback"
                    ),
                )
            )
        if total_filled:
            samples = repaired
            changed = True
            events.append(
                DegradationEvent(
                    stage="gap_repair",
                    action="repaired",
                    detail=(
                        f"interpolated {total_gaps} gap(s), "
                        f"{total_filled} sample(s), budget "
                        f"{max_gap} samples/gap"
                    ),
                )
            )

    # Rung 2: impute unusable channels from the surviving ones so the
    # enrolled models keep their channel layout.
    if policy.channel_fallback and n_usable < len(usable):
        surviving = np.array([samples[i] for i in range(len(usable)) if usable[i]])
        fallback = surviving.mean(axis=0)
        samples = samples.copy() if not changed else samples
        labels = []
        for i, ok in enumerate(usable):
            if not ok:
                samples[i] = fallback
                labels.append(recording.channels[i].label)
        changed = True
        events.append(
            DegradationEvent(
                stage="channel_fallback",
                action="imputed",
                detail=(
                    f"channel(s) {', '.join(labels)} imputed from "
                    f"{n_usable} surviving channel(s)"
                ),
            )
        )

    prepared = trial
    if changed:
        prepared = dataclasses.replace(
            trial, recording=recording.with_samples(samples)
        )

    # Rung 3: the final gate — refuse to decide on what is still garbage.
    if policy.gate:
        report = assess_recording(
            prepared.recording,
            prepared.events,
            config,
            min_usable_channels=policy.min_usable_channels,
            min_artifact_ratio=policy.min_artifact_ratio,
        )
        if not report.ok:
            ratio = (
                f"{report.artifact_ratio:.2f}"
                if report.artifact_ratio is not None
                else "n/a"
            )
            events.append(
                DegradationEvent(
                    stage="quality_gate",
                    action="rejected",
                    detail=(
                        f"{report.usable_channels} usable channel(s), "
                        f"artifact ratio {ratio} < "
                        f"{policy.min_artifact_ratio:.2f}"
                    ),
                )
            )
            raise QualityError(
                "quality gate rejected the trial: "
                f"{report.usable_channels} usable channel(s), "
                f"artifact ratio {ratio}"
            )
        if changed:
            events.append(
                DegradationEvent(
                    stage="quality_gate",
                    action="passed",
                    detail=(
                        f"repaired recording usable "
                        f"({report.usable_channels} channel(s), artifact "
                        f"ratio "
                        + (
                            f"{report.artifact_ratio:.2f}"
                            if report.artifact_ratio is not None
                            else "n/a"
                        )
                        + ")"
                    ),
                )
            )

    return prepared, tuple(events)
