"""Watch-wear detection from PPG periodicity.

Section VI of the paper: authentication happens when the watch is put
on; afterwards, continued wear "is detected based on the heart rate
status", and taking the watch off invalidates the session. A worn
sensor sees a strongly periodic cardiac component in the physiological
band; an off-wrist sensor sees only ambient noise.

Detection is autocorrelation-based: detrend, average channels,
autocorrelate, and look for a dominant peak at a lag corresponding to
a plausible heart rate (40-180 bpm). The peak's normalized height is
the confidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import PipelineConfig
from ..errors import SignalError
from ..signal import smoothness_priors_detrend
from ..types import PPGRecording

#: Plausible heart-rate band, beats per minute.
HR_BAND_BPM = (40.0, 180.0)


@dataclass(frozen=True)
class WearStatus:
    """Outcome of a wear check.

    Attributes:
        worn: whether a cardiac rhythm was found.
        heart_rate_bpm: estimated heart rate when worn, else ``None``.
        confidence: normalized autocorrelation peak in [0, 1].
    """

    worn: bool
    heart_rate_bpm: Optional[float]
    confidence: float


def detect_wear(
    recording: PPGRecording,
    config: Optional[PipelineConfig] = None,
    threshold: float = 0.25,
) -> WearStatus:
    """Decide whether the wearable is on a wrist.

    Args:
        recording: a quiescent (no-keystroke) PPG stretch of at least a
            few heartbeats — two seconds or more.
        config: pipeline constants (detrending lambda).
        threshold: minimum normalized autocorrelation peak to call the
            sensor worn.

    Returns:
        The :class:`WearStatus`.

    Raises:
        SignalError: if the recording is shorter than two seconds.
    """
    if config is None:
        config = PipelineConfig()
    fs = recording.fs
    if recording.duration < 2.0:
        raise SignalError(
            f"wear detection needs >= 2 s of signal, got {recording.duration:.2f} s"
        )

    signal = smoothness_priors_detrend(
        recording.samples.mean(axis=0), config.detrend_lambda
    )
    signal = signal - signal.mean()
    power = float(np.sum(signal ** 2))
    if power <= 0:
        return WearStatus(worn=False, heart_rate_bpm=None, confidence=0.0)

    autocorr = np.correlate(signal, signal, mode="full")[signal.size - 1 :]
    autocorr = autocorr / autocorr[0]

    lag_low = int(np.floor(fs * 60.0 / HR_BAND_BPM[1]))
    lag_high = int(np.ceil(fs * 60.0 / HR_BAND_BPM[0]))
    lag_high = min(lag_high, autocorr.size - 1)
    if lag_low >= lag_high:
        raise SignalError(
            f"sampling rate {fs} Hz too low for wear detection"
        )

    band = autocorr[lag_low : lag_high + 1]
    peak_offset = int(np.argmax(band))
    peak_lag = lag_low + peak_offset
    confidence = float(np.clip(band[peak_offset], 0.0, 1.0))

    if confidence < threshold:
        return WearStatus(worn=False, heart_rate_bpm=None, confidence=confidence)
    return WearStatus(
        worn=True,
        heart_rate_bpm=60.0 * fs / peak_lag,
        confidence=confidence,
    )
