"""Online (streaming) keystroke detection.

The batch pipeline assumes the whole PIN entry is buffered before
processing. A wearable, however, sees PPG samples arrive continuously,
and the paper's real-time requirement (Section I) means keystroke
events should be detected as the stream flows. This module provides a
causal counterpart of the detection stages:

- baseline removal by an exponential moving average (the causal stand-in
  for smoothness-priors detrending);
- short-time energy over a sliding window;
- an adaptive threshold tracking the running mean energy (the paper's
  "1/2 of the mean" rule, applied to the past instead of the whole
  recording);
- burst detection with a refractory period, emitting one event per
  keystroke at the energy apex.

The streaming detector feeds the same downstream machinery: its event
indices can be used directly as segment centers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from ..config import PipelineConfig
from ..errors import AuthenticationError, ConfigurationError, SignalError
from ..types import ChannelInfo, KeystrokeEvent, PinEntryTrial, PPGRecording

if TYPE_CHECKING:
    from .authenticator import P2Auth
    from .stages import AuthDecision


@dataclass(frozen=True)
class DetectedKeystroke:
    """One keystroke found in the stream.

    Attributes:
        index: sample index of the energy apex (stream coordinates).
        time: apex time in seconds from stream start.
        energy: short-time energy at the apex.
        threshold: the adaptive threshold at emission time.
    """

    index: int
    time: float
    energy: float
    threshold: float


class StreamingKeystrokeDetector:  # concurrency: thread-hostile
    """Causal keystroke detector over a PPG sample stream.

    One detector serves one stream: it carries running EMA baselines
    and energy statistics that a second feeding thread would corrupt.
    Use one instance per stream (thread); never share.

    Args:
        fs: stream sampling rate, Hz.
        config: pipeline constants (energy window and threshold ratio
            are reused; defaults follow the paper).
        baseline_tau: time constant of the EMA baseline remover, s.
        refractory: minimum spacing between emitted events, s; set
            below the paper's ~1.1 s inter-key interval.
        warmup: seconds of stream used to seed the energy statistics
            before any event may be emitted.
        min_peak_ratio: a burst apex must exceed this multiple of the
            running mean energy to be emitted. Keystroke artifacts run
            one to two orders of magnitude above the quiescent mean
            while noise fluctuations stay within a factor of ~2, so
            this guard suppresses noise-only false alarms without
            costing keystroke recall.

    Usage::

        detector = StreamingKeystrokeDetector(fs=100.0)
        for chunk in stream:              # (channels, n) arrays
            for event in detector.push(chunk):
                handle(event)
    """

    def __init__(
        self,
        fs: float,
        config: Optional[PipelineConfig] = None,
        baseline_tau: float = 1.5,
        refractory: float = 0.45,
        warmup: float = 0.5,
        min_peak_ratio: float = 3.0,
    ) -> None:
        if fs <= 0:
            raise ConfigurationError("sampling rate must be positive")
        if baseline_tau <= 0 or refractory <= 0 or warmup < 0:
            raise ConfigurationError("time constants must be positive")
        if min_peak_ratio < 1.0:
            raise ConfigurationError("min_peak_ratio must be >= 1")
        self._min_peak_ratio = min_peak_ratio
        self._fs = fs
        self._config = config if config is not None else PipelineConfig()
        self._alpha = 1.0 - np.exp(-1.0 / (baseline_tau * fs))
        self._energy_alpha = 1.0 - np.exp(-1.0 / (4.0 * fs))
        self._refractory = int(round(refractory * fs))
        self._warmup = int(round(warmup * fs))
        self._window = max(2, int(round(self._config.energy_window * fs
                                        / self._config.fs)))
        self.reset()

    def reset(self) -> None:
        """Forget all stream state."""
        self._n_channels: Optional[int] = None
        self._baseline: Optional[np.ndarray] = None
        self._mean_energy = 0.0
        self._mean_seeded = False
        self._samples_seen = 0
        self._recent = np.zeros(self._window)
        self._recent_fill = 0
        self._in_burst = False
        self._burst_peak = -np.inf
        self._burst_peak_index = -1
        self._last_emit = -(10 ** 9)

    @property
    def samples_seen(self) -> int:
        """Total samples consumed so far."""
        return self._samples_seen

    @property
    def window(self) -> int:
        """Sliding energy window length in samples."""
        return self._window

    def push(self, chunk: np.ndarray) -> List[DetectedKeystroke]:
        """Consume a chunk and return keystrokes confirmed within it.

        Args:
            chunk: array of shape ``(n_channels, n)`` or ``(n,)``.

        Returns:
            Zero or more :class:`DetectedKeystroke`, in stream order.
        """
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.ndim == 1:
            chunk = chunk[np.newaxis, :]
        if chunk.ndim != 2:
            raise SignalError(f"expected 1-D or 2-D chunk, got {chunk.shape}")
        if self._n_channels is None:
            self._n_channels = chunk.shape[0]
            self._baseline = chunk[:, :1].copy() if chunk.shape[1] else None
        if chunk.shape[0] != self._n_channels:
            raise SignalError(
                f"stream has {self._n_channels} channels, chunk has "
                f"{chunk.shape[0]}"
            )

        events: List[DetectedKeystroke] = []
        config = self._config
        ratio = config.energy_threshold_ratio
        for column in chunk.T:
            if self._baseline is None:
                self._baseline = column[:, np.newaxis].copy()
            # Causal baseline removal per channel.
            self._baseline[:, 0] += self._alpha * (column - self._baseline[:, 0])
            detrended = float(np.mean(column - self._baseline[:, 0]))

            # Sliding-window energy via a ring buffer of squares.
            slot = self._samples_seen % self._window
            self._recent[slot] = detrended ** 2
            self._recent_fill = min(self._recent_fill + 1, self._window)
            energy = float(np.sum(self._recent[: self._recent_fill]))

            # Running mean energy (the adaptive "mean" of the rule).
            if not self._mean_seeded:
                self._mean_energy = energy
                self._mean_seeded = True
            else:
                self._mean_energy += self._energy_alpha * (
                    energy - self._mean_energy
                )
            threshold = ratio * self._mean_energy

            index = self._samples_seen
            self._samples_seen += 1
            if index < self._warmup:
                continue

            above = energy > threshold
            if above and not self._in_burst and (
                index - self._last_emit > self._refractory
            ):
                self._in_burst = True
                self._burst_peak = energy
                self._burst_peak_index = index
            elif self._in_burst:
                if above and energy > self._burst_peak:
                    self._burst_peak = energy
                    self._burst_peak_index = index
                # Emit when the burst ends — or when the apex has gone
                # stale: during fast typing the energy may never dip
                # below the adaptive threshold between keystrokes, so a
                # refractory-old apex is confirmed as its own event and
                # apex tracking restarts for the next keystroke.
                stale = index - self._burst_peak_index >= self._refractory
                if not above or stale:
                    strong = self._burst_peak > (
                        self._min_peak_ratio * self._mean_energy
                    )
                    if strong:
                        events.append(
                            DetectedKeystroke(
                                index=self._burst_peak_index,
                                time=self._burst_peak_index / self._fs,
                                energy=self._burst_peak,
                                threshold=threshold,
                            )
                        )
                        self._last_emit = self._burst_peak_index
                    if not above:
                        self._in_burst = False
                    else:
                        # Restart apex tracking within the ongoing burst.
                        self._burst_peak = energy
                        self._burst_peak_index = index
        return events

    def flush(self) -> List[DetectedKeystroke]:
        """Emit a pending burst apex at end of stream, if any."""
        if not self._in_burst:
            return []
        if self._burst_peak <= self._min_peak_ratio * self._mean_energy:
            self._in_burst = False
            return []
        event = DetectedKeystroke(
            index=self._burst_peak_index,
            time=self._burst_peak_index / self._fs,
            energy=self._burst_peak,
            threshold=self._config.energy_threshold_ratio * self._mean_energy,
        )
        self._last_emit = self._burst_peak_index
        self._in_burst = False
        return [event]


class StreamingAuthenticator:  # concurrency: thread-hostile
    """Online front-end over the staged authentication engine.

    Like its detector, an instance belongs to one stream and must not
    be shared across threads (the shared ``P2Auth`` it wraps is safe;
    the per-stream assembly state here is not).

    Consumes PPG chunks as they arrive, detects keystrokes causally
    with :class:`StreamingKeystrokeDetector`, and — once the PIN entry
    is complete — assembles a :class:`~repro.types.PinEntryTrial` and
    runs it through the *same*
    :class:`~repro.core.stages.AuthPipeline` as the batch path (via
    ``auth.authenticate``), degradation ladder included. There is no
    streaming-specific scoring logic to drift out of sync.

    Args:
        auth: an enrolled :class:`~repro.core.authenticator.P2Auth`.
        fs: stream sampling rate, Hz.
        channels: per-channel metadata for the assembled recording;
            defaults to the prototype's four channels.
        detector: a configured detector; defaults to
            ``StreamingKeystrokeDetector(fs, auth.config)``.

    Usage::

        stream = StreamingAuthenticator(auth, fs=100.0)
        for chunk in device:          # (channels, n) arrays
            stream.push(chunk)
        decision = stream.finalize(pin="1628")
    """

    def __init__(
        self,
        auth: "P2Auth",
        fs: float,
        channels: Optional[Tuple[ChannelInfo, ...]] = None,
        detector: Optional[StreamingKeystrokeDetector] = None,
    ) -> None:
        if not auth.enrolled:
            raise AuthenticationError(
                "enroll a user before streaming authentication"
            )
        self._auth = auth
        self._fs = fs
        self._channels = channels
        self._detector = (
            detector
            if detector is not None
            else StreamingKeystrokeDetector(fs, auth.config)
        )
        self._chunks: List[np.ndarray] = []
        self._events: List[DetectedKeystroke] = []

    @property
    def detected(self) -> Tuple[DetectedKeystroke, ...]:
        """Keystrokes confirmed so far (pending apex not included)."""
        return tuple(self._events)

    def push(self, chunk: np.ndarray) -> List[DetectedKeystroke]:
        """Consume a chunk; returns keystrokes confirmed within it."""
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.ndim == 1:
            chunk = chunk[np.newaxis, :]
        events = self._detector.push(chunk)
        self._chunks.append(chunk)
        self._events.extend(events)
        return events

    def reset(self) -> None:
        """Discard the buffered entry and all detector state."""
        self._detector.reset()
        self._chunks = []
        self._events = []

    def finalize(
        self,
        pin: str,
        claimed_pin: Optional[str] = None,
        user_id: int = -1,
        reported_times: Optional[Sequence[float]] = None,
        one_handed: bool = True,
        profile: bool = False,
    ) -> "AuthDecision":
        """End the entry and authenticate it through the stage pipeline.

        Args:
            pin: the digits the typist entered on the phone.
            claimed_pin: the PIN claim forwarded to the authenticator;
                defaults to ``pin``.
            user_id: typist identity for evaluation bookkeeping.
            reported_times: phone-reported keystroke timestamps (one
                per digit). When omitted, the detector's apex times
                stand in — which requires the detector to have found
                exactly one keystroke per digit.
            one_handed: whether the entry was typed one-handed.
            profile: attach per-stage wall times to the decision
                (``AuthDecision.stage_timings``), forwarded to
                :meth:`P2Auth.authenticate`; observability only, the
                decision itself is unchanged.

        Returns:
            The :class:`~repro.core.stages.AuthDecision`.

        Raises:
            AuthenticationError: when nothing was streamed, or the
                detected keystroke count does not match the PIN length
                and no ``reported_times`` were given.
        """
        self._events.extend(self._detector.flush())
        if not self._chunks:
            raise AuthenticationError("no samples were streamed")
        if reported_times is None:
            if len(self._events) != len(pin):
                raise AuthenticationError(
                    f"detected {len(self._events)} keystroke(s) for a "
                    f"{len(pin)}-digit PIN; pass reported_times to "
                    "authenticate anyway"
                )
            times: List[float] = [e.time for e in self._events]
        else:
            if len(reported_times) != len(pin):
                raise AuthenticationError(
                    f"{len(reported_times)} reported times for a "
                    f"{len(pin)}-digit PIN"
                )
            times = [float(t) for t in reported_times]
        samples = np.concatenate(self._chunks, axis=1)
        recording = (
            PPGRecording(samples=samples, fs=self._fs)
            if self._channels is None
            else PPGRecording(
                samples=samples, fs=self._fs, channels=self._channels
            )
        )
        events = tuple(
            KeystrokeEvent(key=digit, true_time=t, reported_time=t)
            for digit, t in zip(pin, times)
        )
        trial = PinEntryTrial(
            recording=recording,
            events=events,
            pin=pin,
            user_id=user_id,
            one_handed=one_handed,
        )
        entered = claimed_pin if claimed_pin is not None else pin
        return self._auth.authenticate(
            trial, claimed_pin=entered, profile=profile
        )
