"""Online (streaming) keystroke detection.

The batch pipeline assumes the whole PIN entry is buffered before
processing. A wearable, however, sees PPG samples arrive continuously,
and the paper's real-time requirement (Section I) means keystroke
events should be detected as the stream flows. This module provides a
causal counterpart of the detection stages:

- baseline removal by an exponential moving average (the causal stand-in
  for smoothness-priors detrending);
- short-time energy over a sliding window;
- an adaptive threshold tracking the running mean energy (the paper's
  "1/2 of the mean" rule, applied to the past instead of the whole
  recording);
- burst detection with a refractory period, emitting one event per
  keystroke at the energy apex.

The streaming detector feeds the same downstream machinery: its event
indices can be used directly as segment centers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..config import PipelineConfig
from ..errors import ConfigurationError, SignalError


@dataclass(frozen=True)
class DetectedKeystroke:
    """One keystroke found in the stream.

    Attributes:
        index: sample index of the energy apex (stream coordinates).
        time: apex time in seconds from stream start.
        energy: short-time energy at the apex.
        threshold: the adaptive threshold at emission time.
    """

    index: int
    time: float
    energy: float
    threshold: float


class StreamingKeystrokeDetector:
    """Causal keystroke detector over a PPG sample stream.

    Args:
        fs: stream sampling rate, Hz.
        config: pipeline constants (energy window and threshold ratio
            are reused; defaults follow the paper).
        baseline_tau: time constant of the EMA baseline remover, s.
        refractory: minimum spacing between emitted events, s; set
            below the paper's ~1.1 s inter-key interval.
        warmup: seconds of stream used to seed the energy statistics
            before any event may be emitted.
        min_peak_ratio: a burst apex must exceed this multiple of the
            running mean energy to be emitted. Keystroke artifacts run
            one to two orders of magnitude above the quiescent mean
            while noise fluctuations stay within a factor of ~2, so
            this guard suppresses noise-only false alarms without
            costing keystroke recall.

    Usage::

        detector = StreamingKeystrokeDetector(fs=100.0)
        for chunk in stream:              # (channels, n) arrays
            for event in detector.push(chunk):
                handle(event)
    """

    def __init__(
        self,
        fs: float,
        config: Optional[PipelineConfig] = None,
        baseline_tau: float = 1.5,
        refractory: float = 0.45,
        warmup: float = 0.5,
        min_peak_ratio: float = 3.0,
    ) -> None:
        if fs <= 0:
            raise ConfigurationError("sampling rate must be positive")
        if baseline_tau <= 0 or refractory <= 0 or warmup < 0:
            raise ConfigurationError("time constants must be positive")
        if min_peak_ratio < 1.0:
            raise ConfigurationError("min_peak_ratio must be >= 1")
        self._min_peak_ratio = min_peak_ratio
        self._fs = fs
        self._config = config if config is not None else PipelineConfig()
        self._alpha = 1.0 - np.exp(-1.0 / (baseline_tau * fs))
        self._energy_alpha = 1.0 - np.exp(-1.0 / (4.0 * fs))
        self._refractory = int(round(refractory * fs))
        self._warmup = int(round(warmup * fs))
        self._window = max(2, int(round(self._config.energy_window * fs
                                        / self._config.fs)))
        self.reset()

    def reset(self) -> None:
        """Forget all stream state."""
        self._n_channels: Optional[int] = None
        self._baseline: Optional[np.ndarray] = None
        self._mean_energy = 0.0
        self._mean_seeded = False
        self._samples_seen = 0
        self._recent = np.zeros(self._window)
        self._recent_fill = 0
        self._in_burst = False
        self._burst_peak = -np.inf
        self._burst_peak_index = -1
        self._last_emit = -(10 ** 9)

    @property
    def samples_seen(self) -> int:
        """Total samples consumed so far."""
        return self._samples_seen

    @property
    def window(self) -> int:
        """Sliding energy window length in samples."""
        return self._window

    def push(self, chunk: np.ndarray) -> List[DetectedKeystroke]:
        """Consume a chunk and return keystrokes confirmed within it.

        Args:
            chunk: array of shape ``(n_channels, n)`` or ``(n,)``.

        Returns:
            Zero or more :class:`DetectedKeystroke`, in stream order.
        """
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.ndim == 1:
            chunk = chunk[np.newaxis, :]
        if chunk.ndim != 2:
            raise SignalError(f"expected 1-D or 2-D chunk, got {chunk.shape}")
        if self._n_channels is None:
            self._n_channels = chunk.shape[0]
            self._baseline = chunk[:, :1].copy() if chunk.shape[1] else None
        if chunk.shape[0] != self._n_channels:
            raise SignalError(
                f"stream has {self._n_channels} channels, chunk has "
                f"{chunk.shape[0]}"
            )

        events: List[DetectedKeystroke] = []
        config = self._config
        ratio = config.energy_threshold_ratio
        for column in chunk.T:
            if self._baseline is None:
                self._baseline = column[:, np.newaxis].copy()
            # Causal baseline removal per channel.
            self._baseline[:, 0] += self._alpha * (column - self._baseline[:, 0])
            detrended = float(np.mean(column - self._baseline[:, 0]))

            # Sliding-window energy via a ring buffer of squares.
            slot = self._samples_seen % self._window
            self._recent[slot] = detrended ** 2
            self._recent_fill = min(self._recent_fill + 1, self._window)
            energy = float(np.sum(self._recent[: self._recent_fill]))

            # Running mean energy (the adaptive "mean" of the rule).
            if not self._mean_seeded:
                self._mean_energy = energy
                self._mean_seeded = True
            else:
                self._mean_energy += self._energy_alpha * (
                    energy - self._mean_energy
                )
            threshold = ratio * self._mean_energy

            index = self._samples_seen
            self._samples_seen += 1
            if index < self._warmup:
                continue

            above = energy > threshold
            if above and not self._in_burst and (
                index - self._last_emit > self._refractory
            ):
                self._in_burst = True
                self._burst_peak = energy
                self._burst_peak_index = index
            elif self._in_burst:
                if above and energy > self._burst_peak:
                    self._burst_peak = energy
                    self._burst_peak_index = index
                # Emit when the burst ends — or when the apex has gone
                # stale: during fast typing the energy may never dip
                # below the adaptive threshold between keystrokes, so a
                # refractory-old apex is confirmed as its own event and
                # apex tracking restarts for the next keystroke.
                stale = index - self._burst_peak_index >= self._refractory
                if not above or stale:
                    strong = self._burst_peak > (
                        self._min_peak_ratio * self._mean_energy
                    )
                    if strong:
                        events.append(
                            DetectedKeystroke(
                                index=self._burst_peak_index,
                                time=self._burst_peak_index / self._fs,
                                energy=self._burst_peak,
                                threshold=threshold,
                            )
                        )
                        self._last_emit = self._burst_peak_index
                    if not above:
                        self._in_burst = False
                    else:
                        # Restart apex tracking within the ongoing burst.
                        self._burst_peak = energy
                        self._burst_peak_index = index
        return events

    def flush(self) -> List[DetectedKeystroke]:
        """Emit a pending burst apex at end of stream, if any."""
        if not self._in_burst:
            return []
        if self._burst_peak <= self._min_peak_ratio * self._mean_energy:
            self._in_burst = False
            return []
        event = DetectedKeystroke(
            index=self._burst_peak_index,
            time=self._burst_peak_index / self._fs,
            energy=self._burst_peak,
            threshold=self._config.energy_threshold_ratio * self._mean_energy,
        )
        self._last_emit = self._burst_peak_index
        self._in_burst = False
        return [event]
