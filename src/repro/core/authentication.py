"""Authentication phase: PIN check, model selection, results integration.

Implements the right-hand side of Fig. 4. After PIN verification (done
by the :class:`~repro.core.authenticator.P2Auth` facade), the input
case decides which model runs:

- **one-handed** — the full-waveform model (or the fused-waveform
  model when the privacy boost is enabled);
- **two-handed, 3 keystrokes detected** — per-key single-waveform
  models; legitimate if at least 2 of 3 pass;
- **two-handed, 2 keystrokes detected** — both must pass;
- **fewer than 2 detected** — rejected outright (Section IV-B.2.6);
- **NO-PIN mode** — per-key models on all detected keystrokes with
  the same 2-of-3 style integration, no PIN check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import AuthenticationError
from ..types import InputCase
from .degradation import DegradationEvent
from .enrollment import (
    EnrolledModels,
    extract_full_waveform,
    extract_fused_waveform,
    extract_segments,
)
from .input_case import identify_input_case
from .pipeline import PreprocessedTrial


@dataclass(frozen=True)
class AuthDecision:
    """Outcome of one authentication attempt.

    Attributes:
        accepted: the final verdict.
        reason: short human-readable explanation.
        input_case: the identified input case (None if PIN failed
            before signal analysis).
        pin_ok: result of PIN verification (None in NO-PIN mode).
        scores: classifier scores that contributed to the verdict.
        keys_checked: keys whose single-waveform models ran.
        passes: per-key pass flags aligned with ``keys_checked``.
        degradation: rungs of the degradation ladder taken before the
            decision (empty when no policy ran or nothing was wrong).
    """

    accepted: bool
    reason: str
    input_case: Optional[InputCase] = None
    pin_ok: Optional[bool] = None
    scores: Tuple[float, ...] = field(default_factory=tuple)
    keys_checked: Tuple[str, ...] = field(default_factory=tuple)
    passes: Tuple[bool, ...] = field(default_factory=tuple)
    degradation: Tuple[DegradationEvent, ...] = field(default_factory=tuple)


def _integrate(passes: Tuple[bool, ...]) -> bool:
    """Results integration rule of Section IV-B.3.

    3 keystrokes: pass if >= 2 legal. 2 keystrokes: all must be legal.
    4+ keystrokes (NO-PIN one-handed entry): at most one may fail.
    A single keystroke never authenticates.
    """
    n = len(passes)
    hits = sum(passes)
    if n <= 1:
        return False
    if n == 2:
        return hits == 2
    if n == 3:
        return hits >= 2
    return hits >= n - 1


def _check_keystrokes(
    models: EnrolledModels, preprocessed: PreprocessedTrial
) -> Tuple[Tuple[str, ...], Tuple[float, ...], Tuple[bool, ...]]:
    """Run the per-key models over every detected keystroke."""
    keys = []
    scores = []
    passes = []
    for segment in extract_segments(preprocessed, models.config):
        keys.append(segment.key)
        model = models.key_models.get(segment.key)
        if model is None:
            # A keystroke on a key never enrolled cannot be verified —
            # it counts as a failed check, never as a free pass.
            scores.append(float("-inf"))
            passes.append(False)
            continue
        score = float(model.decision_function(segment.samples)[0])
        scores.append(score)
        passes.append(score > 0.0)
    return tuple(keys), tuple(scores), tuple(passes)


def authenticate_preprocessed(
    models: EnrolledModels,
    preprocessed: PreprocessedTrial,
    pin_ok: Optional[bool],
    no_pin_mode: bool = False,
) -> AuthDecision:
    """Authenticate a preprocessed trial against enrolled models.

    Args:
        models: the enrolled user's models.
        preprocessed: the probe trial after preprocessing.
        pin_ok: PIN verification outcome (``None`` in NO-PIN mode).
        no_pin_mode: authenticate by keystroke pattern alone.

    Returns:
        The authentication decision.
    """
    if not no_pin_mode:
        if pin_ok is None:
            raise AuthenticationError("pin_ok is required outside NO-PIN mode")
        if not pin_ok:
            return AuthDecision(
                accepted=False, reason="PIN verification failed", pin_ok=False
            )

    case = identify_input_case(preprocessed)
    if case is InputCase.REJECT:
        return AuthDecision(
            accepted=False,
            reason=(
                f"only {preprocessed.detected_count} keystroke(s) detected; "
                "at least two are required"
            ),
            input_case=case,
            pin_ok=pin_ok,
        )

    if no_pin_mode or case is not InputCase.ONE_HANDED:
        keys, scores, passes = _check_keystrokes(models, preprocessed)
        accepted = _integrate(passes)
        return AuthDecision(
            accepted=accepted,
            reason=(
                f"{sum(passes)}/{len(passes)} keystroke waveforms legal "
                f"({case.value})"
            ),
            input_case=case,
            pin_ok=pin_ok,
            scores=scores,
            keys_checked=keys,
            passes=passes,
        )

    # One-handed with a fixed PIN: full (or fused) waveform model.
    options = models.options
    if options.privacy_boost:
        if models.fused_model is None:
            raise AuthenticationError("privacy boost enabled but no fused model")
        waveform = extract_fused_waveform(preprocessed, models.config)
        score = float(models.fused_model.decision_function(waveform)[0])
        label = "fused waveform"
    else:
        if models.full_model is None:
            raise AuthenticationError("no full-waveform model enrolled")
        waveform = extract_full_waveform(
            preprocessed, options.full_window, options.full_margin
        )
        score = float(models.full_model.decision_function(waveform)[0])
        label = "full waveform"

    accepted = score > 0.0
    return AuthDecision(
        accepted=accepted,
        reason=f"{label} score {score:+.3f} ({'legal' if accepted else 'illegal'})",
        input_case=case,
        pin_ok=pin_ok,
        scores=(score,),
    )
