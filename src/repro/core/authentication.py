"""Authentication phase: PIN check, model selection, results integration.

Implements the right-hand side of Fig. 4. After PIN verification (done
by the :class:`~repro.core.authenticator.P2Auth` facade), the input
case decides which model runs:

- **one-handed** — the full-waveform model (or the fused-waveform
  model when the privacy boost is enabled);
- **two-handed, 3 keystrokes detected** — per-key single-waveform
  models; legitimate if at least 2 of 3 pass;
- **two-handed, 2 keystrokes detected** — both must pass;
- **fewer than 2 detected** — rejected outright (Section IV-B.2.6);
- **NO-PIN mode** — per-key models on all detected keystrokes with
  the same 2-of-3 style integration, no PIN check.

The actual sequence lives in the staged engine
(:mod:`repro.core.stages`); this module keeps the historical functional
surface — :class:`AuthDecision`, :func:`_integrate`, and
:func:`authenticate_preprocessed` — as thin delegations so existing
imports and call sites are untouched.
"""

from __future__ import annotations

from typing import Optional

from .models import EnrolledModels
from .pipeline import PreprocessedTrial
from .stages import AuthDecision, AuthPipeline, Preprocessed, _integrate

__all__ = ["AuthDecision", "authenticate_preprocessed", "_integrate"]


def authenticate_preprocessed(
    models: EnrolledModels,
    preprocessed: PreprocessedTrial,
    pin_ok: Optional[bool],
    no_pin_mode: bool = False,
) -> AuthDecision:
    """Authenticate a preprocessed trial against enrolled models.

    Args:
        models: the enrolled user's models.
        preprocessed: the probe trial after preprocessing.
        pin_ok: PIN verification outcome (``None`` in NO-PIN mode).
        no_pin_mode: authenticate by keystroke pattern alone.

    Returns:
        The authentication decision.
    """
    pipeline = AuthPipeline(models, no_pin_mode=no_pin_mode)
    return pipeline.run_preprocessed(
        [Preprocessed(trial=preprocessed, pin_ok=pin_ok)]
    )[0]
