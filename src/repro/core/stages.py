"""The staged authentication engine: one execution path for everything.

The Fig. 4 authentication sequence, decomposed into typed stages with
explicit artifacts::

    Recording → Repaired → Preprocessed → Segments → Features → Scores
              → AuthDecision

Every stage is a small object satisfying the :class:`Stage` protocol
(``run(items) -> outputs``); batch-first signatures keep the vectorized
preprocessing (:func:`~repro.core.pipeline.preprocess_trials`) and the
multi-RHS classifier paths hot. :class:`AuthPipeline` composes the six
stages and is the *only* implementation of the sequence — the
:class:`~repro.core.authenticator.P2Auth` façade, the session manager,
the streaming front-end, and the evaluation harness all run through it,
so the pipeline cannot drift between entry points.

Each stage wraps the pre-existing functions (``apply_policy``,
``preprocess_trials``, segmentation/fusion, ``WaveformModel._featurize``,
score integration) without reimplementing them, which is what keeps the
staged path bit-identical to the historical monolithic one (asserted by
``tests/test_stage_parity.py``).
"""

from __future__ import annotations

from typing import (
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    TypeVar,
    runtime_checkable,
)

import numpy as np

from ..config import PipelineConfig
from ..errors import AuthenticationError, NotFittedError
from ..types import InputCase, PinEntryTrial
from .artifacts import (
    AuthDecision,
    FeatureBlock,
    Features,
    Preprocessed,
    Recording,
    Repaired,
    Scores,
    Segments,
    _integrate,
)
from .degradation import DegradationPolicy, apply_policy
from .input_case import identify_input_case
from .models import (
    EnrolledModels,
    WaveformModel,
    extract_full_waveform,
    extract_fused_waveform,
    extract_segments,
)
from .pipeline import PreprocessedTrial, preprocess_trials

In = TypeVar("In", contravariant=True)
Out = TypeVar("Out", covariant=True)


@runtime_checkable
class Stage(Protocol[In, Out]):
    """One step of the authentication pipeline.

    A stage maps a batch of input artifacts to a batch of output
    artifacts, one output per input, in order. Batch signatures are
    deliberate: stages that can vectorize across trials (preprocessing,
    classification) do, and per-item stages just loop.
    """

    name: str

    def run(self, items: Sequence[In]) -> List[Out]:
        """Transform a batch of artifacts."""
        ...


# ---------------------------------------------------------------------------
# Stages
# ---------------------------------------------------------------------------


class RepairStage:
    """``Recording → Repaired``: the graceful-degradation ladder."""

    name = "repair"

    def __init__(
        self, config: PipelineConfig, policy: Optional[DegradationPolicy]
    ) -> None:
        self._config = config
        self._policy = policy

    def run(self, items: Sequence[Recording]) -> List[Repaired]:
        if self._policy is None:
            return [
                Repaired(trial=r.trial, pin_ok=r.pin_ok) for r in items
            ]
        out = []
        for r in items:
            trial, events = apply_policy(r.trial, self._config, self._policy)
            out.append(
                Repaired(trial=trial, pin_ok=r.pin_ok, degradation=events)
            )
        return out


class PreprocessStage:
    """``Repaired → Preprocessed``: batched Section IV-A pipeline."""

    name = "preprocess"

    def __init__(self, config: PipelineConfig) -> None:
        self._config = config

    def run(self, items: Sequence[Repaired]) -> List[Preprocessed]:
        preprocessed = preprocess_trials(
            [r.trial for r in items], self._config
        )
        return [
            Preprocessed(
                trial=p, pin_ok=r.pin_ok, degradation=r.degradation
            )
            for r, p in zip(items, preprocessed)
        ]


class SegmentStage:
    """``Preprocessed → Segments``: input-case routing + waveform cuts.

    The model-presence checks run here, before any waveform is
    extracted, preserving the historical exception order: a one-handed
    probe against a user with no full (or fused) model raises without
    touching the signal.
    """

    name = "segment"

    def __init__(self, models: EnrolledModels, no_pin_mode: bool) -> None:
        self._models = models
        self._no_pin_mode = no_pin_mode

    def run(self, items: Sequence[Preprocessed]) -> List[Segments]:
        return [self._route(item) for item in items]

    def _route(self, item: Preprocessed) -> Segments:
        models = self._models
        case = identify_input_case(item.trial)
        if case is InputCase.REJECT:
            return Segments(
                case=case,
                route="reject",
                detected=item.trial.detected_count,
                pin_ok=item.pin_ok,
                degradation=item.degradation,
            )
        if self._no_pin_mode or case is not InputCase.ONE_HANDED:
            return Segments(
                case=case,
                route="keystrokes",
                detected=item.trial.detected_count,
                segments=tuple(extract_segments(item.trial, models.config)),
                pin_ok=item.pin_ok,
                degradation=item.degradation,
            )
        options = models.options
        if options.privacy_boost:
            if models.fused_model is None:
                raise AuthenticationError(
                    "privacy boost enabled but no fused model"
                )
            waveform = extract_fused_waveform(item.trial, models.config)
            route, label = "fused", "fused waveform"
        else:
            if models.full_model is None:
                raise AuthenticationError("no full-waveform model enrolled")
            waveform = extract_full_waveform(
                item.trial, options.full_window, options.full_margin
            )
            route, label = "full", "full waveform"
        return Segments(
            case=case,
            route=route,
            detected=item.trial.detected_count,
            waveform=waveform,
            label=label,
            pin_ok=item.pin_ok,
            degradation=item.degradation,
        )


def _featurize_one(model: WaveformModel, x: np.ndarray) -> np.ndarray:
    """The pre-classifier half of ``WaveformModel.decision_function``."""
    if not model._fitted:
        raise NotFittedError("WaveformModel.fit has not been called")
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 2:
        x = x[np.newaxis]
    return model._featurize(x, fit=False)


class FeaturizeStage:
    """``Segments → Features``: run each model's feature extractor."""

    name = "featurize"

    def __init__(self, models: EnrolledModels) -> None:
        self._models = models

    def run(self, items: Sequence[Segments]) -> List[Features]:
        return [self._featurize(item) for item in items]

    def _featurize(self, item: Segments) -> Features:
        models = self._models
        blocks: List[FeatureBlock] = []
        if item.route == "keystrokes":
            for segment in item.segments:
                model = models.key_models.get(segment.key)
                if model is None:
                    blocks.append(FeatureBlock(segment.key, None, None))
                    continue
                blocks.append(
                    FeatureBlock(
                        segment.key,
                        model,
                        _featurize_one(model, segment.samples),
                    )
                )
        elif item.route in ("full", "fused"):
            model = (
                models.fused_model
                if item.route == "fused"
                else models.full_model
            )
            assert model is not None and item.waveform is not None
            blocks.append(
                FeatureBlock(None, model, _featurize_one(model, item.waveform))
            )
        return Features(
            case=item.case,
            route=item.route,
            detected=item.detected,
            blocks=tuple(blocks),
            label=item.label,
            pin_ok=item.pin_ok,
            degradation=item.degradation,
        )


class ClassifyStage:
    """``Features → Scores``: classifier calls + per-block verdicts."""

    name = "classify"

    def run(self, items: Sequence[Features]) -> List[Scores]:
        return [self._score(item) for item in items]

    @staticmethod
    def _score(item: Features) -> Scores:
        keys: List[str] = []
        scores: List[float] = []
        passes: List[bool] = []
        for block in item.blocks:
            if block.key is not None:
                keys.append(block.key)
            if block.model is None or block.features is None:
                # A keystroke on a key never enrolled cannot be
                # verified — it counts as a failed check, never as a
                # free pass.
                scores.append(float("-inf"))
                passes.append(False)
                continue
            score = float(
                np.asarray(
                    block.model._classifier.decision_function(block.features)
                )[0]
            )
            scores.append(score)
            passes.append(score > 0.0)
        return Scores(
            case=item.case,
            route=item.route,
            detected=item.detected,
            keys=tuple(keys),
            scores=tuple(scores),
            passes=tuple(passes),
            label=item.label,
            pin_ok=item.pin_ok,
            degradation=item.degradation,
        )


class DecideStage:
    """``Scores → AuthDecision``: results integration (Section IV-B.3)."""

    name = "decide"

    def run(self, items: Sequence[Scores]) -> List[AuthDecision]:
        return [self._decide(item) for item in items]

    @staticmethod
    def _decide(item: Scores) -> AuthDecision:
        if item.route == "reject":
            return AuthDecision(
                accepted=False,
                reason=(
                    f"only {item.detected} keystroke(s) detected; "
                    "at least two are required"
                ),
                input_case=item.case,
                pin_ok=item.pin_ok,
                degradation=item.degradation,
            )
        if item.route == "keystrokes":
            accepted = _integrate(item.passes)
            return AuthDecision(
                accepted=accepted,
                reason=(
                    f"{sum(item.passes)}/{len(item.passes)} keystroke "
                    f"waveforms legal ({item.case.value})"
                ),
                input_case=item.case,
                pin_ok=item.pin_ok,
                scores=item.scores,
                keys_checked=item.keys,
                passes=item.passes,
                degradation=item.degradation,
            )
        score = item.scores[0]
        accepted = score > 0.0
        return AuthDecision(
            accepted=accepted,
            reason=(
                f"{item.label} score {score:+.3f} "
                f"({'legal' if accepted else 'illegal'})"
            ),
            input_case=item.case,
            pin_ok=item.pin_ok,
            scores=(score,),
            degradation=item.degradation,
        )


# ---------------------------------------------------------------------------
# The composed pipeline
# ---------------------------------------------------------------------------


class AuthPipeline:
    """The six stages composed into the one authentication path.

    Args:
        models: the enrolled user's models.
        config: pipeline constants for repair + preprocessing; defaults
            to ``models.config`` (they differ only if an authenticator
            was constructed with a different config than it enrolled
            with, in which case the façade's config wins — the
            historical behaviour).
        policy: graceful-degradation policy (``None`` disables it).
        no_pin_mode: authenticate by keystroke pattern alone.
    """

    def __init__(
        self,
        models: EnrolledModels,
        config: Optional[PipelineConfig] = None,
        policy: Optional[DegradationPolicy] = None,
        no_pin_mode: bool = False,
    ) -> None:
        self.models = models
        self.config = config if config is not None else models.config
        self.policy = policy
        self.no_pin_mode = no_pin_mode
        self.repair = RepairStage(self.config, policy)
        self.preprocess = PreprocessStage(self.config)
        self.segment = SegmentStage(models, no_pin_mode)
        self.featurize = FeaturizeStage(models)
        self.classify = ClassifyStage()
        self.decide = DecideStage()

    @property
    def stages(self) -> Tuple[Stage, ...]:
        """The stage chain, in execution order."""
        return (
            self.repair,
            self.preprocess,
            self.segment,
            self.featurize,
            self.classify,
            self.decide,
        )

    @staticmethod
    def _execute(
        items: Sequence, stages: Tuple[Stage, ...], profile: bool
    ) -> List[AuthDecision]:
        """Run a stage chain; optionally attach per-stage wall times.

        Profiling wraps each stage's batch call in ``profile_call`` and
        never touches the artifacts themselves, so the numeric path is
        identical with and without it — only the observability field
        ``AuthDecision.stage_timings`` differs.
        """
        if not profile:
            for stage in stages:
                items = stage.run(items)
            return list(items)
        from dataclasses import replace

        from ..eval.profiling import profile_call

        timings: List[Tuple[str, float]] = []
        for stage in stages:
            run = profile_call(lambda s=stage, batch=items: s.run(batch))
            items = run.result
            timings.append((stage.name, run.seconds))
        frozen = tuple(timings)
        return [replace(d, stage_timings=frozen) for d in items]

    def run(
        self,
        trials: Sequence[PinEntryTrial],
        pin_oks: Optional[Sequence[Optional[bool]]] = None,
        profile: bool = False,
    ) -> List[AuthDecision]:
        """Authenticate a batch of raw probe trials.

        Wrong-PIN probes short-circuit before any signal processing —
        they never reach the repair ladder, so a damaged recording with
        a wrong PIN is rejected for the PIN, not refused for quality.

        Args:
            trials: the probe trials.
            pin_oks: per-trial PIN verdicts (``None`` entries only in
                NO-PIN mode).
            profile: attach per-stage wall times to the decisions (see
                :meth:`_execute`); short-circuited wrong-PIN decisions
                carry no timings because no stage ran for them.
        """
        if pin_oks is None:
            pin_oks = [None] * len(trials)
        if len(pin_oks) != len(trials):
            raise AuthenticationError(
                f"got {len(trials)} trials but {len(pin_oks)} PIN verdicts"
            )
        results: List[Optional[AuthDecision]] = [None] * len(trials)
        live: List[Recording] = []
        live_at: List[int] = []
        for i, (trial, pin_ok) in enumerate(zip(trials, pin_oks)):
            if not self.no_pin_mode:
                if pin_ok is None:
                    raise AuthenticationError(
                        "pin_ok is required outside NO-PIN mode"
                    )
                if not pin_ok:
                    results[i] = AuthDecision(
                        accepted=False,
                        reason="PIN verification failed",
                        pin_ok=False,
                    )
                    continue
            live.append(Recording(trial=trial, pin_ok=pin_ok))
            live_at.append(i)
        if live:
            decisions = self._execute(live, self.stages, profile)
            for i, decision in zip(live_at, decisions):
                results[i] = decision
        return [r for r in results if r is not None]

    def run_preprocessed(
        self, items: Sequence[Preprocessed], profile: bool = False
    ) -> List[AuthDecision]:
        """Authenticate already-preprocessed probes (eval hot path)."""
        results: List[Optional[AuthDecision]] = [None] * len(items)
        live: List[Preprocessed] = []
        live_at: List[int] = []
        for i, item in enumerate(items):
            if not self.no_pin_mode:
                if item.pin_ok is None:
                    raise AuthenticationError(
                        "pin_ok is required outside NO-PIN mode"
                    )
                if not item.pin_ok:
                    results[i] = AuthDecision(
                        accepted=False,
                        reason="PIN verification failed",
                        pin_ok=False,
                    )
                    continue
            live.append(item)
            live_at.append(i)
        if live:
            stages = (self.segment, self.featurize, self.classify, self.decide)
            decisions = self._execute(live, stages, profile)
            for i, decision in zip(live_at, decisions):
                results[i] = decision
        return [r for r in results if r is not None]
