"""The fused single-probe authentication hot path (ROADMAP item 3).

:class:`HotAuthPipeline` runs the same Fig. 4 sequence as the staged
:class:`~repro.core.stages.AuthPipeline`, but composed for per-probe
latency instead of batch throughput:

- **No intermediate artifacts.** The staged engine materializes a
  ``Recording → Repaired → Preprocessed → Segments → Features → Scores``
  chain (six frozen dataclasses plus per-stage lists) per probe. The
  fused path calls the same underlying stage functions back to back and
  keeps everything in locals.
- **Preallocated scratch buffers.** The median-filter network, the
  detrended channels, and the per-model feature rows are written into
  buffers owned by the pipeline and reused across calls (keyed by
  signal shape, small LRU, one set per thread via ``threading.local``).
  Decisions carry only scalars, strings, and tuples, so nothing the
  caller sees aliases the scratch.
- **Cheaper-but-identical kernels.** The 5-point median runs as a
  min/max selection network, the Savitzky-Golay smoothing reuses cached
  FIR coefficients, the calibration extreme-point search is vectorized,
  and the MiniRocket C kernel is invoked through a pre-marshalled
  argument plan. Each replacement is *value-identical* to the function
  the staged path calls — pinned at ``rtol=0/atol=0`` by
  ``tests/test_stage_parity.py``.
- **Explicit warmup.** :meth:`warmup` pays every one-off cost — the
  C-kernel compile/load, the banded-Cholesky factorization, the SG
  coefficients, buffer allocation — so no first-call work sits in the
  request path. Warming changes latency only, never results.

The parity contract: for any probe and PIN verdict,
``HotAuthPipeline.authenticate`` returns an ``AuthDecision`` whose
every field equals the staged pipeline's, and raises the same typed
errors with the same messages on the same inputs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..concurrency import checked_rlock
from ..config import PipelineConfig
from ..errors import AuthenticationError, NotFittedError
from ..features import warm_engine
from ..signal.calibration import calibrate_trial_indices_fast
from ..signal.detrend import _solve_trend_fast, _validate_lam, warm_detrend_factor
from ..signal.energy import short_time_energy
from ..signal.filters import (
    median_filter_multi_fast,
    median_filter_workspace,
    warm_savgol,
)
from ..types import InputCase, PinEntryTrial
from .artifacts import AuthDecision, _integrate
from .degradation import DegradationEvent, DegradationPolicy, apply_policy
from .input_case import identify_input_case
from .models import (
    EnrolledModels,
    WaveformModel,
    extract_full_waveform,
    extract_fused_waveform,
    extract_segments,
)
from .pipeline import PreprocessedTrial, _validate_probe

#: Distinct ``(channels, n)`` signal shapes whose scratch buffers are
#: kept alive at once; least-recently-used shapes are evicted beyond
#: this (a probe stream has one shape, so eviction is the exception).
SCRATCH_SHAPES = 8


class _Scratch:  # concurrency: thread-hostile
    """Preprocessing buffers for one ``(channels, n)`` signal shape.

    Unsynchronized by design: instances live in ``threading.local``
    storage, one set per thread, and must never escape it."""

    __slots__ = ("median_work", "filtered", "detrended", "calib_ref",
                 "energy_ref")

    def __init__(self, channels: int, n: int, kernel: int) -> None:
        if kernel in (3, 5) and n >= kernel:
            self.median_work: Optional[tuple] = median_filter_workspace(
                channels, n, kernel
            )
        else:
            self.median_work = None
        self.filtered = np.empty((channels, n))
        self.detrended = np.empty((channels, n))
        self.calib_ref = np.empty(n)
        self.energy_ref = np.empty(n)


class HotAuthPipeline:
    """Fused, buffer-reusing variant of the staged authentication path.

    Args:
        models: the enrolled user's models.
        config: pipeline constants; defaults to ``models.config`` (same
            precedence as :class:`~repro.core.stages.AuthPipeline`).
        policy: graceful-degradation policy (``None`` disables it).
        no_pin_mode: authenticate by keystroke pattern alone.

    Thread-safe: the scratch and feature-row buffers live in
    ``threading.local`` storage (one set per thread, allocated lazily),
    so concurrent ``authenticate`` calls on one shared instance are
    decision-identical to serial runs — pinned by
    ``tests/concurrency/test_race_stress.py``. The warmup flags are the
    only cross-thread state and sit behind an internal lock.
    """

    def __init__(
        self,
        models: EnrolledModels,
        config: Optional[PipelineConfig] = None,
        policy: Optional[DegradationPolicy] = None,
        no_pin_mode: bool = False,
    ) -> None:
        self.models = models
        self.config = config if config is not None else models.config
        self.policy = policy
        self.no_pin_mode = no_pin_mode
        self._lam = _validate_lam(self.config.detrend_lambda)
        # Per-thread buffer sets: `_tls.scratch` is the shape-keyed LRU,
        # `_tls.feature_buffers` the per-model rows. _Scratch instances
        # are thread-hostile and must never leave their thread's slot.
        self._tls = threading.local()
        self._warm_lock = checked_rlock("HotAuthPipeline._warm_lock")
        self._warmed = False  # guarded-by: _warm_lock
        self._warmed_lengths: set = set()  # guarded-by: _warm_lock

    # -- warmup ------------------------------------------------------------

    def _iter_models(self) -> Iterable[WaveformModel]:
        models = self.models
        for model in (models.full_model, models.fused_model):
            if model is not None:
                yield model
        for model in models.key_models.values():
            yield model

    def warmup(self, signal_lengths: Sequence[int] = ()) -> bool:
        """Pay every one-off cost ahead of the first authenticate call.

        Compiles/loads the MiniRocket C kernel, marshals each enrolled
        model's transform plan (one throwaway transform per distinct
        extractor), primes the Savitzky-Golay coefficient cache, and —
        for each length in ``signal_lengths`` — the banded-Cholesky
        detrend factorization. Results are unaffected: a warmed and an
        unwarmed pipeline return bit-identical decisions.

        Args:
            signal_lengths: expected probe lengths whose detrend
                factorizations should be primed (the factor cache keys
                on length, which is unknown until a probe arrives).

        Returns:
            True when any cold work was done; False when everything was
            already warm (the idempotence contract — a second call with
            the same arguments is a no-op). A *concurrent* caller may
            see False while another thread's warm work is still in
            flight; results are unaffected either way, and the registry
            publishes instances only after their warmup returned.
        """
        # Claim outstanding work under the lock, run it outside: the
        # underlying warms are idempotent process-wide caches, so a
        # racing claimer doing duplicate cache fills would be benign —
        # but holding the lock across a kernel compile (RL012) would
        # stall every concurrent warmup behind one slow build.
        with self._warm_lock:
            need_engine = not self._warmed
            self._warmed = True
            new_lengths: List[int] = []
            for length in signal_lengths:
                length = int(length)
                if length not in self._warmed_lengths:
                    self._warmed_lengths.add(length)
                    new_lengths.append(length)
        did_work = False
        if need_engine:
            warm_engine()
            warm_savgol(self.config.sg_window, self.config.sg_polyorder)
            warmed_rockets = set()
            for model in self._iter_models():
                rocket = getattr(model, "_rocket", None)
                if rocket is not None and rocket._fitted:
                    if id(rocket) not in warmed_rockets:
                        rocket.warm()
                        warmed_rockets.add(id(rocket))
                    self._feature_buffers_for(model)
            did_work = True
        for length in new_lengths:
            warm_detrend_factor(length, self._lam)
            did_work = True
        return did_work

    # -- buffer management -------------------------------------------------

    def _local_buffers(
        self,
    ) -> Tuple[
        "OrderedDict[Tuple[int, int], _Scratch]",
        Dict[int, Tuple[WaveformModel, np.ndarray, np.ndarray]],
    ]:
        """This thread's buffer set, allocated on first use."""
        tls = self._tls
        try:
            return tls.scratch, tls.feature_buffers
        except AttributeError:
            tls.scratch = OrderedDict()
            tls.feature_buffers = {}
            return tls.scratch, tls.feature_buffers

    def _scratch_for(self, channels: int, n: int) -> _Scratch:
        scratches, _ = self._local_buffers()
        key = (channels, n)
        scratch = scratches.get(key)
        if scratch is None:
            scratch = _Scratch(channels, n, self.config.median_kernel)
            # reprolint: disable-next=RL011 -- confinement, not escape: this dict lives in threading.local storage
            scratches[key] = scratch
            while len(scratches) > SCRATCH_SHAPES:
                scratches.popitem(last=False)
        else:
            scratches.move_to_end(key)
        return scratch

    def _feature_buffers_for(
        self, model: WaveformModel
    ) -> Tuple[np.ndarray, np.ndarray]:
        _, feature_buffers = self._local_buffers()
        entry = feature_buffers.get(id(model))
        if entry is None or entry[0] is not model:
            width = model._rocket.n_features_out
            entry = (model, np.empty((1, width)), np.empty((1, width)))
            feature_buffers[id(model)] = entry
        return entry[1], entry[2]

    # -- the fused request path --------------------------------------------

    def _featurize_fast(
        self, model: WaveformModel, x: np.ndarray
    ) -> np.ndarray:
        """Buffer-reusing twin of the staged featurize step.

        Mirrors ``stages._featurize_one`` + ``WaveformModel._featurize``
        exactly for the ROCKET method — same transform (into a reused
        row buffer), same elementwise standardization (in place) — and
        delegates verbatim for every other feature method.
        """
        if not model._fitted:
            raise NotFittedError("WaveformModel.fit has not been called")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2:
            x = x[np.newaxis]
        if model.feature_method != "rocket":
            return model._featurize(x, fit=False)
        if model._rocket is None or model._scaler is None:
            raise NotFittedError("WaveformModel.fit has not been called")
        raw_buf, std_buf = self._feature_buffers_for(model)
        features = model._rocket.transform(x, out=raw_buf)
        # (x - mean) / scale, elementwise into the reused row — the same
        # two operations StandardScaler.transform performs.
        np.subtract(features, model._scaler._mean, out=std_buf)
        np.divide(std_buf, model._scaler._scale, out=std_buf)
        return std_buf

    @staticmethod
    def _score_one(model: WaveformModel, features: np.ndarray) -> float:
        return float(
            np.asarray(model._classifier.decision_function(features))[0]
        )

    @staticmethod
    def _extract_full_fast(
        pre: PreprocessedTrial, window: int, margin: int
    ) -> np.ndarray:
        """``extract_full_waveform`` minus the edge-padding machinery.

        When the anchored window lies entirely inside the signal — every
        realistic probe — the extracted waveform is exactly the slice
        ``detrended[:, start:start+window]``, so return that view and
        skip ``np.pad``. Windows that run off the end delegate to the
        staged extractor unchanged.
        """
        detrended = pre.detrended
        n = detrended.shape[1]
        start = min(pre.keystroke_indices) - margin
        if start < 0:
            start = 0
        elif start > n - 1:
            start = n - 1
        if start + window <= n:
            return detrended[:, start : start + window]
        return extract_full_waveform(pre, window, margin)

    def _preprocess_fused(self, trial: PinEntryTrial) -> PreprocessedTrial:
        """The Section IV-A phase on reused buffers.

        Value-identical to ``preprocess_trials([trial], config)[0]``:
        the fast median/SG/calibration kernels are pinned to their
        staged counterparts, and the detrend solves the same multi-RHS
        banded system against the same cached factorization.
        """
        config = self.config
        _validate_probe(trial, config)
        samples = np.asarray(trial.recording.samples, dtype=np.float64)
        if samples.ndim != 2:
            # Raises the staged path's exact SignalError for bad shapes.
            median_filter_multi_fast(samples, config.median_kernel)
        scratch = self._scratch_for(samples.shape[0], samples.shape[1])

        filtered = median_filter_multi_fast(
            samples,
            config.median_kernel,
            out=scratch.filtered,
            work=scratch.median_work,
        )
        trend = _solve_trend_fast(filtered, self._lam)
        detrended = np.subtract(filtered, trend, out=scratch.detrended)

        calibration_reference = np.mean(
            filtered, axis=0, out=scratch.calib_ref
        )
        indices = calibrate_trial_indices_fast(
            trial.recording, trial.events, config, calibration_reference
        )

        reference = np.mean(detrended, axis=0, out=scratch.energy_ref)
        energy = short_time_energy(reference, config.energy_window)
        threshold = config.energy_threshold_ratio * float(energy.mean())
        detected = tuple(bool(energy[i] > threshold) for i in indices)

        return PreprocessedTrial(
            trial=trial,
            filtered=filtered,
            detrended=detrended,
            reference=reference,
            keystroke_indices=tuple(int(i) for i in indices),
            keystroke_detected=detected,
            energy_threshold=threshold,
            config=config,
        )

    def authenticate(
        self, trial: PinEntryTrial, pin_ok: Optional[bool] = None
    ) -> AuthDecision:
        """Authenticate one probe on the fused path.

        Decision-for-decision identical to
        ``AuthPipeline.run([trial], [pin_ok])[0]`` — same fields, same
        reason strings, same exceptions (asserted by the parity suite).
        """
        if not self.no_pin_mode:
            if pin_ok is None:
                raise AuthenticationError(
                    "pin_ok is required outside NO-PIN mode"
                )
            if not pin_ok:
                return AuthDecision(
                    accepted=False,
                    reason="PIN verification failed",
                    pin_ok=False,
                )
        degradation: Tuple[DegradationEvent, ...] = ()
        if self.policy is not None:
            trial, degradation = apply_policy(trial, self.config, self.policy)

        pre = self._preprocess_fused(trial)
        models = self.models
        case = identify_input_case(pre)
        if case is InputCase.REJECT:
            return AuthDecision(
                accepted=False,
                reason=(
                    f"only {pre.detected_count} keystroke(s) detected; "
                    "at least two are required"
                ),
                input_case=case,
                pin_ok=pin_ok,
                degradation=degradation,
            )

        if self.no_pin_mode or case is not InputCase.ONE_HANDED:
            keys: List[str] = []
            scores: List[float] = []
            passes: List[bool] = []
            for segment in extract_segments(pre, models.config):
                keys.append(segment.key)
                model = models.key_models.get(segment.key)
                if model is None:
                    # Never-enrolled key: a failed check, not a free pass.
                    scores.append(float("-inf"))
                    passes.append(False)
                    continue
                score = self._score_one(
                    model, self._featurize_fast(model, segment.samples)
                )
                scores.append(score)
                passes.append(score > 0.0)
            passes_t = tuple(passes)
            accepted = _integrate(passes_t)
            return AuthDecision(
                accepted=accepted,
                reason=(
                    f"{sum(passes_t)}/{len(passes_t)} keystroke "
                    f"waveforms legal ({case.value})"
                ),
                input_case=case,
                pin_ok=pin_ok,
                scores=tuple(scores),
                keys_checked=tuple(keys),
                passes=passes_t,
                degradation=degradation,
            )

        options = models.options
        if options.privacy_boost:
            if models.fused_model is None:
                raise AuthenticationError(
                    "privacy boost enabled but no fused model"
                )
            waveform = extract_fused_waveform(pre, models.config)
            model, label = models.fused_model, "fused waveform"
        else:
            if models.full_model is None:
                raise AuthenticationError("no full-waveform model enrolled")
            waveform = self._extract_full_fast(
                pre, options.full_window, options.full_margin
            )
            model, label = models.full_model, "full waveform"
        score = self._score_one(model, self._featurize_fast(model, waveform))
        accepted = score > 0.0
        return AuthDecision(
            accepted=accepted,
            reason=(
                f"{label} score {score:+.3f} "
                f"({'legal' if accepted else 'illegal'})"
            ),
            input_case=case,
            pin_ok=pin_ok,
            scores=(score,),
            degradation=degradation,
        )
