"""Enrollment façade: the public surface of the enrollment layer.

The enrollment monolith is split along its natural seams —
:mod:`repro.core.models` (waveform extraction + :class:`WaveformModel`
/ :class:`EnrolledModels`), :mod:`repro.core.negatives` (the shared
third-party :class:`NegativeBank`), and :mod:`repro.core.enroll` (the
quality gate and training orchestration). This module re-exports the
complete historical surface so every existing import keeps working;
the submodules are an implementation detail (reprolint rule RL007
rejects importing them from outside ``repro.core``).
"""

from __future__ import annotations

from .enroll import (
    _enroll_shared,
    _usable,
    check_enrollment_quality,
    enroll_models,
)
from .models import (
    FEATURE_METHODS,
    SHAREABLE_FEATURE_METHODS,
    EnrolledModels,
    EnrollmentOptions,
    WaveformModel,
    _collect_segments,
    extract_full_waveform,
    extract_fused_waveform,
    extract_segments,
    fixed_window,
)
from .negatives import (
    MIN_SAME_KEY_NEGATIVES,
    NegativeBank,
    SharedNegativeSet,
    _check_bank,
    _fit_shared_set,
    build_negative_bank,
)

__all__ = [
    "FEATURE_METHODS",
    "SHAREABLE_FEATURE_METHODS",
    "MIN_SAME_KEY_NEGATIVES",
    "EnrollmentOptions",
    "WaveformModel",
    "EnrolledModels",
    "SharedNegativeSet",
    "NegativeBank",
    "fixed_window",
    "extract_full_waveform",
    "extract_segments",
    "extract_fused_waveform",
    "build_negative_bank",
    "check_enrollment_quality",
    "enroll_models",
    "_collect_segments",
    "_check_bank",
    "_fit_shared_set",
    "_enroll_shared",
    "_usable",
]
