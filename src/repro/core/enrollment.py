"""Enrollment phase: building the per-user authentication models.

Enrollment turns a handful of legitimate PIN entries plus the
third-party sample store into the binary classifiers of Section
IV-B.2: a *full waveform* model for one-handed entries, an optional
*fused waveform* model when the privacy boost is enabled (Eq. 4), and
one *single waveform* model per key for the two-handed and NO-PIN
cases. Every model is MiniRocket features + a ridge classifier by
default; the feature method and classifier are pluggable so the
evaluation can swap in the manual baseline (Fig. 11) and the
alternative learners (Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import PipelineConfig
from ..errors import EnrollmentError, NotFittedError, SignalError
from ..features import ManualFeatureExtractor, MiniRocket
from ..signal.quality import assess_recording
from ..ml import RidgeClassifier, StandardScaler
from ..ml.base import BinaryClassifier
from ..types import PinEntryTrial, SegmentedKeystroke
from .fusion import fuse_waveforms
from .pipeline import PreprocessedTrial, preprocess_trials

#: Feature methods supported by :class:`WaveformModel`.
FEATURE_METHODS = ("rocket", "manual", "raw")

#: Feature methods whose extractor can be fitted on the negative class
#: alone, making the featurized negatives shareable across victims.
#: "manual" fits its extractor on the positives, so it cannot share.
SHAREABLE_FEATURE_METHODS = ("rocket", "raw")

#: Minimum same-key third-party segments before a per-key model uses
#: them instead of falling back to the whole store.
MIN_SAME_KEY_NEGATIVES = 10


@dataclass(frozen=True)
class EnrollmentOptions:
    """Knobs of the enrollment phase.

    Attributes:
        privacy_boost: also train the fused-waveform model and use it
            for one-handed authentication (Section IV-B.2.2).
        num_features: total MiniRocket feature budget (paper: ~10K).
        full_window: length of the fixed one-handed waveform window in
            samples (covers all four keystrokes at typical rhythm).
        full_margin: samples kept before the first keystroke in the
            full window.
        feature_method: "rocket" (paper default), "manual"
            (statistical + DTW baseline), or "raw" (hand the raw series
            to the classifier — used by the neural baselines).
        classifier_factory: builds a fresh binary classifier per model.
        seed: seed for the MiniRocket bias sampling.
        min_positive_samples: minimum legitimate samples a model needs.
        quality_gate: refuse to train on enrollment trials whose
            :class:`~repro.signal.quality.QualityReport` is unusable —
            a model fitted on garbage silently degrades every later
            decision, so a bad trial raises
            :class:`~repro.errors.EnrollmentError` instead.
        min_quality_artifact_ratio: keystroke-artifact visibility
            threshold the gate forwards to
            :func:`~repro.signal.quality.assess_recording`.
    """

    privacy_boost: bool = False
    num_features: int = 9996
    full_window: int = 480
    full_margin: int = 45
    feature_method: str = "rocket"
    classifier_factory: Callable[[], BinaryClassifier] = RidgeClassifier
    seed: int = 0
    min_positive_samples: int = 3
    quality_gate: bool = True
    min_quality_artifact_ratio: float = 3.0

    def __post_init__(self) -> None:
        if self.feature_method not in FEATURE_METHODS:
            raise EnrollmentError(
                f"feature_method must be one of {FEATURE_METHODS}, "
                f"got {self.feature_method!r}"
            )
        if self.full_window < 8 or self.full_margin < 0:
            raise EnrollmentError("invalid full-window geometry")
        if self.min_positive_samples < 1:
            raise EnrollmentError("min_positive_samples must be >= 1")


def fixed_window(samples: np.ndarray, start: int, window: int) -> np.ndarray:
    """Cut ``window`` columns starting at ``start``, edge-padding.

    Unlike :func:`repro.signal.segment_around`, the window is anchored
    (not centered) and the signal may be shorter than the window — the
    missing tail is edge-replicated, modelling a capture buffer that
    holds the last sample until the window fills.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim == 1:
        samples = samples[np.newaxis, :]
    n = samples.shape[1]
    start = int(np.clip(start, 0, max(0, n - 1)))
    end = start + window
    chunk = samples[:, start:min(end, n)]
    if chunk.shape[1] < window:
        pad = window - chunk.shape[1]
        chunk = np.pad(chunk, ((0, 0), (0, pad)), mode="edge")
    return chunk


def extract_full_waveform(
    preprocessed: PreprocessedTrial, window: int = 480, margin: int = 45
) -> np.ndarray:
    """The one-handed "whole PPG sample": a fixed window from just
    before the first calibrated keystroke, shape ``(channels, window)``.
    """
    first = min(preprocessed.keystroke_indices)
    return fixed_window(preprocessed.detrended, first - margin, window)


def extract_segments(
    preprocessed: PreprocessedTrial, config: PipelineConfig
) -> List[SegmentedKeystroke]:
    """Single-keystroke segments for every *detected* keystroke."""
    return [
        preprocessed.segment(pos, config.segment_window)
        for pos in preprocessed.detected_positions()
    ]


def extract_fused_waveform(
    preprocessed: PreprocessedTrial, config: PipelineConfig
) -> np.ndarray:
    """Privacy-boost fused waveform (Eq. 4) of the detected keystrokes."""
    segments = extract_segments(preprocessed, config)
    if not segments:
        raise SignalError("no detected keystrokes to fuse")
    return fuse_waveforms(segments)


class WaveformModel:
    """One binary authentication model over fixed-length waveforms.

    Args:
        feature_method: see :class:`EnrollmentOptions`.
        num_features: MiniRocket feature budget (rocket method only).
        classifier_factory: builds the classifier.
        seed: MiniRocket bias seed.
    """

    def __init__(
        self,
        feature_method: str = "rocket",
        num_features: int = 9996,
        classifier_factory: Callable[[], BinaryClassifier] = RidgeClassifier,
        seed: int = 0,
        balanced: bool = False,
    ) -> None:
        if feature_method not in FEATURE_METHODS:
            raise EnrollmentError(f"unknown feature method: {feature_method!r}")
        self.feature_method = feature_method
        self.num_features = num_features
        self.seed = seed
        self.balanced = balanced
        self._classifier = classifier_factory()
        self._rocket: Optional[MiniRocket] = None
        self._manual: Optional[ManualFeatureExtractor] = None
        self._scaler: Optional[StandardScaler] = None
        self._fitted = False

    def _featurize(
        self, x: np.ndarray, fit: bool, positives: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if self.feature_method == "rocket":
            if fit:
                self._rocket = MiniRocket(
                    num_features=self.num_features, seed=self.seed
                )
                self._rocket.fit(x)
            if self._rocket is None:
                raise NotFittedError("WaveformModel.fit has not been called")
            features = self._rocket.transform(x)
        elif self.feature_method == "manual":
            if fit:
                # Stride 2 halves the DTW cost while keeping the
                # manual baseline one to two orders of magnitude
                # slower than the ROCKET path (Table I's comparison).
                self._manual = ManualFeatureExtractor(dtw_stride=2)
                self._manual.fit(positives if positives is not None else x)
            if self._manual is None:
                raise NotFittedError("WaveformModel.fit has not been called")
            features = self._manual.transform(x)
        else:  # raw
            return x
        if fit:
            self._scaler = StandardScaler().fit(features)
        if self._scaler is None:
            raise NotFittedError("WaveformModel.fit has not been called")
        return self._scaler.transform(features)

    def fit(self, positives: np.ndarray, negatives: np.ndarray) -> "WaveformModel":
        """Train on legitimate (``positives``) vs third-party samples.

        Both inputs have shape ``(n, channels, window)``.
        """
        positives = np.asarray(positives, dtype=np.float64)
        negatives = np.asarray(negatives, dtype=np.float64)
        if positives.ndim != 3 or negatives.ndim != 3:
            raise EnrollmentError(
                "expected 3-D (n, channels, window) training arrays, got "
                f"{positives.shape} and {negatives.shape}"
            )
        if positives.shape[0] == 0 or negatives.shape[0] == 0:
            raise EnrollmentError("both classes need at least one sample")
        x = np.concatenate([positives, negatives], axis=0)
        y = np.concatenate(
            [np.ones(positives.shape[0]), -np.ones(negatives.shape[0])]
        )
        features = self._featurize(x, fit=True, positives=positives)
        if self.balanced:
            n_pos = positives.shape[0]
            n_neg = negatives.shape[0]
            n = n_pos + n_neg
            weights = np.where(y > 0, n / (2.0 * n_pos), n / (2.0 * n_neg))
            try:
                self._classifier.fit(features, y, sample_weight=weights)
            except TypeError:
                # Classifier without weight support: fall back silently;
                # balance is an optimization, not a correctness need.
                self._classifier.fit(features, y)
        else:
            self._classifier.fit(features, y)
        self._fitted = True
        return self

    def fit_shared(
        self, positives: np.ndarray, shared: "SharedNegativeSet"
    ) -> "WaveformModel":
        """Train against a pre-featurized shared negative set.

        The extractor comes pre-fitted (on the negatives alone) from
        the :class:`NegativeBank`, so only the positives are featurized
        here; the negative features are reused verbatim across every
        user enrolled against the same bank.
        """
        positives = np.asarray(positives, dtype=np.float64)
        if positives.ndim != 3:
            raise EnrollmentError(
                f"expected a 3-D (n, channels, window) positive array, "
                f"got {positives.shape}"
            )
        if positives.shape[0] == 0:
            raise EnrollmentError("both classes need at least one sample")
        if shared.feature_method != self.feature_method:
            raise EnrollmentError(
                f"shared negatives were featurized with "
                f"{shared.feature_method!r} but this model uses "
                f"{self.feature_method!r}"
            )
        if self.feature_method == "rocket":
            if shared.extractor is None:
                raise EnrollmentError("shared negative set has no extractor")
            self._rocket = shared.extractor
            pos_features = self._rocket.transform(positives)
        elif self.feature_method == "raw":
            pos_features = positives
        else:
            raise EnrollmentError(
                f"feature method {self.feature_method!r} cannot use shared "
                f"negatives (its extractor is fitted on the positives)"
            )
        features = np.concatenate([pos_features, shared.features], axis=0)
        n_pos = positives.shape[0]
        n_neg = shared.features.shape[0]
        y = np.concatenate([np.ones(n_pos), -np.ones(n_neg)])
        if self.feature_method == "rocket":
            self._scaler = StandardScaler().fit(features)
            features = self._scaler.transform(features)
        if self.balanced:
            n = n_pos + n_neg
            weights = np.where(y > 0, n / (2.0 * n_pos), n / (2.0 * n_neg))
            try:
                self._classifier.fit(features, y, sample_weight=weights)
            except TypeError:
                self._classifier.fit(features, y)
        else:
            self._classifier.fit(features, y)
        self._fitted = True
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed scores for waveforms of shape ``(n, channels, window)``
        or a single ``(channels, window)`` waveform."""
        if not self._fitted:
            raise NotFittedError("WaveformModel.fit has not been called")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2:
            x = x[np.newaxis]
        features = self._featurize(x, fit=False)
        return np.asarray(self._classifier.decision_function(features))

    def accepts(self, waveform: np.ndarray) -> bool:
        """Accept/reject a single waveform (Eq. 9)."""
        return bool(self.decision_function(waveform)[0] > 0.0)


@dataclass
class EnrolledModels:
    """The trained models of one enrolled user.

    Attributes:
        full_model: one-handed full-waveform classifier.
        fused_model: privacy-boost classifier, if enabled.
        key_models: per-key single-waveform classifiers.
        options: the enrollment options used.
        config: the pipeline configuration used.
    """

    full_model: Optional[WaveformModel]
    fused_model: Optional[WaveformModel]
    key_models: Dict[str, WaveformModel]
    options: EnrollmentOptions
    config: PipelineConfig
    keys_enrolled: Tuple[str, ...] = field(default_factory=tuple)


def _collect_segments(
    preprocessed: Sequence[PreprocessedTrial], config: PipelineConfig
) -> Dict[str, List[np.ndarray]]:
    """Group detected single-keystroke waveforms by key."""
    by_key: Dict[str, List[np.ndarray]] = {}
    for pre in preprocessed:
        for segment in extract_segments(pre, config):
            by_key.setdefault(segment.key, []).append(segment.samples)
    return by_key


def check_enrollment_quality(
    trials: Sequence[PinEntryTrial],
    config: PipelineConfig,
    options: EnrollmentOptions,
) -> None:
    """The enrollment quality gate: refuse to train on garbage.

    The quality module has always warned that training on unusable
    recordings is worse than rejecting them; this enforces it. Every
    legitimate enrollment trial must pass
    :func:`~repro.signal.quality.assess_recording` against its own
    keystroke events.

    Raises:
        EnrollmentError: naming the first failing trial and why.
    """
    if not options.quality_gate:
        return
    for index, trial in enumerate(trials):
        if not bool(np.all(np.isfinite(trial.recording.samples))):
            # Enrollment is supervised: missing samples mean re-record,
            # never repair-and-train (repaired signal would teach the
            # model the interpolator, not the user).
            raise EnrollmentError(
                f"enrollment trial {index} contains non-finite samples; "
                "re-prompt the user instead of training on this entry"
            )
        report = assess_recording(
            trial.recording,
            trial.events,
            config,
            min_artifact_ratio=options.min_quality_artifact_ratio,
        )
        if not report.ok:
            ratio = (
                f"{report.artifact_ratio:.2f}"
                if report.artifact_ratio is not None
                else "n/a"
            )
            raise EnrollmentError(
                f"enrollment trial {index} failed the quality gate: "
                f"{report.usable_channels} usable channel(s), keystroke "
                f"artifact ratio {ratio} (need >= "
                f"{options.min_quality_artifact_ratio:.2f}); re-prompt the "
                "user instead of training on this entry"
            )


def _usable(p: PreprocessedTrial) -> bool:
    """Whether an entry qualifies for whole-entry models: (nearly) all
    of its keystrokes were detected (one miss tolerated, so enrollment
    stays possible at the low sampling rates of Fig. 16/17)."""
    return p.detected_count >= max(2, len(p.trial.pin) - 1)


@dataclass(frozen=True)
class SharedNegativeSet:
    """Featurized third-party negatives for one model slot.

    Attributes:
        feature_method: the method the features were produced with.
        extractor: the MiniRocket fitted on the negatives ("rocket"
            method; ``None`` for "raw").
        features: the featurized negatives — ``(n_neg, n_features)``
            for "rocket", the raw ``(n_neg, channels, window)`` stack
            for "raw".
    """

    feature_method: str
    extractor: Optional[MiniRocket]
    features: np.ndarray


@dataclass(frozen=True)
class NegativeBank:
    """Third-party negatives preprocessed and featurized once.

    Built by :func:`build_negative_bank` from a third-party store and
    passed to :func:`enroll_models` (via ``shared_negatives=``) so that
    enrolling many users against the same store repeats none of the
    store-side preprocessing or feature extraction. The extractors are
    fitted on the negatives alone, so the bank is independent of any
    particular enrolling user.

    Attributes:
        full: negatives for the full-waveform model.
        fused: negatives for the privacy-boost fused model (``None``
            when the bank was built without privacy boost or no store
            trial had a detected keystroke).
        key_sets: per-key negatives, only for keys with at least
            ``MIN_SAME_KEY_NEGATIVES`` same-key segments in the store.
        key_fallback: all store segments pooled — used for keys not in
            ``key_sets`` (mirrors the unshared fallback rule).
        config: pipeline configuration the store was preprocessed with.
        options: enrollment options the bank was featurized under.
    """

    full: SharedNegativeSet
    fused: Optional[SharedNegativeSet]
    key_sets: Dict[str, SharedNegativeSet]
    key_fallback: Optional[SharedNegativeSet]
    config: PipelineConfig
    options: EnrollmentOptions


def _fit_shared_set(
    stack: np.ndarray, options: EnrollmentOptions
) -> SharedNegativeSet:
    """Fit an extractor on a negative stack and featurize it."""
    if options.feature_method == "rocket":
        rocket = MiniRocket(
            num_features=options.num_features, seed=options.seed
        )
        rocket.fit(stack)
        return SharedNegativeSet(
            feature_method="rocket",
            extractor=rocket,
            features=rocket.transform(stack),
        )
    if options.feature_method == "raw":
        return SharedNegativeSet(
            feature_method="raw", extractor=None, features=stack
        )
    raise EnrollmentError(
        f"feature method {options.feature_method!r} cannot share negatives: "
        f"its extractor is fitted on the positive class"
    )


def build_negative_bank(
    third_party_trials: Sequence[PinEntryTrial],
    config: Optional[PipelineConfig] = None,
    options: Optional[EnrollmentOptions] = None,
    preprocessed: Optional[Sequence[PreprocessedTrial]] = None,
) -> NegativeBank:
    """Preprocess and featurize a third-party store once.

    Args:
        third_party_trials: the store's trials.
        config: pipeline constants.
        options: enrollment options; ``feature_method`` must be one of
            ``SHAREABLE_FEATURE_METHODS``.
        preprocessed: already-preprocessed store trials (e.g. from the
            evaluation feature cache); skips the preprocessing pass.

    Returns:
        The reusable negative bank.
    """
    if config is None:
        config = PipelineConfig()
    if options is None:
        options = EnrollmentOptions()
    if preprocessed is None:
        if not third_party_trials:
            raise EnrollmentError("no third-party trials supplied")
        preprocessed = preprocess_trials(list(third_party_trials), config)
    elif not preprocessed:
        raise EnrollmentError("no preprocessed third-party trials supplied")

    full_neg = [
        extract_full_waveform(p, options.full_window, options.full_margin)
        for p in preprocessed
    ]
    full = _fit_shared_set(np.stack(full_neg), options)

    fused: Optional[SharedNegativeSet] = None
    if options.privacy_boost:
        fused_neg = [
            extract_fused_waveform(p, config)
            for p in preprocessed
            if p.detected_count > 0
        ]
        if fused_neg:
            fused = _fit_shared_set(np.stack(fused_neg), options)

    by_key = _collect_segments(preprocessed, config)
    all_segments = [s for segs in by_key.values() for s in segs]
    key_sets = {
        key: _fit_shared_set(np.stack(segs), options)
        for key, segs in by_key.items()
        if len(segs) >= MIN_SAME_KEY_NEGATIVES
    }
    key_fallback = (
        _fit_shared_set(np.stack(all_segments), options)
        if all_segments
        else None
    )

    return NegativeBank(
        full=full,
        fused=fused,
        key_sets=key_sets,
        key_fallback=key_fallback,
        config=config,
        options=options,
    )


def _check_bank(
    bank: NegativeBank, config: PipelineConfig, options: EnrollmentOptions
) -> None:
    """Reject a bank built under incompatible settings."""
    if bank.config != config:
        raise EnrollmentError(
            "shared negative bank was built with a different pipeline config"
        )
    relevant = (
        "feature_method",
        "num_features",
        "seed",
        "full_window",
        "full_margin",
    )
    for name in relevant:
        if getattr(bank.options, name) != getattr(options, name):
            raise EnrollmentError(
                f"shared negative bank was built with {name}="
                f"{getattr(bank.options, name)!r} but enrollment uses "
                f"{getattr(options, name)!r}"
            )


def enroll_models(
    legit_trials: Sequence[PinEntryTrial],
    third_party_trials: Sequence[PinEntryTrial],
    config: Optional[PipelineConfig] = None,
    options: Optional[EnrollmentOptions] = None,
    shared_negatives: Optional[NegativeBank] = None,
) -> EnrolledModels:
    """Run the enrollment phase.

    Args:
        legit_trials: the enrolling user's PIN entries (the paper caps
            usability at 9).
        third_party_trials: samples from the third-party store used as
            negatives (paper default: 100). Ignored when
            ``shared_negatives`` is given.
        config: pipeline constants.
        options: enrollment options.
        shared_negatives: a :class:`NegativeBank` built from the store
            by :func:`build_negative_bank`; when given, the store-side
            preprocessing and feature extraction are skipped entirely
            and every model trains against the bank's pre-featurized
            negatives (extractors fitted on the negatives alone).

    Returns:
        The user's trained models.

    Raises:
        EnrollmentError: when a required model cannot be trained (too
            few usable samples), when an enrollment trial fails the
            quality gate (``options.quality_gate``), or when
            ``shared_negatives`` was built under incompatible settings.
    """
    if config is None:
        config = PipelineConfig()
    if options is None:
        options = EnrollmentOptions()
    if not legit_trials:
        raise EnrollmentError("no legitimate trials supplied")
    if shared_negatives is None and not third_party_trials:
        raise EnrollmentError("no third-party trials supplied")
    if shared_negatives is not None:
        _check_bank(shared_negatives, config, options)
    check_enrollment_quality(legit_trials, config, options)

    legit_pre = preprocess_trials(list(legit_trials), config)
    if shared_negatives is not None:
        return _enroll_shared(legit_pre, shared_negatives, config, options)
    third_pre = preprocess_trials(list(third_party_trials), config)

    def model(balanced: bool = False) -> WaveformModel:
        return WaveformModel(
            feature_method=options.feature_method,
            num_features=options.num_features,
            classifier_factory=options.classifier_factory,
            seed=options.seed,
            balanced=balanced,
        )

    # Full-waveform model: trained on legitimate one-handed entries,
    # vs third-party entries. An entry qualifies when (nearly) all of
    # its keystrokes were detected; tolerating one miss keeps
    # enrollment possible at low sampling rates, where the energy
    # detector occasionally drops a keystroke (Fig. 16/17 regimes).
    full_pos = [
        extract_full_waveform(p, options.full_window, options.full_margin)
        for p in legit_pre
        if _usable(p)
    ]
    full_neg = [
        extract_full_waveform(p, options.full_window, options.full_margin)
        for p in third_pre
    ]
    full_model = None
    if len(full_pos) >= options.min_positive_samples:
        full_model = model().fit(np.stack(full_pos), np.stack(full_neg))

    fused_model = None
    if options.privacy_boost:
        fused_pos = [
            extract_fused_waveform(p, config)
            for p in legit_pre
            if _usable(p)
        ]
        fused_neg = [
            extract_fused_waveform(p, config)
            for p in third_pre
            if p.detected_count > 0
        ]
        if len(fused_pos) < options.min_positive_samples:
            raise EnrollmentError(
                "privacy boost requires at least "
                f"{options.min_positive_samples} fully detected entries"
            )
        fused_model = model().fit(np.stack(fused_pos), np.stack(fused_neg))

    # Single-waveform models: one binary classifier per enrolled key.
    legit_by_key = _collect_segments(legit_pre, config)
    third_by_key = _collect_segments(third_pre, config)
    third_all = [s for segs in third_by_key.values() for s in segs]

    key_models: Dict[str, WaveformModel] = {}
    for key, positives in legit_by_key.items():
        if len(positives) < options.min_positive_samples:
            continue
        negatives = list(third_by_key.get(key, []))
        if len(negatives) < 10:
            # Too few same-key third-party samples: fall back to the
            # whole store so the classifier still sees other people.
            negatives = third_all
        # Deliberately NOT negatives: the user's own other keys.
        # Intra-user key discrimination is much harder than inter-user
        # discrimination and dragging those samples into the negative
        # class collapses the margin around the legitimate keystrokes.
        # Security in every mode (including NO-PIN) rests on *user*
        # specificity, which third-party negatives capture.
        if not negatives:
            continue
        # Single-keystroke models are trained class-balanced: a 90-sample
        # waveform carries far less evidence than a full entry, and the
        # ~10:1 negative imbalance would otherwise push the boundary
        # into the legitimate class (every watch-hand keystroke would
        # score near zero and two-handed integration would fail).
        key_models[key] = model(balanced=True).fit(
            np.stack(positives), np.stack(negatives)
        )

    if full_model is None and fused_model is None and not key_models:
        raise EnrollmentError(
            "no model could be trained: too few usable enrollment samples"
        )

    return EnrolledModels(
        full_model=full_model,
        fused_model=fused_model,
        key_models=key_models,
        options=options,
        config=config,
        keys_enrolled=tuple(sorted(key_models)),
    )


def _enroll_shared(
    legit_pre: Sequence[PreprocessedTrial],
    bank: NegativeBank,
    config: PipelineConfig,
    options: EnrollmentOptions,
) -> EnrolledModels:
    """The :func:`enroll_models` flow against a pre-built negative bank.

    Mirrors the unshared path model for model — same positive
    extraction, same usability and minimum-sample rules, same per-key
    fallback behavior — but every ``fit`` is a :meth:`WaveformModel.
    fit_shared` against the bank's pre-featurized negatives.
    """

    def model(balanced: bool = False) -> WaveformModel:
        return WaveformModel(
            feature_method=options.feature_method,
            num_features=options.num_features,
            classifier_factory=options.classifier_factory,
            seed=options.seed,
            balanced=balanced,
        )

    full_pos = [
        extract_full_waveform(p, options.full_window, options.full_margin)
        for p in legit_pre
        if _usable(p)
    ]
    full_model = None
    if len(full_pos) >= options.min_positive_samples:
        full_model = model().fit_shared(np.stack(full_pos), bank.full)

    fused_model = None
    if options.privacy_boost:
        if bank.fused is None:
            raise EnrollmentError(
                "privacy boost requested but the shared negative bank was "
                "built without fused negatives"
            )
        fused_pos = [
            extract_fused_waveform(p, config) for p in legit_pre if _usable(p)
        ]
        if len(fused_pos) < options.min_positive_samples:
            raise EnrollmentError(
                "privacy boost requires at least "
                f"{options.min_positive_samples} fully detected entries"
            )
        fused_model = model().fit_shared(np.stack(fused_pos), bank.fused)

    legit_by_key = _collect_segments(legit_pre, config)
    key_models: Dict[str, WaveformModel] = {}
    for key, positives in legit_by_key.items():
        if len(positives) < options.min_positive_samples:
            continue
        shared = bank.key_sets.get(key, bank.key_fallback)
        if shared is None:
            continue
        key_models[key] = model(balanced=True).fit_shared(
            np.stack(positives), shared
        )

    if full_model is None and fused_model is None and not key_models:
        raise EnrollmentError(
            "no model could be trained: too few usable enrollment samples"
        )

    return EnrolledModels(
        full_model=full_model,
        fused_model=fused_model,
        key_models=key_models,
        options=options,
        config=config,
        keys_enrolled=tuple(sorted(key_models)),
    )
