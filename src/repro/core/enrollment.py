"""Enrollment phase: building the per-user authentication models.

Enrollment turns a handful of legitimate PIN entries plus the
third-party sample store into the binary classifiers of Section
IV-B.2: a *full waveform* model for one-handed entries, an optional
*fused waveform* model when the privacy boost is enabled (Eq. 4), and
one *single waveform* model per key for the two-handed and NO-PIN
cases. Every model is MiniRocket features + a ridge classifier by
default; the feature method and classifier are pluggable so the
evaluation can swap in the manual baseline (Fig. 11) and the
alternative learners (Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import PipelineConfig
from ..errors import EnrollmentError, NotFittedError, SignalError
from ..features import ManualFeatureExtractor, MiniRocket
from ..ml import RidgeClassifier, StandardScaler
from ..ml.base import BinaryClassifier
from ..types import PinEntryTrial, SegmentedKeystroke
from .fusion import fuse_waveforms
from .pipeline import PreprocessedTrial, preprocess_trial

#: Feature methods supported by :class:`WaveformModel`.
FEATURE_METHODS = ("rocket", "manual", "raw")


@dataclass(frozen=True)
class EnrollmentOptions:
    """Knobs of the enrollment phase.

    Attributes:
        privacy_boost: also train the fused-waveform model and use it
            for one-handed authentication (Section IV-B.2.2).
        num_features: total MiniRocket feature budget (paper: ~10K).
        full_window: length of the fixed one-handed waveform window in
            samples (covers all four keystrokes at typical rhythm).
        full_margin: samples kept before the first keystroke in the
            full window.
        feature_method: "rocket" (paper default), "manual"
            (statistical + DTW baseline), or "raw" (hand the raw series
            to the classifier — used by the neural baselines).
        classifier_factory: builds a fresh binary classifier per model.
        seed: seed for the MiniRocket bias sampling.
        min_positive_samples: minimum legitimate samples a model needs.
    """

    privacy_boost: bool = False
    num_features: int = 9996
    full_window: int = 480
    full_margin: int = 45
    feature_method: str = "rocket"
    classifier_factory: Callable[[], BinaryClassifier] = RidgeClassifier
    seed: int = 0
    min_positive_samples: int = 3

    def __post_init__(self) -> None:
        if self.feature_method not in FEATURE_METHODS:
            raise EnrollmentError(
                f"feature_method must be one of {FEATURE_METHODS}, "
                f"got {self.feature_method!r}"
            )
        if self.full_window < 8 or self.full_margin < 0:
            raise EnrollmentError("invalid full-window geometry")
        if self.min_positive_samples < 1:
            raise EnrollmentError("min_positive_samples must be >= 1")


def fixed_window(samples: np.ndarray, start: int, window: int) -> np.ndarray:
    """Cut ``window`` columns starting at ``start``, edge-padding.

    Unlike :func:`repro.signal.segment_around`, the window is anchored
    (not centered) and the signal may be shorter than the window — the
    missing tail is edge-replicated, modelling a capture buffer that
    holds the last sample until the window fills.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim == 1:
        samples = samples[np.newaxis, :]
    n = samples.shape[1]
    start = int(np.clip(start, 0, max(0, n - 1)))
    end = start + window
    chunk = samples[:, start:min(end, n)]
    if chunk.shape[1] < window:
        pad = window - chunk.shape[1]
        chunk = np.pad(chunk, ((0, 0), (0, pad)), mode="edge")
    return chunk


def extract_full_waveform(
    preprocessed: PreprocessedTrial, window: int = 480, margin: int = 45
) -> np.ndarray:
    """The one-handed "whole PPG sample": a fixed window from just
    before the first calibrated keystroke, shape ``(channels, window)``.
    """
    first = min(preprocessed.keystroke_indices)
    return fixed_window(preprocessed.detrended, first - margin, window)


def extract_segments(
    preprocessed: PreprocessedTrial, config: PipelineConfig
) -> List[SegmentedKeystroke]:
    """Single-keystroke segments for every *detected* keystroke."""
    return [
        preprocessed.segment(pos, config.segment_window)
        for pos in preprocessed.detected_positions()
    ]


def extract_fused_waveform(
    preprocessed: PreprocessedTrial, config: PipelineConfig
) -> np.ndarray:
    """Privacy-boost fused waveform (Eq. 4) of the detected keystrokes."""
    segments = extract_segments(preprocessed, config)
    if not segments:
        raise SignalError("no detected keystrokes to fuse")
    return fuse_waveforms(segments)


class WaveformModel:
    """One binary authentication model over fixed-length waveforms.

    Args:
        feature_method: see :class:`EnrollmentOptions`.
        num_features: MiniRocket feature budget (rocket method only).
        classifier_factory: builds the classifier.
        seed: MiniRocket bias seed.
    """

    def __init__(
        self,
        feature_method: str = "rocket",
        num_features: int = 9996,
        classifier_factory: Callable[[], BinaryClassifier] = RidgeClassifier,
        seed: int = 0,
        balanced: bool = False,
    ) -> None:
        if feature_method not in FEATURE_METHODS:
            raise EnrollmentError(f"unknown feature method: {feature_method!r}")
        self.feature_method = feature_method
        self.num_features = num_features
        self.seed = seed
        self.balanced = balanced
        self._classifier = classifier_factory()
        self._rocket: Optional[MiniRocket] = None
        self._manual: Optional[ManualFeatureExtractor] = None
        self._scaler: Optional[StandardScaler] = None
        self._fitted = False

    def _featurize(
        self, x: np.ndarray, fit: bool, positives: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if self.feature_method == "rocket":
            if fit:
                self._rocket = MiniRocket(
                    num_features=self.num_features, seed=self.seed
                )
                self._rocket.fit(x)
            if self._rocket is None:
                raise NotFittedError("WaveformModel.fit has not been called")
            features = self._rocket.transform(x)
        elif self.feature_method == "manual":
            if fit:
                # Stride 2 halves the DTW cost while keeping the
                # manual baseline one to two orders of magnitude
                # slower than the ROCKET path (Table I's comparison).
                self._manual = ManualFeatureExtractor(dtw_stride=2)
                self._manual.fit(positives if positives is not None else x)
            if self._manual is None:
                raise NotFittedError("WaveformModel.fit has not been called")
            features = self._manual.transform(x)
        else:  # raw
            return x
        if fit:
            self._scaler = StandardScaler().fit(features)
        if self._scaler is None:
            raise NotFittedError("WaveformModel.fit has not been called")
        return self._scaler.transform(features)

    def fit(self, positives: np.ndarray, negatives: np.ndarray) -> "WaveformModel":
        """Train on legitimate (``positives``) vs third-party samples.

        Both inputs have shape ``(n, channels, window)``.
        """
        positives = np.asarray(positives, dtype=np.float64)
        negatives = np.asarray(negatives, dtype=np.float64)
        if positives.ndim != 3 or negatives.ndim != 3:
            raise EnrollmentError(
                "expected 3-D (n, channels, window) training arrays, got "
                f"{positives.shape} and {negatives.shape}"
            )
        if positives.shape[0] == 0 or negatives.shape[0] == 0:
            raise EnrollmentError("both classes need at least one sample")
        x = np.concatenate([positives, negatives], axis=0)
        y = np.concatenate(
            [np.ones(positives.shape[0]), -np.ones(negatives.shape[0])]
        )
        features = self._featurize(x, fit=True, positives=positives)
        if self.balanced:
            n_pos = positives.shape[0]
            n_neg = negatives.shape[0]
            n = n_pos + n_neg
            weights = np.where(y > 0, n / (2.0 * n_pos), n / (2.0 * n_neg))
            try:
                self._classifier.fit(features, y, sample_weight=weights)
            except TypeError:
                # Classifier without weight support: fall back silently;
                # balance is an optimization, not a correctness need.
                self._classifier.fit(features, y)
        else:
            self._classifier.fit(features, y)
        self._fitted = True
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed scores for waveforms of shape ``(n, channels, window)``
        or a single ``(channels, window)`` waveform."""
        if not self._fitted:
            raise NotFittedError("WaveformModel.fit has not been called")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2:
            x = x[np.newaxis]
        features = self._featurize(x, fit=False)
        return np.asarray(self._classifier.decision_function(features))

    def accepts(self, waveform: np.ndarray) -> bool:
        """Accept/reject a single waveform (Eq. 9)."""
        return bool(self.decision_function(waveform)[0] > 0.0)


@dataclass
class EnrolledModels:
    """The trained models of one enrolled user.

    Attributes:
        full_model: one-handed full-waveform classifier.
        fused_model: privacy-boost classifier, if enabled.
        key_models: per-key single-waveform classifiers.
        options: the enrollment options used.
        config: the pipeline configuration used.
    """

    full_model: Optional[WaveformModel]
    fused_model: Optional[WaveformModel]
    key_models: Dict[str, WaveformModel]
    options: EnrollmentOptions
    config: PipelineConfig
    keys_enrolled: Tuple[str, ...] = field(default_factory=tuple)


def _collect_segments(
    preprocessed: Sequence[PreprocessedTrial], config: PipelineConfig
) -> Dict[str, List[np.ndarray]]:
    """Group detected single-keystroke waveforms by key."""
    by_key: Dict[str, List[np.ndarray]] = {}
    for pre in preprocessed:
        for segment in extract_segments(pre, config):
            by_key.setdefault(segment.key, []).append(segment.samples)
    return by_key


def enroll_models(
    legit_trials: Sequence[PinEntryTrial],
    third_party_trials: Sequence[PinEntryTrial],
    config: Optional[PipelineConfig] = None,
    options: Optional[EnrollmentOptions] = None,
) -> EnrolledModels:
    """Run the enrollment phase.

    Args:
        legit_trials: the enrolling user's PIN entries (the paper caps
            usability at 9).
        third_party_trials: samples from the third-party store used as
            negatives (paper default: 100).
        config: pipeline constants.
        options: enrollment options.

    Returns:
        The user's trained models.

    Raises:
        EnrollmentError: when a required model cannot be trained (too
            few usable samples).
    """
    if config is None:
        config = PipelineConfig()
    if options is None:
        options = EnrollmentOptions()
    if not legit_trials:
        raise EnrollmentError("no legitimate trials supplied")
    if not third_party_trials:
        raise EnrollmentError("no third-party trials supplied")

    legit_pre = [preprocess_trial(t, config) for t in legit_trials]
    third_pre = [preprocess_trial(t, config) for t in third_party_trials]

    def model(balanced: bool = False) -> WaveformModel:
        return WaveformModel(
            feature_method=options.feature_method,
            num_features=options.num_features,
            classifier_factory=options.classifier_factory,
            seed=options.seed,
            balanced=balanced,
        )

    # Full-waveform model: trained on legitimate one-handed entries,
    # vs third-party entries. An entry qualifies when (nearly) all of
    # its keystrokes were detected; tolerating one miss keeps
    # enrollment possible at low sampling rates, where the energy
    # detector occasionally drops a keystroke (Fig. 16/17 regimes).
    def usable(p: PreprocessedTrial) -> bool:
        return p.detected_count >= max(2, len(p.trial.pin) - 1)

    full_pos = [
        extract_full_waveform(p, options.full_window, options.full_margin)
        for p in legit_pre
        if usable(p)
    ]
    full_neg = [
        extract_full_waveform(p, options.full_window, options.full_margin)
        for p in third_pre
    ]
    full_model = None
    if len(full_pos) >= options.min_positive_samples:
        full_model = model().fit(np.stack(full_pos), np.stack(full_neg))

    fused_model = None
    if options.privacy_boost:
        fused_pos = [
            extract_fused_waveform(p, config)
            for p in legit_pre
            if usable(p)
        ]
        fused_neg = [
            extract_fused_waveform(p, config)
            for p in third_pre
            if p.detected_count > 0
        ]
        if len(fused_pos) < options.min_positive_samples:
            raise EnrollmentError(
                "privacy boost requires at least "
                f"{options.min_positive_samples} fully detected entries"
            )
        fused_model = model().fit(np.stack(fused_pos), np.stack(fused_neg))

    # Single-waveform models: one binary classifier per enrolled key.
    legit_by_key = _collect_segments(legit_pre, config)
    third_by_key = _collect_segments(third_pre, config)
    third_all = [s for segs in third_by_key.values() for s in segs]

    key_models: Dict[str, WaveformModel] = {}
    for key, positives in legit_by_key.items():
        if len(positives) < options.min_positive_samples:
            continue
        negatives = list(third_by_key.get(key, []))
        if len(negatives) < 10:
            # Too few same-key third-party samples: fall back to the
            # whole store so the classifier still sees other people.
            negatives = third_all
        # Deliberately NOT negatives: the user's own other keys.
        # Intra-user key discrimination is much harder than inter-user
        # discrimination and dragging those samples into the negative
        # class collapses the margin around the legitimate keystrokes.
        # Security in every mode (including NO-PIN) rests on *user*
        # specificity, which third-party negatives capture.
        if not negatives:
            continue
        # Single-keystroke models are trained class-balanced: a 90-sample
        # waveform carries far less evidence than a full entry, and the
        # ~10:1 negative imbalance would otherwise push the boundary
        # into the legitimate class (every watch-hand keystroke would
        # score near zero and two-handed integration would fail).
        key_models[key] = model(balanced=True).fit(
            np.stack(positives), np.stack(negatives)
        )

    if full_model is None and fused_model is None and not key_models:
        raise EnrollmentError(
            "no model could be trained: too few usable enrollment samples"
        )

    return EnrolledModels(
        full_model=full_model,
        fused_model=fused_model,
        key_models=key_models,
        options=options,
        config=config,
        keys_enrolled=tuple(sorted(key_models)),
    )
