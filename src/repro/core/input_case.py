"""PIN input case identification (Section IV-B.1.3).

After detrending, keystroke neighbourhoods carry higher short-time
energy than quiescent segments, so counting the keystrokes whose
calibrated position clears the energy threshold reveals how the PIN was
typed:

- all four detected → one-handed entry (full-waveform model);
- three detected → two-handed, watch hand pressed three keys;
- two detected → two-handed, watch hand pressed two keys;
- fewer than two detected → reject (a single keystroke waveform is
  too short to authenticate safely, Section IV-B.2.6).
"""

from __future__ import annotations

from ..types import InputCase
from .pipeline import PreprocessedTrial


def identify_input_case(preprocessed: PreprocessedTrial) -> InputCase:
    """Classify how a preprocessed trial was typed.

    The rule assumes four-digit PINs, as in the paper; for other
    lengths, full detection maps to one-handed, and the two-handed
    cases follow the detected count in the same way.
    """
    detected = preprocessed.detected_count
    total = len(preprocessed.trial.pin)
    if detected == total:
        return InputCase.ONE_HANDED
    if detected == 3:
        return InputCase.TWO_HANDED_3
    if detected == 2:
        return InputCase.TWO_HANDED_2
    return InputCase.REJECT
